//! SMO training for the soft-margin RBF-kernel SVM (Platt 1998, with the
//! usual second-choice heuristic and an error cache).

use drcshap_ml::{Classifier, Dataset, ModelComplexity, Trainer};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// SVM hyperparameters and trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmTrainer {
    /// Soft-margin penalty.
    pub c: f64,
    /// RBF kernel width `K(a,b) = exp(-gamma · ||a-b||²)`; `None` uses the
    /// scikit-learn "scale" heuristic `1 / (M · var(X))`.
    pub gamma: Option<f64>,
    /// Weight multiplier on the positive-class penalty (class imbalance).
    pub positive_weight: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Hard cap on optimization sweeps (bounds worst-case runtime).
    pub max_sweeps: usize,
    /// Optional cap on training samples: if set and the data is larger, a
    /// stratified random subsample is used (keeps the Table II harness
    /// tractable at paper scale; `None` trains on everything).
    pub max_samples: Option<usize>,
}

impl Default for SvmTrainer {
    fn default() -> Self {
        Self {
            c: 1.0,
            gamma: None,
            positive_weight: 1.0,
            tol: 1e-3,
            max_sweeps: 60,
            max_samples: Some(4000),
        }
    }
}

impl Trainer for SvmTrainer {
    type Model = Svm;

    fn fit(&self, data: &Dataset, seed: u64) -> Svm {
        assert!(data.n_samples() > 0, "empty training set");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Optional stratified subsample.
        let indices: Vec<usize> = match self.max_samples {
            Some(cap) if data.n_samples() > cap => {
                let mut pos: Vec<usize> =
                    (0..data.n_samples()).filter(|&i| data.label(i)).collect();
                let mut neg: Vec<usize> =
                    (0..data.n_samples()).filter(|&i| !data.label(i)).collect();
                pos.shuffle(&mut rng);
                neg.shuffle(&mut rng);
                // Keep all positives up to half the cap (rare-event data
                // keeps every positive), fill the rest with negatives, then
                // backfill with positives if negatives run short.
                let mut pos_keep = pos.len().min(cap / 2);
                let neg_keep = neg.len().min(cap - pos_keep);
                pos_keep = pos.len().min(cap - neg_keep);
                let mut keep: Vec<usize> = pos[..pos_keep].to_vec();
                keep.extend_from_slice(&neg[..neg_keep]);
                keep
            }
            _ => (0..data.n_samples()).collect(),
        };
        let train = data.subset(&indices);
        let n = train.n_samples();
        let m = train.n_features();

        let gamma = self.gamma.unwrap_or_else(|| {
            // sklearn "scale": 1 / (M * var(X)) over all entries.
            let all = train.as_slice();
            let mean: f64 = all.iter().map(|&v| v as f64).sum::<f64>() / all.len() as f64;
            let var: f64 =
                all.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / all.len() as f64;
            1.0 / (m as f64 * var.max(1e-9))
        });

        let y: Vec<f64> = train.labels().iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let c_of = |i: usize| {
            if y[i] > 0.0 {
                self.c * self.positive_weight
            } else {
                self.c
            }
        };

        let mut solver = Solver {
            x: train.as_slice(),
            n,
            m,
            gamma,
            y: &y,
            alpha: vec![0.0; n],
            b: 0.0,
            errors: y.iter().map(|&yy| -yy).collect(), // f(x)=0 initially
            cache: RowCache::new(n, 64 * 1024 * 1024),
        };

        solver.optimize(self.tol, self.max_sweeps, c_of, &mut rng);

        // Extract support vectors.
        let mut sv_x = Vec::new();
        let mut sv_coef = Vec::new();
        for (i, (&alpha, &yi)) in solver.alpha.iter().zip(&y).enumerate() {
            if alpha > 1e-12 {
                sv_x.extend_from_slice(train.row(i));
                sv_coef.push(alpha * yi);
            }
        }
        Svm { sv_x, sv_coef, bias: solver.b, gamma, n_features: m }
    }

    fn name(&self) -> &'static str {
        "SVM-RBF"
    }

    fn describe(&self) -> String {
        format!(
            "SVM-RBF(C={}, gamma={:?}, w+={}, cap={:?})",
            self.c, self.gamma, self.positive_weight, self.max_samples
        )
    }
}

/// A fixed-budget LRU-ish kernel row cache.
struct RowCache {
    rows: std::collections::HashMap<usize, Vec<f32>>,
    order: std::collections::VecDeque<usize>,
    max_rows: usize,
}

impl RowCache {
    fn new(n: usize, budget_bytes: usize) -> Self {
        let max_rows = (budget_bytes / (4 * n.max(1))).max(2);
        Self {
            rows: std::collections::HashMap::new(),
            order: std::collections::VecDeque::new(),
            max_rows,
        }
    }
}

struct Solver<'a> {
    x: &'a [f32],
    n: usize,
    m: usize,
    gamma: f64,
    y: &'a [f64],
    alpha: Vec<f64>,
    b: f64,
    errors: Vec<f64>,
    cache: RowCache,
}

impl Solver<'_> {
    fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.m..(i + 1) * self.m]
    }

    fn kernel(&self, i: usize, j: usize) -> f64 {
        rbf(self.row(i), self.row(j), self.gamma)
    }

    /// The cached kernel row `K(i, ·)`, computing it on miss.
    fn kernel_row(&mut self, i: usize) -> Vec<f32> {
        if let Some(r) = self.cache.rows.get(&i) {
            return r.clone();
        }
        let mut row = Vec::with_capacity(self.n);
        for j in 0..self.n {
            row.push(self.kernel(i, j) as f32);
        }
        if self.cache.rows.len() >= self.cache.max_rows {
            if let Some(evict) = self.cache.order.pop_front() {
                self.cache.rows.remove(&evict);
            }
        }
        self.cache.rows.insert(i, row.clone());
        self.cache.order.push_back(i);
        row
    }

    fn optimize<F: Fn(usize) -> f64>(
        &mut self,
        tol: f64,
        max_sweeps: usize,
        c_of: F,
        rng: &mut ChaCha8Rng,
    ) {
        let mut examine_all = true;
        for _ in 0..max_sweeps {
            let mut changed = 0usize;
            let candidates: Vec<usize> = if examine_all {
                (0..self.n).collect()
            } else {
                (0..self.n)
                    .filter(|&i| self.alpha[i] > 1e-12 && self.alpha[i] < c_of(i) - 1e-12)
                    .collect()
            };
            let mut order = candidates;
            order.shuffle(rng);
            for i in order {
                changed += self.examine(i, tol, &c_of) as usize;
            }
            if examine_all {
                examine_all = false;
            } else if changed == 0 {
                break;
            }
        }
    }

    fn examine<F: Fn(usize) -> f64>(&mut self, i2: usize, tol: f64, c_of: &F) -> bool {
        let y2 = self.y[i2];
        let alpha2 = self.alpha[i2];
        let e2 = self.errors[i2];
        let r2 = e2 * y2;
        let c2 = c_of(i2);
        let violates = (r2 < -tol && alpha2 < c2 - 1e-12) || (r2 > tol && alpha2 > 1e-12);
        if !violates {
            return false;
        }
        // Second-choice heuristic: maximize |E1 - E2| over non-bound points.
        let mut best: Option<(f64, usize)> = None;
        for i1 in 0..self.n {
            if i1 == i2 || self.alpha[i1] <= 1e-12 || self.alpha[i1] >= c_of(i1) - 1e-12 {
                continue;
            }
            let gap = (self.errors[i1] - e2).abs();
            if best.is_none_or(|(g, _)| gap > g) {
                best = Some((gap, i1));
            }
        }
        if let Some((_, i1)) = best {
            if self.step(i1, i2, c_of) {
                return true;
            }
        }
        // Fallbacks: any non-bound, then anything.
        for i1 in 0..self.n {
            if i1 != i2 && self.alpha[i1] > 1e-12 && self.step(i1, i2, c_of) {
                return true;
            }
        }
        for i1 in 0..self.n {
            if i1 != i2 && self.step(i1, i2, c_of) {
                return true;
            }
        }
        false
    }

    fn step<F: Fn(usize) -> f64>(&mut self, i1: usize, i2: usize, c_of: &F) -> bool {
        if i1 == i2 {
            return false;
        }
        let (a1, a2) = (self.alpha[i1], self.alpha[i2]);
        let (y1, y2) = (self.y[i1], self.y[i2]);
        let (e1, e2) = (self.errors[i1], self.errors[i2]);
        let (c1, c2) = (c_of(i1), c_of(i2));
        let s = y1 * y2;
        let (lo, hi) = if s < 0.0 {
            ((a2 - a1).max(0.0), (c2 + a2 - a1).min(c2).min(c1 + a2 - a1))
        } else {
            ((a1 + a2 - c1).max(0.0), (a1 + a2).min(c2))
        };
        if hi - lo < 1e-12 {
            return false;
        }
        let k11 = self.kernel(i1, i1);
        let k22 = self.kernel(i2, i2);
        let k12 = self.kernel(i1, i2);
        let eta = k11 + k22 - 2.0 * k12;
        if eta <= 1e-12 {
            return false;
        }
        let mut a2_new = a2 + y2 * (e1 - e2) / eta;
        a2_new = a2_new.clamp(lo, hi);
        if (a2_new - a2).abs() < 1e-10 * (a2_new + a2 + 1e-10) {
            return false;
        }
        let a1_new = a1 + s * (a2 - a2_new);

        // Bias update (Platt's b1/b2 rule).
        let b1 = self.b - e1 - y1 * (a1_new - a1) * k11 - y2 * (a2_new - a2) * k12;
        let b2 = self.b - e2 - y1 * (a1_new - a1) * k12 - y2 * (a2_new - a2) * k22;
        let new_b = if a1_new > 1e-12 && a1_new < c1 - 1e-12 {
            b1
        } else if a2_new > 1e-12 && a2_new < c2 - 1e-12 {
            b2
        } else {
            (b1 + b2) / 2.0
        };

        // Error cache update over all samples via the two kernel rows.
        let row1 = self.kernel_row(i1);
        let row2 = self.kernel_row(i2);
        let d1 = y1 * (a1_new - a1);
        let d2 = y2 * (a2_new - a2);
        let db = new_b - self.b;
        for j in 0..self.n {
            self.errors[j] += d1 * row1[j] as f64 + d2 * row2[j] as f64 + db;
        }
        self.alpha[i1] = a1_new;
        self.alpha[i2] = a2_new;
        self.b = new_b;
        true
    }
}

/// The RBF kernel `exp(-gamma · ||a - b||²)`.
fn rbf(a: &[f32], b: &[f32], gamma: f64) -> f64 {
    let mut d2 = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let d = (*x - *y) as f64;
        d2 += d * d;
    }
    (-gamma * d2).exp()
}

/// A trained RBF-kernel SVM. The score is the decision value
/// `Σᵢ αᵢyᵢ K(svᵢ, x) + b` (a margin, not a probability — wrap with
/// [`crate::PlattScaler`] when probabilities are needed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    sv_x: Vec<f32>,
    sv_coef: Vec<f64>,
    bias: f64,
    gamma: f64,
    n_features: usize,
}

impl Svm {
    /// Number of support vectors.
    pub fn num_support_vectors(&self) -> usize {
        self.sv_coef.len()
    }

    /// The kernel width in use.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The raw decision value for one sample.
    pub fn decision(&self, x: &[f32]) -> f64 {
        let mut f = self.bias;
        for (k, coef) in self.sv_coef.iter().enumerate() {
            let sv = &self.sv_x[k * self.n_features..(k + 1) * self.n_features];
            f += coef * rbf(sv, x, self.gamma);
        }
        f
    }
}

impl Classifier for Svm {
    fn score(&self, x: &[f32]) -> f64 {
        self.decision(x)
    }

    fn complexity(&self) -> ModelComplexity {
        let nsv = self.num_support_vectors();
        ModelComplexity {
            // Each SV stores its M features and one coefficient, plus bias/gamma.
            num_parameters: nsv * (self.n_features + 1) + 2,
            // Each kernel evaluation: M subs, M mults, M adds + exp (~3M+2).
            prediction_ops: nsv * (3 * self.n_features + 2) + nsv + 1,
        }
    }

    fn name(&self) -> &'static str {
        "SVM-RBF"
    }

    fn expected_features(&self) -> Option<usize> {
        Some(self.n_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(n: usize, seed: u64, gap: f32) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let cx = if label { 1.0 + gap } else { 1.0 - gap };
            x.push(cx + rng.gen_range(-0.3..0.3f32));
            x.push(rng.gen_range(-0.5..0.5f32));
            y.push(label);
        }
        Dataset::from_parts(x, y, vec![0; n], 2)
    }

    #[test]
    fn separates_blobs() {
        let train = blobs(120, 1, 0.8);
        let test = blobs(80, 2, 0.8);
        let svm = SvmTrainer::default().fit(&train, 0);
        let scores = svm.score_dataset(&test);
        let auc = drcshap_ml::roc_auc(&scores, test.labels());
        assert!(auc > 0.95, "auc {auc}");
        assert!(svm.num_support_vectors() > 0);
    }

    #[test]
    fn learns_a_nonlinear_ring() {
        // Inside-circle vs outside-circle: linearly inseparable, RBF solves it.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..200 {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            x.push(a);
            x.push(b);
            y.push(a * a + b * b < 0.4);
        }
        let train = Dataset::from_parts(x, y, vec![0; 200], 2);
        let svm = SvmTrainer { c: 10.0, gamma: Some(2.0), ..Default::default() }.fit(&train, 0);
        assert!(svm.score(&[0.0, 0.0]) > svm.score(&[1.0, 1.0]));
        assert!(svm.score(&[0.1, -0.1]) > svm.score(&[-0.95, 0.9]));
    }

    #[test]
    fn positive_weight_shifts_the_boundary() {
        let train = blobs(100, 5, 0.25);
        let plain = SvmTrainer { c: 1.0, ..Default::default() }.fit(&train, 0);
        let weighted =
            SvmTrainer { c: 1.0, positive_weight: 8.0, ..Default::default() }.fit(&train, 0);
        // Weighted SVM scores a borderline point higher toward positive.
        let probe = [1.0f32, 0.0];
        assert!(weighted.score(&probe) > plain.score(&probe));
    }

    #[test]
    fn subsample_cap_is_respected() {
        let train = blobs(500, 7, 0.8);
        let svm = SvmTrainer { max_samples: Some(100), ..Default::default() }.fit(&train, 0);
        assert!(svm.num_support_vectors() <= 100);
        // Still learns the task.
        assert!(svm.score(&[1.8, 0.0]) > svm.score(&[0.2, 0.0]));
    }

    #[test]
    fn deterministic_fit() {
        let train = blobs(80, 9, 0.5);
        let a = SvmTrainer::default().fit(&train, 4);
        let b = SvmTrainer::default().fit(&train, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn model_serde_round_trip_preserves_decisions() {
        let train = blobs(60, 15, 0.5);
        let svm = SvmTrainer::default().fit(&train, 1);
        let json = serde_json::to_string(&svm).expect("serialize");
        let back: Svm = serde_json::from_str(&json).expect("deserialize");
        for probe in [[0.2f32, 0.0], [1.8, 0.3]] {
            assert_eq!(svm.decision(&probe), back.decision(&probe));
        }
    }

    #[test]
    fn complexity_reflects_support_vectors() {
        let train = blobs(100, 11, 0.4);
        let svm = SvmTrainer::default().fit(&train, 0);
        let c = svm.complexity();
        assert_eq!(c.num_parameters, svm.num_support_vectors() * 3 + 2);
        assert!(c.prediction_ops > svm.num_support_vectors() * 6);
    }

    #[test]
    fn gamma_heuristic_is_finite_and_positive() {
        let train = blobs(50, 13, 0.5);
        let svm = SvmTrainer { gamma: None, ..Default::default() }.fit(&train, 0);
        assert!(svm.gamma().is_finite() && svm.gamma() > 0.0);
    }
}

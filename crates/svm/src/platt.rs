//! Platt scaling: fits `P(y=1 | f) = 1 / (1 + exp(A·f + B))` on decision
//! values, turning SVM margins into calibrated probabilities (Platt 1999,
//! with the Lin/Weng/Keerthi numerically-stable Newton iteration).

use serde::{Deserialize, Serialize};

/// A fitted sigmoid calibration `f ↦ 1 / (1 + exp(A·f + B))`.
///
/// # Example
///
/// ```
/// use drcshap_svm::PlattScaler;
///
/// let decisions = [-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
/// let labels = [false, false, false, true, true, true];
/// let scaler = PlattScaler::fit(&decisions, &labels);
/// assert!(scaler.probability(2.0) > 0.5);
/// assert!(scaler.probability(-2.0) < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    /// Sigmoid slope (negative for well-oriented scores).
    pub a: f64,
    /// Sigmoid offset.
    pub b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid by Newton's method with backtracking.
    ///
    /// # Panics
    ///
    /// Panics if `decisions` and `labels` differ in length, are empty, or
    /// contain a single class.
    pub fn fit(decisions: &[f64], labels: &[bool]) -> Self {
        assert_eq!(decisions.len(), labels.len(), "length mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "Platt scaling needs both classes");

        // Regularized targets (Platt's prior smoothing).
        let hi = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let lo = 1.0 / (n_neg as f64 + 2.0);
        let t: Vec<f64> = labels.iter().map(|&l| if l { hi } else { lo }).collect();

        let mut a = 0.0f64;
        let mut b = ((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();
        // Negative log-likelihood with P(y=1) = 1/(1+exp(z)):
        // NLL = Σ log(1 + exp(z)) − (1 − t)·z, stable both ways.
        let objective = |a: f64, b: f64| -> f64 {
            let mut o = 0.0;
            for (&f, &ti) in decisions.iter().zip(&t) {
                let z = a * f + b;
                let lse = if z >= 0.0 { z + (-z).exp().ln_1p() } else { z.exp().ln_1p() };
                o += lse - (1.0 - ti) * z;
            }
            o
        };

        let mut obj = objective(a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut ga, mut gb, mut haa, mut hab, mut hbb) = (0.0, 0.0, 1e-12, 0.0, 1e-12);
            for (&f, &ti) in decisions.iter().zip(&t) {
                let z = a * f + b;
                let p = 1.0 / (1.0 + z.exp()); // P(y=1)
                let g = (1.0 - p) - (1.0 - ti); // sigma(z) - (1 - t)
                ga += g * f;
                gb += g;
                let w = p * (1.0 - p);
                haa += w * f * f;
                hab += w * f;
                hbb += w;
            }
            let det = haa * hbb - hab * hab;
            if det.abs() < 1e-18 || (ga.abs() < 1e-9 && gb.abs() < 1e-9) {
                break;
            }
            let da = -(hbb * ga - hab * gb) / det;
            let db = -(-hab * ga + haa * gb) / det;
            // Backtracking line search.
            let mut step = 1.0;
            loop {
                let (na, nb) = (a + step * da, b + step * db);
                let nobj = objective(na, nb);
                if nobj < obj + 1e-12 {
                    a = na;
                    b = nb;
                    obj = nobj;
                    break;
                }
                step *= 0.5;
                if step < 1e-10 {
                    return Self { a, b };
                }
            }
        }
        Self { a, b }
    }

    /// The calibrated probability for decision value `f`.
    pub fn probability(&self, f: f64) -> f64 {
        let z = self.a * f + self.b;
        if z >= 0.0 {
            (-z).exp() / (1.0 + (-z).exp())
        } else {
            1.0 / (1.0 + z.exp())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_monotone_in_decision() {
        let decisions: Vec<f64> = (-10..=10).map(|i| i as f64 / 2.0).collect();
        let labels: Vec<bool> = decisions.iter().map(|&d| d > 0.0).collect();
        let scaler = PlattScaler::fit(&decisions, &labels);
        let mut prev = 0.0;
        for d in [-3.0, -1.0, 0.0, 1.0, 3.0] {
            let p = scaler.probability(d);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev, "not monotone at {d}");
            prev = p;
        }
    }

    #[test]
    fn balanced_midpoint_near_half() {
        let decisions = [-2.0, -1.0, 1.0, 2.0];
        let labels = [false, false, true, true];
        let scaler = PlattScaler::fit(&decisions, &labels);
        let p = scaler.probability(0.0);
        assert!((p - 0.5).abs() < 0.15, "midpoint {p}");
    }

    #[test]
    fn noisy_labels_soften_probabilities() {
        let decisions: Vec<f64> = (0..100).map(|i| (i as f64 - 50.0) / 10.0).collect();
        // 20% label noise.
        let labels: Vec<bool> = decisions
            .iter()
            .enumerate()
            .map(|(i, &d)| if i % 5 == 0 { d <= 0.0 } else { d > 0.0 })
            .collect();
        let scaler = PlattScaler::fit(&decisions, &labels);
        let p = scaler.probability(5.0);
        assert!(p > 0.6 && p < 0.999, "p {p}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let _ = PlattScaler::fit(&[1.0, 2.0], &[true, true]);
    }
}

#![warn(missing_docs)]
//! Support vector machine with RBF kernel, trained by sequential minimal
//! optimization (SMO) — the strongest prior-work baseline in the paper's
//! Table II (Chan et al., Chen et al.).
//!
//! The paper highlights exactly the properties this implementation makes
//! measurable: the model stores thousands of high-dimensional support
//! vectors (`# Model param.`), every prediction evaluates the kernel against
//! all of them (`# Prediction op.`, 110× the RF's), and training is the
//! slowest of the compared families.
//!
//! # Example
//!
//! ```
//! use drcshap_svm::SvmTrainer;
//! use drcshap_ml::{Classifier, Dataset, Trainer};
//!
//! let x: Vec<f32> = (0..40).flat_map(|i| vec![(i % 2) as f32, 0.0]).collect();
//! let y: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect();
//! let data = Dataset::from_parts(x, y, vec![0; 40], 2);
//! let svm = SvmTrainer::default().fit(&data, 0);
//! assert!(svm.score(&[1.0, 0.0]) > svm.score(&[0.0, 0.0]));
//! ```

mod platt;
mod smo;

pub use platt::PlattScaler;
pub use smo::{Svm, SvmTrainer};

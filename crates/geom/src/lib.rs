#![warn(missing_docs)]
//! Geometry substrate for the `drcshap` workspace.
//!
//! Layout geometry in this workspace follows the conventions of the ISPD-2015
//! benchmark suite that the reproduced paper uses: coordinates are in
//! **database units** (DBU, 1 DBU = 1 nm at 65 nm; layouts are given in µm and
//! converted by [`DBU_PER_MICRON`]), the origin is the lower-left corner of the
//! die, and the die is tessellated into a uniform grid of global-routing cells
//! ([`GcellGrid`]).
//!
//! # Example
//!
//! ```
//! use drcshap_geom::{GcellGrid, Point, Rect};
//!
//! // A 600 µm × 600 µm die with 6 µm g-cells is a 100 × 100 grid.
//! let grid = GcellGrid::with_gcell_size(Rect::from_microns(0.0, 0.0, 600.0, 600.0), 6_000);
//! assert_eq!(grid.dims(), (100, 100));
//! let cell = grid.cell_containing(Point::from_microns(3.0, 597.0)).unwrap();
//! assert_eq!((cell.x, cell.y), (0, 99));
//! ```

pub mod budget;
mod grid;
mod point;
mod rect;
mod window;

pub use budget::{BudgetState, CancelToken, Interrupted, Pacer, StageBudget};
pub use grid::{GcellGrid, GcellId};
pub use point::Point;
pub use rect::Rect;
pub use window::{window_edges, Neighbor, Window3x3, WindowEdge, EDGE_COUNT, NEIGHBOR_ORDER};

/// Database units per micron (65 nm node convention: 1 DBU = 1 nm).
pub const DBU_PER_MICRON: i64 = 1_000;

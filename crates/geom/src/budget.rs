//! Cooperative wall-clock budgets and cancellation for long-running stages.
//!
//! The data-acquisition pipeline runs unbounded negotiation loops (rip-up
//! and reroute, maze search, legalization scans). A [`StageBudget`] turns
//! those into *budgeted* loops: the loop polls the budget at iteration
//! granularity through a [`Pacer`] (so the clock is read only every N
//! iterations) and reacts to the two interruption kinds differently:
//!
//! - **deadline expiry** asks the stage to *degrade* — finish with a cheaper
//!   fallback and report a degraded outcome;
//! - **cancellation** ([`CancelToken`]) asks the stage to *stop* — unwind
//!   cleanly with [`Interrupted`] so a supervisor can checkpoint and resume.
//!
//! Budget polling never consumes randomness, so a run under an unlimited
//! budget is bit-identical to the same run without budget plumbing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cooperative cancellation flag.
///
/// Cloning yields a handle to the *same* flag; any clone can cancel, and all
/// observers see it. Cancellation is sticky — there is no reset.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// What a budget poll observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetState {
    /// Keep going.
    Within,
    /// The wall-clock deadline has passed: degrade and finish.
    DeadlineExpired,
    /// Cancellation was requested: unwind with [`Interrupted`].
    Cancelled,
}

/// The typed error a budgeted stage returns when its [`CancelToken`] fires.
///
/// Deadline expiry is deliberately *not* an error — stages degrade instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupted;

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("stage cancelled by its cancel token")
    }
}

impl std::error::Error for Interrupted {}

/// A per-stage execution budget: an optional wall-clock deadline plus an
/// optional cancellation token.
#[derive(Debug, Clone, Default)]
pub struct StageBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
}

impl StageBudget {
    /// A budget that never interrupts (the default for legacy entry points).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        Self { deadline: Some(Instant::now() + limit), cancel: None }
    }

    /// Attaches a cancellation token (builder-style).
    pub fn cancelled_by(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deadline `limit` from now (builder-style); `None` clears it.
    pub fn deadline_in(mut self, limit: Option<Duration>) -> Self {
        self.deadline = limit.map(|d| Instant::now() + d);
        self
    }

    /// Polls the budget. Cancellation takes precedence over the deadline.
    pub fn check(&self) -> BudgetState {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return BudgetState::Cancelled;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return BudgetState::DeadlineExpired;
        }
        BudgetState::Within
    }

    /// A pacer that forwards to [`check`](Self::check) every `every` ticks.
    pub fn pacer(&self, every: u32) -> Pacer {
        Pacer { every: every.max(1), count: 0 }
    }
}

/// Amortizes budget polls over hot loops: `tick` reads the clock only once
/// per `every` calls (the first call always polls, so a pre-expired budget
/// is seen before any work).
#[derive(Debug, Clone)]
pub struct Pacer {
    every: u32,
    count: u32,
}

impl Pacer {
    /// Counts one iteration; polls `budget` on the sampling boundary.
    #[inline]
    pub fn tick(&mut self, budget: &StageBudget) -> BudgetState {
        if self.count == 0 {
            self.count = self.every - 1;
            budget.check()
        } else {
            self.count -= 1;
            BudgetState::Within
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let b = StageBudget::unlimited();
        for _ in 0..1000 {
            assert_eq!(b.check(), BudgetState::Within);
        }
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let b = StageBudget::with_deadline(Duration::ZERO);
        assert_eq!(b.check(), BudgetState::DeadlineExpired);
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let token = CancelToken::new();
        let b = StageBudget::with_deadline(Duration::ZERO).cancelled_by(token.clone());
        assert_eq!(b.check(), BudgetState::DeadlineExpired);
        token.cancel();
        assert_eq!(b.check(), BudgetState::Cancelled);
        assert!(token.is_cancelled());
    }

    #[test]
    fn token_clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn pacer_polls_first_tick_and_then_samples() {
        let token = CancelToken::new();
        let budget = StageBudget::unlimited().cancelled_by(token.clone());
        token.cancel();
        let mut pacer = budget.pacer(8);
        // First tick always polls.
        assert_eq!(pacer.tick(&budget), BudgetState::Cancelled);
        // The next 7 ticks are sampled out.
        for _ in 0..7 {
            assert_eq!(pacer.tick(&budget), BudgetState::Within);
        }
        assert_eq!(pacer.tick(&budget), BudgetState::Cancelled);
    }

    #[test]
    fn deadline_in_none_clears_the_deadline() {
        let b = StageBudget::with_deadline(Duration::ZERO).deadline_in(None);
        assert_eq!(b.check(), BudgetState::Within);
    }

    #[test]
    fn interrupted_displays() {
        assert!(Interrupted.to_string().contains("cancelled"));
    }
}

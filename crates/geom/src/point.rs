use serde::{Deserialize, Serialize};

use crate::DBU_PER_MICRON;

/// A point in layout space, in database units (DBU).
///
/// # Example
///
/// ```
/// use drcshap_geom::Point;
///
/// let a = Point::new(0, 0);
/// let b = Point::from_microns(1.0, 2.0);
/// assert_eq!(a.manhattan_distance(b), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Horizontal coordinate in DBU.
    pub x: i64,
    /// Vertical coordinate in DBU.
    pub y: i64,
}

impl Point {
    /// Creates a point from DBU coordinates.
    pub const fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Creates a point from micron coordinates, rounding to the nearest DBU.
    ///
    /// # Example
    ///
    /// ```
    /// use drcshap_geom::Point;
    /// assert_eq!(Point::from_microns(0.5, 1.0), Point::new(500, 1000));
    /// ```
    pub fn from_microns(x: f64, y: f64) -> Self {
        Self {
            x: (x * DBU_PER_MICRON as f64).round() as i64,
            y: (y * DBU_PER_MICRON as f64).round() as i64,
        }
    }

    /// The Manhattan (L1) distance to `other`, the metric used for the paper's
    /// *pin spacing* feature (mean pairwise Manhattan distance of pins).
    pub fn manhattan_distance(self, other: Point) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Component-wise translation.
    pub fn offset(self, dx: i64, dy: i64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// This point's coordinates in microns.
    pub fn to_microns(self) -> (f64, f64) {
        (self.x as f64 / DBU_PER_MICRON as f64, self.y as f64 / DBU_PER_MICRON as f64)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(10, -3);
        let b = Point::new(-5, 7);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
        assert_eq!(a.manhattan_distance(b), 15 + 10);
    }

    #[test]
    fn micron_round_trip() {
        let p = Point::from_microns(123.456, 0.001);
        assert_eq!(p, Point::new(123_456, 1));
        let (x, y) = p.to_microns();
        assert!((x - 123.456).abs() < 1e-9);
        assert!((y - 0.001).abs() < 1e-9);
    }

    #[test]
    fn offset_translates_both_axes() {
        assert_eq!(Point::new(1, 2).offset(-3, 4), Point::new(-2, 6));
    }

    proptest! {
        #[test]
        fn prop_triangle_inequality(
            ax in -1_000_000i64..1_000_000, ay in -1_000_000i64..1_000_000,
            bx in -1_000_000i64..1_000_000, by in -1_000_000i64..1_000_000,
            cx in -1_000_000i64..1_000_000, cy in -1_000_000i64..1_000_000,
        ) {
            let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
            prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
        }

        #[test]
        fn prop_distance_nonnegative(ax in any::<i32>(), ay in any::<i32>(), bx in any::<i32>(), by in any::<i32>()) {
            let a = Point::new(ax as i64, ay as i64);
            let b = Point::new(bx as i64, by as i64);
            prop_assert!(a.manhattan_distance(b) >= 0);
        }
    }
}

use serde::{Deserialize, Serialize};

use crate::{Point, DBU_PER_MICRON};

/// An axis-aligned rectangle in layout space, in DBU, with inclusive lower-left
/// and exclusive upper-right corners (`lo.x <= x < hi.x`).
///
/// Rectangles model die areas, macro outlines, cell outlines, routing
/// blockages and DRC-violation bounding boxes.
///
/// # Example
///
/// ```
/// use drcshap_geom::Rect;
///
/// let die = Rect::from_microns(0.0, 0.0, 600.0, 600.0);
/// let blockage = Rect::from_microns(100.0, 100.0, 200.0, 150.0);
/// assert!(die.contains_rect(&blockage));
/// assert_eq!(blockage.area(), 100_000 * 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner (inclusive).
    pub lo: Point,
    /// Upper-right corner (exclusive).
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates in DBU.
    ///
    /// # Panics
    ///
    /// Panics if `x1 > x2` or `y1 > y2` (degenerate, zero-area rectangles are
    /// allowed; inverted ones are not).
    pub fn new(x1: i64, y1: i64, x2: i64, y2: i64) -> Self {
        assert!(x1 <= x2 && y1 <= y2, "inverted rectangle ({x1},{y1})-({x2},{y2})");
        Self { lo: Point::new(x1, y1), hi: Point::new(x2, y2) }
    }

    /// Creates a rectangle from corner coordinates in microns.
    pub fn from_microns(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        Self::new(
            (x1 * DBU_PER_MICRON as f64).round() as i64,
            (y1 * DBU_PER_MICRON as f64).round() as i64,
            (x2 * DBU_PER_MICRON as f64).round() as i64,
            (y2 * DBU_PER_MICRON as f64).round() as i64,
        )
    }

    /// Width along x, in DBU.
    pub fn width(&self) -> i64 {
        self.hi.x - self.lo.x
    }

    /// Height along y, in DBU.
    pub fn height(&self) -> i64 {
        self.hi.y - self.lo.y
    }

    /// Area in DBU².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// The center point (rounded down to DBU).
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) / 2, (self.lo.y + self.hi.y) / 2)
    }

    /// Whether `p` lies inside (lower-left inclusive, upper-right exclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x < self.hi.x && p.y >= self.lo.y && p.y < self.hi.y
    }

    /// Whether `other` lies entirely inside `self` (boundary-touching allowed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.lo.x >= self.lo.x
            && other.lo.y >= self.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// Whether the two rectangles overlap with positive area.
    ///
    /// Hotspot labelling in the paper is "g-cell overlaps any DRC error
    /// bounding box"; edge-touching rectangles do *not* overlap.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(
            self.lo.x.max(other.lo.x),
            self.lo.y.max(other.lo.y),
            self.hi.x.min(other.hi.x),
            self.hi.y.min(other.hi.y),
        ))
    }

    /// Area of overlap with `other`, zero when disjoint.
    pub fn overlap_area(&self, other: &Rect) -> i64 {
        self.intersection(other).map_or(0, |r| r.area())
    }

    /// The smallest rectangle covering both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.lo.x.min(other.lo.x),
            self.lo.y.min(other.lo.y),
            self.hi.x.max(other.hi.x),
            self.hi.y.max(other.hi.y),
        )
    }

    /// Grows the rectangle by `margin` DBU on every side.
    ///
    /// # Panics
    ///
    /// Panics if a negative margin would invert the rectangle.
    pub fn inflate(&self, margin: i64) -> Rect {
        Rect::new(self.lo.x - margin, self.lo.y - margin, self.hi.x + margin, self.hi.y + margin)
    }

    /// Clamps the rectangle into `bounds`; `None` when disjoint from it.
    pub fn clip_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} - {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_dimensions() {
        let r = Rect::new(0, 0, 10, 5);
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 50);
        assert_eq!(r.center(), Point::new(5, 2));
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rect_panics() {
        let _ = Rect::new(10, 0, 0, 5);
    }

    #[test]
    fn containment_is_half_open() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(10, 0)));
        assert!(!r.contains(Point::new(0, 10)));
        assert!(r.contains(Point::new(9, 9)));
    }

    #[test]
    fn edge_touching_rects_do_not_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        assert!(!a.overlaps(&b));
        assert_eq!(a.overlap_area(&b), 0);
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.overlap_area(&b), 25);
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
    }

    #[test]
    fn inflate_grows_every_side() {
        let r = Rect::new(5, 5, 10, 10).inflate(2);
        assert_eq!(r, Rect::new(3, 3, 12, 12));
    }

    fn arb_rect() -> impl Strategy<Value = Rect> {
        (0i64..1000, 0i64..1000, 1i64..1000, 1i64..1000)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
    }

    proptest! {
        #[test]
        fn prop_intersection_within_both(a in arb_rect(), b in arb_rect()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
                prop_assert!(i.area() > 0);
            }
        }

        #[test]
        fn prop_union_contains_both(a in arb_rect(), b in arb_rect()) {
            let u = a.union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }

        #[test]
        fn prop_overlap_symmetric(a in arb_rect(), b in arb_rect()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert_eq!(a.overlap_area(&b), b.overlap_area(&a));
        }

        #[test]
        fn prop_overlap_area_bounded(a in arb_rect(), b in arb_rect()) {
            let ov = a.overlap_area(&b);
            prop_assert!(ov <= a.area().min(b.area()));
        }
    }
}

use serde::{Deserialize, Serialize};

use crate::{Point, Rect};

/// Identifier of a global-routing cell (g-cell) within a [`GcellGrid`]:
/// column `x` and row `y`, zero-based from the lower-left corner of the die.
///
/// # Example
///
/// ```
/// use drcshap_geom::GcellId;
/// let id = GcellId::new(3, 7);
/// assert_eq!((id.x, id.y), (3, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GcellId {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl GcellId {
    /// Creates a g-cell identifier from column and row indices.
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

impl std::fmt::Display for GcellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g({},{})", self.x, self.y)
    }
}

/// A uniform tessellation of the die area into square g-cells — the spatial
/// granularity at which global routing is performed and DRC hotspots are
/// predicted ([Westra et al. 2005] as cited by the paper).
///
/// The last column/row of cells absorbs any remainder when the die dimension
/// is not an exact multiple of the g-cell size, matching industrial practice.
///
/// # Example
///
/// ```
/// use drcshap_geom::{GcellGrid, GcellId, Rect};
///
/// let grid = GcellGrid::with_gcell_size(Rect::from_microns(0.0, 0.0, 265.0, 265.0), 5_000);
/// assert_eq!(grid.dims(), (53, 53));
/// assert_eq!(grid.num_cells(), 53 * 53);
/// let rect = grid.cell_rect(GcellId::new(52, 52));
/// assert_eq!(rect.hi, grid.die().hi);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcellGrid {
    die: Rect,
    gcell_size: i64,
    nx: u32,
    ny: u32,
}

impl GcellGrid {
    /// Creates a grid over `die` with square g-cells of side `gcell_size` DBU.
    /// A partial final column/row is merged into the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `gcell_size <= 0` or the die is smaller than one g-cell.
    pub fn with_gcell_size(die: Rect, gcell_size: i64) -> Self {
        assert!(gcell_size > 0, "g-cell size must be positive");
        assert!(
            die.width() >= gcell_size && die.height() >= gcell_size,
            "die {die} smaller than one g-cell ({gcell_size})"
        );
        let nx = (die.width() / gcell_size).max(1) as u32;
        let ny = (die.height() / gcell_size).max(1) as u32;
        Self { die, gcell_size, nx, ny }
    }

    /// Creates a grid with exactly `nx` × `ny` cells covering `die`.
    ///
    /// The nominal g-cell size is `die.width() / nx` (used for the x pitch)
    /// and rows use `die.height() / ny`; any remainder goes to the last
    /// column/row.
    ///
    /// # Panics
    ///
    /// Panics if `nx == 0 || ny == 0`.
    pub fn with_dims(die: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid dims must be positive");
        let gcell_size = die.width() / nx as i64;
        assert!(gcell_size > 0, "die too narrow for {nx} columns");
        Self { die, gcell_size, nx, ny }
    }

    /// The die rectangle this grid tessellates.
    pub fn die(&self) -> &Rect {
        &self.die
    }

    /// Nominal g-cell side length in DBU.
    pub fn gcell_size(&self) -> i64 {
        self.gcell_size
    }

    /// Grid dimensions `(columns, rows)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Total number of g-cells.
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Whether `id` addresses a cell inside this grid.
    pub fn contains_cell(&self, id: GcellId) -> bool {
        id.x < self.nx && id.y < self.ny
    }

    /// Linear index of `id` in row-major order (row `y`, then column `x`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn index_of(&self, id: GcellId) -> usize {
        assert!(self.contains_cell(id), "{id} outside {}x{} grid", self.nx, self.ny);
        id.y as usize * self.nx as usize + id.x as usize
    }

    /// The cell at linear `index` (inverse of [`GcellGrid::index_of`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_cells()`.
    pub fn cell_at_index(&self, index: usize) -> GcellId {
        assert!(index < self.num_cells(), "index {index} out of bounds");
        GcellId::new((index % self.nx as usize) as u32, (index / self.nx as usize) as u32)
    }

    /// The cell whose rectangle contains `p`, or `None` if `p` is off-die.
    pub fn cell_containing(&self, p: Point) -> Option<GcellId> {
        if !self.die.contains(p) {
            return None;
        }
        let x = (((p.x - self.die.lo.x) / self.gcell_size) as u32).min(self.nx - 1);
        let ystep = self.die.height() / self.ny as i64;
        let y = (((p.y - self.die.lo.y) / ystep) as u32).min(self.ny - 1);
        Some(GcellId::new(x, y))
    }

    /// The rectangle covered by `id`. Last column/row extends to the die edge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn cell_rect(&self, id: GcellId) -> Rect {
        assert!(self.contains_cell(id), "{id} outside {}x{} grid", self.nx, self.ny);
        let ystep = self.die.height() / self.ny as i64;
        let x1 = self.die.lo.x + id.x as i64 * self.gcell_size;
        let y1 = self.die.lo.y + id.y as i64 * ystep;
        let x2 = if id.x + 1 == self.nx { self.die.hi.x } else { x1 + self.gcell_size };
        let y2 = if id.y + 1 == self.ny { self.die.hi.y } else { y1 + ystep };
        Rect::new(x1, y1, x2, y2)
    }

    /// Center of `id`'s rectangle, normalized so each axis spans `[0, 1]`
    /// across the die — the paper's g-cell coordinate features.
    pub fn normalized_center(&self, id: GcellId) -> (f64, f64) {
        let c = self.cell_rect(id).center();
        (
            (c.x - self.die.lo.x) as f64 / self.die.width() as f64,
            (c.y - self.die.lo.y) as f64 / self.die.height() as f64,
        )
    }

    /// The neighbor of `id` offset by `(dx, dy)` grid steps, or `None` when
    /// that would fall off the grid (the paper pads such neighbours blank).
    pub fn neighbor(&self, id: GcellId, dx: i32, dy: i32) -> Option<GcellId> {
        let x = id.x as i64 + dx as i64;
        let y = id.y as i64 + dy as i64;
        if x < 0 || y < 0 || x >= self.nx as i64 || y >= self.ny as i64 {
            None
        } else {
            Some(GcellId::new(x as u32, y as u32))
        }
    }

    /// Iterates all cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = GcellId> + '_ {
        (0..self.ny).flat_map(move |y| (0..self.nx).map(move |x| GcellId::new(x, y)))
    }

    /// All g-cells whose rectangle overlaps `rect` (positive-area overlap).
    pub fn cells_overlapping(&self, rect: &Rect) -> Vec<GcellId> {
        let Some(clipped) = rect.clip_to(&self.die) else {
            return Vec::new();
        };
        let lo = self.cell_containing(clipped.lo).expect("clipped.lo is on-die by construction");
        // hi is exclusive; step one DBU inside to find the last covered cell.
        let hi_probe = Point::new(clipped.hi.x - 1, clipped.hi.y - 1);
        let hi = self.cell_containing(hi_probe).expect("clipped.hi-1 is on-die by construction");
        let mut out = Vec::with_capacity(((hi.x - lo.x + 1) * (hi.y - lo.y + 1)) as usize);
        for y in lo.y..=hi.y {
            for x in lo.x..=hi.x {
                out.push(GcellId::new(x, y));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid_100() -> GcellGrid {
        GcellGrid::with_gcell_size(Rect::from_microns(0.0, 0.0, 600.0, 600.0), 6_000)
    }

    #[test]
    fn dims_match_table1_designs() {
        // des_perf_b: 600x600 um, 10000 g-cells at 6 um pitch.
        assert_eq!(grid_100().num_cells(), 10_000);
        // fft_2: 265x265 um, 3249 g-cells -> 57x57 at ~4.64 um; with_dims path.
        let g = GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 265.0, 265.0), 57, 57);
        assert_eq!(g.num_cells(), 3_249);
    }

    #[test]
    fn index_round_trip() {
        let g = grid_100();
        for idx in [0usize, 1, 99, 100, 9_999] {
            assert_eq!(g.index_of(g.cell_at_index(idx)), idx);
        }
    }

    #[test]
    fn cell_containing_handles_boundaries() {
        let g = grid_100();
        assert_eq!(g.cell_containing(Point::new(0, 0)), Some(GcellId::new(0, 0)));
        assert_eq!(g.cell_containing(Point::from_microns(600.0, 0.0)), None);
        assert_eq!(
            g.cell_containing(Point::from_microns(599.999, 599.999)),
            Some(GcellId::new(99, 99))
        );
    }

    #[test]
    fn last_cell_absorbs_remainder() {
        // 265 um / 6 um = 44 cells, last cell wider.
        let g = GcellGrid::with_gcell_size(Rect::from_microns(0.0, 0.0, 265.0, 265.0), 6_000);
        assert_eq!(g.dims(), (44, 44));
        let last = g.cell_rect(GcellId::new(43, 43));
        assert_eq!(last.hi, g.die().hi);
        assert!(last.width() > g.gcell_size());
    }

    #[test]
    fn neighbor_respects_boundaries() {
        let g = grid_100();
        assert_eq!(g.neighbor(GcellId::new(0, 0), -1, 0), None);
        assert_eq!(g.neighbor(GcellId::new(0, 0), 1, 1), Some(GcellId::new(1, 1)));
        assert_eq!(g.neighbor(GcellId::new(99, 99), 0, 1), None);
    }

    #[test]
    fn normalized_center_in_unit_square() {
        let g = grid_100();
        let (x0, y0) = g.normalized_center(GcellId::new(0, 0));
        let (x1, y1) = g.normalized_center(GcellId::new(99, 99));
        assert!(x0 > 0.0 && x0 < 0.02 && y0 > 0.0 && y0 < 0.02);
        assert!(x1 > 0.98 && x1 < 1.0 && y1 > 0.98 && y1 < 1.0);
    }

    #[test]
    fn cells_overlapping_counts() {
        let g = grid_100();
        // A rect exactly covering 2x3 cells.
        let r = Rect::from_microns(6.0, 12.0, 18.0, 30.0);
        assert_eq!(g.cells_overlapping(&r).len(), 6);
        // Off-die rect overlaps nothing.
        let r = Rect::from_microns(700.0, 700.0, 710.0, 710.0);
        assert!(g.cells_overlapping(&r).is_empty());
        // A rect poking one DBU into a cell overlaps it.
        let r = Rect::new(5_999, 0, 6_001, 1);
        assert_eq!(g.cells_overlapping(&r).len(), 2);
    }

    #[test]
    fn iter_visits_every_cell_once() {
        let g = GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 30.0, 20.0), 3, 2);
        let cells: Vec<_> = g.iter().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], GcellId::new(0, 0));
        assert_eq!(cells[5], GcellId::new(2, 1));
    }

    proptest! {
        #[test]
        fn prop_cell_rects_tile_die(nx in 1u32..20, ny in 1u32..20) {
            let die = Rect::from_microns(0.0, 0.0, 100.0, 80.0);
            let g = GcellGrid::with_dims(die, nx, ny);
            let total: i64 = g.iter().map(|c| g.cell_rect(c).area()).sum();
            prop_assert_eq!(total, die.area());
        }

        #[test]
        fn prop_cell_containing_consistent(px in 0i64..600_000, py in 0i64..600_000) {
            let g = grid_100();
            let p = Point::new(px, py);
            let c = g.cell_containing(p).unwrap();
            prop_assert!(g.cell_rect(c).contains(p));
        }

        #[test]
        fn prop_overlapping_cells_actually_overlap(
            x in 0i64..590_000, y in 0i64..590_000, w in 1i64..50_000, h in 1i64..50_000
        ) {
            let g = grid_100();
            let r = Rect::new(x, y, x + w, y + h);
            let cells = g.cells_overlapping(&r);
            prop_assert!(!cells.is_empty());
            for c in cells {
                prop_assert!(g.cell_rect(c).overlaps(&r));
            }
        }
    }
}

//! The 3×3 g-cell window of the paper's Section II-A (Fig. 2): every data
//! sample is a central g-cell expanded to its eight neighbours, with
//! off-layout neighbours padded blank, plus the 12 congestion border edges
//! between adjacent cells inside the window.

use serde::{Deserialize, Serialize};

use crate::{GcellGrid, GcellId};

/// Position of a g-cell within a 3×3 window, using the compass codes of the
/// paper's feature-naming convention (Fig. 3(d)): `o` is the central g-cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Neighbor {
    /// North-west neighbour.
    Nw,
    /// North neighbour.
    N,
    /// North-east neighbour.
    Ne,
    /// West neighbour.
    W,
    /// The central g-cell (`o` in the paper's naming).
    Center,
    /// East neighbour.
    E,
    /// South-west neighbour.
    Sw,
    /// South neighbour.
    S,
    /// South-east neighbour.
    Se,
}

/// The canonical feature-ordering of window positions: raster order from the
/// top-left of the window, as the cells read in Fig. 2.
pub const NEIGHBOR_ORDER: [Neighbor; 9] = [
    Neighbor::Nw,
    Neighbor::N,
    Neighbor::Ne,
    Neighbor::W,
    Neighbor::Center,
    Neighbor::E,
    Neighbor::Sw,
    Neighbor::S,
    Neighbor::Se,
];

impl Neighbor {
    /// Grid-step offset `(dx, dy)` from the central cell (y grows north).
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Neighbor::Nw => (-1, 1),
            Neighbor::N => (0, 1),
            Neighbor::Ne => (1, 1),
            Neighbor::W => (-1, 0),
            Neighbor::Center => (0, 0),
            Neighbor::E => (1, 0),
            Neighbor::Sw => (-1, -1),
            Neighbor::S => (0, -1),
            Neighbor::Se => (1, -1),
        }
    }

    /// The compass code used in feature names (`"o"`, `"N"`, `"NE"`, ...).
    pub const fn code(self) -> &'static str {
        match self {
            Neighbor::Nw => "NW",
            Neighbor::N => "N",
            Neighbor::Ne => "NE",
            Neighbor::W => "W",
            Neighbor::Center => "o",
            Neighbor::E => "E",
            Neighbor::Sw => "SW",
            Neighbor::S => "S",
            Neighbor::Se => "SE",
        }
    }

    /// Window coordinates `(wx, wy)` with `(0, 0)` at the south-west corner.
    pub const fn window_coords(self) -> (u8, u8) {
        let (dx, dy) = self.offset();
        ((dx + 1) as u8, (dy + 1) as u8)
    }
}

impl std::fmt::Display for Neighbor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One of the 12 congestion border edges inside a 3×3 window: the border
/// between two adjacent window cells. `V` edges are vertical borders (crossed
/// by horizontal wires), `H` edges are horizontal borders (crossed by
/// vertical wires).
///
/// Edges are numbered 1–12 in raster order from the window's top-left, the
/// same scheme as the paper's Fig. 3(d) labels (`4V`, `7H`, ...): the two
/// vertical borders of the top row, then the three horizontal borders below
/// it, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowEdge {
    /// Label number, 1–12.
    pub label: u8,
    /// `true` for a vertical border (`V` suffix), `false` for horizontal (`H`).
    pub vertical: bool,
    /// Window coordinates of the first adjacent cell (south or west side).
    pub a: (u8, u8),
    /// Window coordinates of the second adjacent cell (north or east side).
    pub b: (u8, u8),
}

impl WindowEdge {
    /// The paper-style label, e.g. `"4V"` or `"7H"`.
    pub fn code(&self) -> String {
        format!("{}{}", self.label, if self.vertical { "V" } else { "H" })
    }
}

impl std::fmt::Display for WindowEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Number of congestion border edges in a 3×3 window.
pub const EDGE_COUNT: usize = 12;

/// The 12 window edges in canonical (label) order.
///
/// Layout (window rows top to bottom; `wy = 2` is the north row):
///
/// ```text
///   +----1V----+----2V----+      (vertical borders inside the top row)
///   |   3H     |   4H     |  5H  (horizontal borders below the top row)
///   +----6V----+----7V----+
///   |   8H     |   9H     | 10H
///   +---11V----+---12V----+      (vertical borders inside the bottom row)
/// ```
pub fn window_edges() -> [WindowEdge; EDGE_COUNT] {
    let mut edges = Vec::with_capacity(EDGE_COUNT);
    let mut label = 1u8;
    // wy = 2 (north row) down to wy = 0 (south row).
    for wy in (0..3u8).rev() {
        // Vertical borders inside row wy: between (wx, wy) and (wx+1, wy).
        for wx in 0..2u8 {
            edges.push(WindowEdge { label, vertical: true, a: (wx, wy), b: (wx + 1, wy) });
            label += 1;
        }
        // Horizontal borders between row wy and row wy-1.
        if wy > 0 {
            for wx in 0..3u8 {
                edges.push(WindowEdge { label, vertical: false, a: (wx, wy - 1), b: (wx, wy) });
                label += 1;
            }
        }
    }
    edges.try_into().expect("exactly 12 window edges")
}

/// A resolved 3×3 window around a central g-cell: each position holds the
/// g-cell at that offset or `None` when it falls off the layout (footnote 2
/// of the paper: boundary windows are padded with blank g-cells).
///
/// # Example
///
/// ```
/// use drcshap_geom::{GcellGrid, GcellId, Neighbor, Rect, Window3x3};
///
/// let grid = GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 30.0, 30.0), 3, 3);
/// let w = Window3x3::around(&grid, GcellId::new(0, 0));
/// assert_eq!(w.cell(Neighbor::Center), Some(GcellId::new(0, 0)));
/// assert_eq!(w.cell(Neighbor::W), None); // off-layout: padded blank
/// assert_eq!(w.cell(Neighbor::Ne), Some(GcellId::new(1, 1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window3x3 {
    center: GcellId,
    cells: [Option<GcellId>; 9],
}

impl Window3x3 {
    /// Resolves the window around `center` on `grid`.
    ///
    /// # Panics
    ///
    /// Panics if `center` is outside `grid`.
    pub fn around(grid: &GcellGrid, center: GcellId) -> Self {
        assert!(grid.contains_cell(center), "window center {center} off-grid");
        let mut cells = [None; 9];
        for (slot, n) in cells.iter_mut().zip(NEIGHBOR_ORDER) {
            let (dx, dy) = n.offset();
            *slot = grid.neighbor(center, dx, dy);
        }
        Self { center, cells }
    }

    /// The central g-cell.
    pub fn center(&self) -> GcellId {
        self.center
    }

    /// The g-cell at window position `n`, `None` when off-layout.
    pub fn cell(&self, n: Neighbor) -> Option<GcellId> {
        let idx = NEIGHBOR_ORDER
            .iter()
            .position(|&m| m == n)
            .expect("NEIGHBOR_ORDER covers all positions");
        self.cells[idx]
    }

    /// The g-cell at window coordinates `(wx, wy)` (`(0,0)` = south-west).
    ///
    /// # Panics
    ///
    /// Panics if `wx >= 3 || wy >= 3`.
    pub fn cell_at(&self, wx: u8, wy: u8) -> Option<GcellId> {
        assert!(wx < 3 && wy < 3, "window coords ({wx},{wy}) out of range");
        let n = NEIGHBOR_ORDER
            .iter()
            .copied()
            .find(|m| m.window_coords() == (wx, wy))
            .expect("all 9 window coords covered");
        self.cell(n)
    }

    /// Iterates `(position, optional g-cell)` in canonical feature order.
    pub fn iter(&self) -> impl Iterator<Item = (Neighbor, Option<GcellId>)> + '_ {
        NEIGHBOR_ORDER.iter().copied().zip(self.cells.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn grid() -> GcellGrid {
        GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 50.0, 50.0), 5, 5)
    }

    #[test]
    fn neighbor_codes_are_unique() {
        let codes: std::collections::HashSet<_> = NEIGHBOR_ORDER.iter().map(|n| n.code()).collect();
        assert_eq!(codes.len(), 9);
    }

    #[test]
    fn window_coords_cover_square() {
        let coords: std::collections::HashSet<_> =
            NEIGHBOR_ORDER.iter().map(|n| n.window_coords()).collect();
        assert_eq!(coords.len(), 9);
        for (wx, wy) in coords {
            assert!(wx < 3 && wy < 3);
        }
        assert_eq!(Neighbor::Center.window_coords(), (1, 1));
        assert_eq!(Neighbor::Sw.window_coords(), (0, 0));
        assert_eq!(Neighbor::Ne.window_coords(), (2, 2));
    }

    #[test]
    fn exactly_twelve_edges_with_unique_labels() {
        let edges = window_edges();
        assert_eq!(edges.len(), EDGE_COUNT);
        let labels: std::collections::HashSet<_> = edges.iter().map(|e| e.label).collect();
        assert_eq!(labels.len(), 12);
        assert!(edges.iter().all(|e| (1..=12).contains(&e.label)));
        // 6 vertical and 6 horizontal borders.
        assert_eq!(edges.iter().filter(|e| e.vertical).count(), 6);
        assert_eq!(edges.iter().filter(|e| !e.vertical).count(), 6);
    }

    #[test]
    fn edges_connect_adjacent_window_cells() {
        for e in window_edges() {
            let (ax, ay) = e.a;
            let (bx, by) = e.b;
            if e.vertical {
                assert_eq!(ay, by);
                assert_eq!(ax + 1, bx);
            } else {
                assert_eq!(ax, bx);
                assert_eq!(ay + 1, by);
            }
        }
    }

    #[test]
    fn edge_codes_match_documented_scheme() {
        let edges = window_edges();
        assert_eq!(edges[0].code(), "1V");
        assert_eq!(edges[2].code(), "3H");
        assert_eq!(edges[5].code(), "6V");
        assert_eq!(edges[11].code(), "12V");
    }

    #[test]
    fn interior_window_fully_populated() {
        let g = grid();
        let w = Window3x3::around(&g, GcellId::new(2, 2));
        assert!(w.iter().all(|(_, c)| c.is_some()));
        assert_eq!(w.cell(Neighbor::N), Some(GcellId::new(2, 3)));
        assert_eq!(w.cell(Neighbor::Sw), Some(GcellId::new(1, 1)));
    }

    #[test]
    fn corner_window_pads_blank() {
        let g = grid();
        let w = Window3x3::around(&g, GcellId::new(0, 0));
        let missing = w.iter().filter(|(_, c)| c.is_none()).count();
        assert_eq!(missing, 5); // NW, N, NE are off for y; W, SW, S... corner = 5 blanks
        assert_eq!(w.cell(Neighbor::S), None);
        assert_eq!(w.cell(Neighbor::E), Some(GcellId::new(1, 0)));
    }

    #[test]
    fn edge_window_pads_three_blank() {
        let g = grid();
        let w = Window3x3::around(&g, GcellId::new(2, 0));
        assert_eq!(w.iter().filter(|(_, c)| c.is_none()).count(), 3);
    }

    #[test]
    fn cell_at_agrees_with_neighbor_lookup() {
        let g = grid();
        let w = Window3x3::around(&g, GcellId::new(3, 3));
        assert_eq!(w.cell_at(1, 1), Some(GcellId::new(3, 3)));
        assert_eq!(w.cell_at(0, 0), w.cell(Neighbor::Sw));
        assert_eq!(w.cell_at(2, 1), w.cell(Neighbor::E));
    }
}

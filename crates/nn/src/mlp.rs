//! The multilayer perceptron: forward pass, backprop, Adam, early stopping.

use drcshap_ml::{Classifier, Dataset, ModelComplexity, Trainer};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One dense layer: row-major weights `[out × in]` plus biases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Layer {
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(input) {
                acc += wi * xi;
            }
            output.push(acc);
        }
    }
}

/// NN hyperparameters and trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnTrainer {
    /// Hidden layer widths (`[40]` = the paper's NN-1, `[40, 10]` = NN-2).
    pub hidden: Vec<usize>,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Loss weight multiplier on positive samples (class imbalance).
    pub positive_weight: f64,
    /// Early stopping: epochs without validation improvement before halting.
    pub patience: usize,
    /// Fraction of training data held out for early stopping.
    pub validation_fraction: f64,
}

impl Default for NnTrainer {
    fn default() -> Self {
        Self {
            hidden: vec![40],
            epochs: 80,
            batch_size: 64,
            learning_rate: 1e-3,
            l2: 1e-5,
            positive_weight: 1.0,
            patience: 8,
            validation_fraction: 0.1,
        }
    }
}

impl Trainer for NnTrainer {
    type Model = NeuralNet;

    fn fit(&self, data: &Dataset, seed: u64) -> NeuralNet {
        assert!(data.n_samples() > 1, "need at least two samples");
        assert!(!self.hidden.is_empty(), "need at least one hidden layer");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = data.n_features();

        // He-initialized layers: hidden... then the single output unit.
        let mut dims = vec![m];
        dims.extend_from_slice(&self.hidden);
        dims.push(1);
        let mut layers: Vec<Layer> = dims
            .windows(2)
            .map(|d| {
                let (n_in, n_out) = (d[0], d[1]);
                let std = (2.0 / n_in as f64).sqrt();
                Layer {
                    w: (0..n_in * n_out).map(|_| normal(&mut rng) * std).collect(),
                    b: vec![0.0; n_out],
                    n_in,
                    n_out,
                }
            })
            .collect();

        // Train/validation split for early stopping (stratified).
        let mut pos: Vec<usize> = (0..data.n_samples()).filter(|&i| data.label(i)).collect();
        let mut neg: Vec<usize> = (0..data.n_samples()).filter(|&i| !data.label(i)).collect();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let vp = ((pos.len() as f64 * self.validation_fraction) as usize).min(pos.len() / 2);
        let vn = ((neg.len() as f64 * self.validation_fraction) as usize).min(neg.len() / 2);
        let val_idx: Vec<usize> = pos[..vp].iter().chain(&neg[..vn]).copied().collect();
        let mut train_idx: Vec<usize> = pos[vp..].iter().chain(&neg[vn..]).copied().collect();

        // Adam state per layer: (weight m, weight v, bias m, bias v).
        type AdamState = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
        let mut adam: Vec<AdamState> = layers
            .iter()
            .map(|l| {
                (
                    vec![0.0; l.w.len()],
                    vec![0.0; l.w.len()],
                    vec![0.0; l.b.len()],
                    vec![0.0; l.b.len()],
                )
            })
            .collect();
        let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;

        let mut best_val = f64::INFINITY;
        let mut best_layers = layers.clone();
        let mut since_best = 0usize;

        let mut acts: Vec<Vec<f64>> = Vec::new();
        let mut deltas: Vec<Vec<f64>> = Vec::new();
        for epoch in 0..self.epochs {
            train_idx.shuffle(&mut rng);
            for batch in train_idx.chunks(self.batch_size) {
                // Accumulate gradients over the batch.
                let mut grads: Vec<(Vec<f64>, Vec<f64>)> =
                    layers.iter().map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()])).collect();
                for &i in batch {
                    forward(&layers, data.row(i), &mut acts);
                    let z =
                        *acts.last().expect("output activation").first().expect("one output unit");
                    let p = sigmoid(z);
                    let target = if data.label(i) { 1.0 } else { 0.0 };
                    let weight = if data.label(i) { self.positive_weight } else { 1.0 };
                    // dL/dz for sigmoid + BCE.
                    let dz = weight * (p - target);
                    backward(&layers, &acts, data.row(i), dz, &mut deltas, &mut grads);
                }
                let scale = 1.0 / batch.len() as f64;
                step += 1;
                let bc1 = 1.0 - beta1.powi(step as i32);
                let bc2 = 1.0 - beta2.powi(step as i32);
                for (li, layer) in layers.iter_mut().enumerate() {
                    let (gw, gb) = &grads[li];
                    let (mw, vw, mb, vb) = &mut adam[li];
                    for k in 0..layer.w.len() {
                        let g = gw[k] * scale + self.l2 * layer.w[k];
                        mw[k] = beta1 * mw[k] + (1.0 - beta1) * g;
                        vw[k] = beta2 * vw[k] + (1.0 - beta2) * g * g;
                        layer.w[k] -=
                            self.learning_rate * (mw[k] / bc1) / ((vw[k] / bc2).sqrt() + eps);
                    }
                    for k in 0..layer.b.len() {
                        let g = gb[k] * scale;
                        mb[k] = beta1 * mb[k] + (1.0 - beta1) * g;
                        vb[k] = beta2 * vb[k] + (1.0 - beta2) * g * g;
                        layer.b[k] -=
                            self.learning_rate * (mb[k] / bc1) / ((vb[k] / bc2).sqrt() + eps);
                    }
                }
            }

            // Early stopping on validation BCE (falls back to training loss
            // when the validation split is degenerate).
            let eval_idx: &[usize] = if val_idx.len() >= 4 { &val_idx } else { &train_idx };
            let mut loss = 0.0;
            for &i in eval_idx {
                forward(&layers, data.row(i), &mut acts);
                let p = sigmoid(acts.last().expect("output")[0]).clamp(1e-9, 1.0 - 1e-9);
                let t = if data.label(i) { 1.0 } else { 0.0 };
                loss += -(t * p.ln() + (1.0 - t) * (1.0 - p).ln());
            }
            loss /= eval_idx.len() as f64;
            if loss + 1e-6 < best_val {
                best_val = loss;
                best_layers = layers.clone();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= self.patience {
                    break;
                }
            }
            let _ = epoch;
        }

        NeuralNet { layers: best_layers, n_features: m }
    }

    fn name(&self) -> &'static str {
        "NN"
    }

    fn describe(&self) -> String {
        format!(
            "NN(hidden={:?}, epochs={}, batch={}, lr={}, w+={})",
            self.hidden, self.epochs, self.batch_size, self.learning_rate, self.positive_weight
        )
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Standard normal via Box–Muller.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Forward pass; `acts[l]` holds the *post-activation* output of layer `l`
/// (ReLU for hidden layers, raw logit for the final layer).
fn forward(layers: &[Layer], x: &[f32], acts: &mut Vec<Vec<f64>>) {
    acts.resize(layers.len(), Vec::new());
    let input: Vec<f64> = x.iter().map(|&v| v as f64).collect();
    for (l, layer) in layers.iter().enumerate() {
        let src = if l == 0 { &input } else { &acts[l - 1].clone() };
        let mut out = std::mem::take(&mut acts[l]);
        layer.forward(src, &mut out);
        if l + 1 < layers.len() {
            for v in &mut out {
                *v = v.max(0.0); // ReLU
            }
        }
        acts[l] = out;
    }
}

/// Backprop from the output logit gradient `dz`, accumulating into `grads`.
fn backward(
    layers: &[Layer],
    acts: &[Vec<f64>],
    x: &[f32],
    dz: f64,
    deltas: &mut Vec<Vec<f64>>,
    grads: &mut [(Vec<f64>, Vec<f64>)],
) {
    deltas.resize(layers.len(), Vec::new());
    *deltas.last_mut().expect("at least one layer") = vec![dz];
    for l in (0..layers.len()).rev() {
        // Accumulate this layer's gradients.
        let delta = std::mem::take(&mut deltas[l]);
        let input: Vec<f64> =
            if l == 0 { x.iter().map(|&v| v as f64).collect() } else { acts[l - 1].clone() };
        let layer = &layers[l];
        let (gw, gb) = &mut grads[l];
        for o in 0..layer.n_out {
            let d = delta[o];
            gb[o] += d;
            let row = &mut gw[o * layer.n_in..(o + 1) * layer.n_in];
            for (g, xi) in row.iter_mut().zip(&input) {
                *g += d * xi;
            }
        }
        // Propagate to the previous layer through the ReLU.
        if l > 0 {
            let prev = &acts[l - 1];
            let mut next_delta = vec![0.0; layer.n_in];
            for (o, &d) in delta.iter().enumerate().take(layer.n_out) {
                let row = &layer.w[o * layer.n_in..(o + 1) * layer.n_in];
                for (nd, wi) in next_delta.iter_mut().zip(row) {
                    *nd += d * wi;
                }
            }
            for (nd, &a) in next_delta.iter_mut().zip(prev) {
                if a <= 0.0 {
                    *nd = 0.0; // ReLU gate
                }
            }
            deltas[l - 1] = next_delta;
        }
        deltas[l] = delta;
    }
}

/// A trained feedforward network; the score is the sigmoid output
/// probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralNet {
    layers: Vec<Layer>,
    n_features: usize,
}

impl NeuralNet {
    /// Number of features the network was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Hidden layer widths.
    pub fn hidden_dims(&self) -> Vec<usize> {
        self.layers[..self.layers.len() - 1].iter().map(|l| l.n_out).collect()
    }
}

impl Classifier for NeuralNet {
    fn score(&self, x: &[f32]) -> f64 {
        let mut acts = Vec::new();
        forward(&self.layers, x, &mut acts);
        sigmoid(acts.last().expect("output layer")[0])
    }

    fn complexity(&self) -> ModelComplexity {
        let params: usize = self.layers.iter().map(|l| l.w.len() + l.b.len()).sum();
        ModelComplexity {
            num_parameters: params,
            // A multiply-add per weight plus an activation per unit.
            prediction_ops: 2 * params + self.layers.iter().map(|l| l.n_out).sum::<usize>(),
        }
    }

    fn name(&self) -> &'static str {
        "NN"
    }

    fn expected_features(&self) -> Option<usize> {
        Some(self.n_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            x.push(a);
            x.push(b);
            y.push(a * a + b * b < 0.4);
        }
        Dataset::from_parts(x, y, vec![0; n], 2)
    }

    #[test]
    fn learns_nonlinear_ring() {
        let train = ring(600, 1);
        let test = ring(300, 2);
        let nn = NnTrainer {
            hidden: vec![16],
            epochs: 150,
            learning_rate: 5e-3,
            patience: 30,
            ..Default::default()
        }
        .fit(&train, 3);
        let scores = nn.score_dataset(&test);
        let auc = drcshap_ml::roc_auc(&scores, test.labels());
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn two_hidden_layers_forward_correctly() {
        let train = ring(200, 4);
        let nn = NnTrainer { hidden: vec![8, 4], epochs: 10, ..Default::default() }.fit(&train, 5);
        assert_eq!(nn.hidden_dims(), vec![8, 4]);
        let p = nn.score(&[0.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn paper_architectures_have_expected_params() {
        // NN-1: 387 -> 40 -> 1: (387+1)*40 + 41 = 15,561 params (~15.6k in
        // Table II); NN-2: 387 -> 40 -> 10 -> 1: 15,520+40 + 410 + 11.
        let m = 387;
        let data =
            Dataset::from_parts(vec![0.0; m * 4], vec![true, false, true, false], vec![0; 4], m);
        let nn1 = NnTrainer { hidden: vec![40], epochs: 1, ..Default::default() }.fit(&data, 0);
        assert_eq!(nn1.complexity().num_parameters, (m + 1) * 40 + 41);
        let nn2 = NnTrainer { hidden: vec![40, 10], epochs: 1, ..Default::default() }.fit(&data, 0);
        assert_eq!(nn2.complexity().num_parameters, (m + 1) * 40 + (40 + 1) * 10 + 11);
    }

    #[test]
    fn deterministic_fit() {
        let train = ring(100, 6);
        let a = NnTrainer { hidden: vec![6], epochs: 5, ..Default::default() }.fit(&train, 9);
        let b = NnTrainer { hidden: vec![6], epochs: 5, ..Default::default() }.fit(&train, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn model_serde_round_trip_preserves_scores() {
        let train = ring(80, 8);
        let nn = NnTrainer { hidden: vec![5], epochs: 5, ..Default::default() }.fit(&train, 2);
        let json = serde_json::to_string(&nn).expect("serialize");
        let back: NeuralNet = serde_json::from_str(&json).expect("deserialize");
        for probe in [[0.0f32, 0.0], [0.5, -0.5], [1.0, 1.0]] {
            assert_eq!(nn.score(&probe), back.score(&probe));
        }
    }

    #[test]
    fn positive_weight_raises_recall_side_scores() {
        // Imbalanced linear task.
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..400 {
            let label = rng.gen_bool(0.08);
            let v: f32 = if label { rng.gen_range(0.4..1.0) } else { rng.gen_range(0.0..0.6) };
            x.push(v);
            x.push(0.0);
            y.push(label);
        }
        let train = Dataset::from_parts(x, y, vec![0; 400], 2);
        let plain = NnTrainer { hidden: vec![8], epochs: 40, ..Default::default() }.fit(&train, 1);
        let weighted =
            NnTrainer { hidden: vec![8], epochs: 40, positive_weight: 10.0, ..Default::default() }
                .fit(&train, 1);
        let probe = [0.5f32, 0.0];
        assert!(weighted.score(&probe) > plain.score(&probe));
    }

    /// Backprop gradients must match central-difference numerical gradients
    /// on a fixed network — the canonical correctness test for any
    /// hand-written autodiff.
    #[test]
    fn backprop_matches_numerical_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        // A tiny 3-2-1 network with random weights.
        let dims = [3usize, 2, 1];
        let mut layers: Vec<Layer> = dims
            .windows(2)
            .map(|d| Layer {
                w: (0..d[0] * d[1]).map(|_| normal(&mut rng) * 0.7).collect(),
                b: (0..d[1]).map(|_| normal(&mut rng) * 0.1).collect(),
                n_in: d[0],
                n_out: d[1],
            })
            .collect();
        let x = [0.3f32, -0.8, 0.5];
        let target = 1.0;

        // Loss at the current parameters.
        let loss = |layers: &[Layer]| -> f64 {
            let mut acts = Vec::new();
            forward(layers, &x, &mut acts);
            let p = sigmoid(acts.last().unwrap()[0]).clamp(1e-12, 1.0 - 1e-12);
            -(target * p.ln() + (1.0 - target) * (1.0 - p).ln())
        };

        // Analytic gradients via backward().
        let mut acts = Vec::new();
        forward(&layers, &x, &mut acts);
        let p = sigmoid(acts.last().unwrap()[0]);
        let dz = p - target;
        let mut grads: Vec<(Vec<f64>, Vec<f64>)> =
            layers.iter().map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()])).collect();
        let mut deltas = Vec::new();
        backward(&layers, &acts, &x, dz, &mut deltas, &mut grads);

        // Central differences over every parameter.
        let eps = 1e-6;
        for li in 0..layers.len() {
            for k in 0..layers[li].w.len() {
                let orig = layers[li].w[k];
                layers[li].w[k] = orig + eps;
                let hi = loss(&layers);
                layers[li].w[k] = orig - eps;
                let lo = loss(&layers);
                layers[li].w[k] = orig;
                let numeric = (hi - lo) / (2.0 * eps);
                let analytic = grads[li].0[k];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} w[{k}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            for k in 0..layers[li].b.len() {
                let orig = layers[li].b[k];
                layers[li].b[k] = orig + eps;
                let hi = loss(&layers);
                layers[li].b[k] = orig - eps;
                let lo = loss(&layers);
                layers[li].b[k] = orig;
                let numeric = (hi - lo) / (2.0 * eps);
                let analytic = grads[li].1[k];
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {li} b[{k}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        // A trivially separable task converges immediately; with tiny
        // patience the trainer must stop long before the epoch budget.
        let x: Vec<f32> = (0..200).flat_map(|i| vec![(i % 2) as f32]).collect();
        let y: Vec<bool> = (0..200).map(|i| i % 2 == 1).collect();
        let train = Dataset::from_parts(x, y, vec![0; 200], 1);
        let start = std::time::Instant::now();
        let nn = NnTrainer { hidden: vec![4], epochs: 10_000, patience: 3, ..Default::default() }
            .fit(&train, 2);
        assert!(nn.score(&[1.0]) > nn.score(&[0.0]));
        assert!(start.elapsed().as_secs() < 30, "early stopping did not kick in");
    }
}

#![warn(missing_docs)]
//! Feedforward neural networks — the paper's NN-1 (one hidden layer of 40
//! ReLU units, after Tabrizi et al. 2018) and NN-2 (40 + 10) baselines.
//!
//! Architecture per the paper §IV-A: ReLU hidden activations, a sigmoid
//! output, binary cross-entropy loss; trained with mini-batch Adam and
//! early stopping on a held-out fraction of the training data.
//!
//! # Example
//!
//! ```
//! use drcshap_nn::NnTrainer;
//! use drcshap_ml::{Classifier, Dataset, Trainer};
//!
//! let x: Vec<f32> = (0..60).flat_map(|i| vec![(i % 2) as f32, 0.3]).collect();
//! let y: Vec<bool> = (0..60).map(|i| i % 2 == 1).collect();
//! let data = Dataset::from_parts(x, y, vec![0; 60], 2);
//! let nn = NnTrainer {
//!     hidden: vec![8],
//!     epochs: 200,
//!     learning_rate: 1e-2,
//!     patience: 50,
//!     ..NnTrainer::default()
//! }
//! .fit(&data, 1);
//! assert!(nn.score(&[1.0, 0.3]) > nn.score(&[0.0, 0.3]));
//! ```

mod mlp;

pub use mlp::{NeuralNet, NnTrainer};

//! Placement rows with interval-based occupancy tracking.

use drcshap_geom::Rect;
use serde::{Deserialize, Serialize};

/// Occupancy map over placement rows: each row keeps a sorted list of
/// disjoint occupied x-intervals, guaranteeing overlap-free placement.
///
/// # Example
///
/// ```
/// use drcshap_geom::Rect;
/// use drcshap_place::RowMap;
///
/// let mut rows = RowMap::new(Rect::new(0, 0, 10_000, 9_000), 1_800);
/// assert_eq!(rows.num_rows(), 5);
/// let x = rows.try_place(0, 0, 10_000, 400).unwrap();
/// assert_eq!(x, 0);
/// // The same spot is now taken; the next fit is just to the right.
/// assert_eq!(rows.try_place(0, 0, 10_000, 400), Some(400));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowMap {
    die: Rect,
    row_height: i64,
    /// Sorted, disjoint occupied `[start, end)` intervals per row.
    occupied: Vec<Vec<(i64, i64)>>,
}

impl RowMap {
    /// Creates an empty row map over `die` with rows of `row_height` DBU.
    ///
    /// # Panics
    ///
    /// Panics if `row_height <= 0` or the die is shorter than one row.
    pub fn new(die: Rect, row_height: i64) -> Self {
        assert!(row_height > 0, "row height must be positive");
        let n = (die.height() / row_height) as usize;
        assert!(n > 0, "die shorter than one placement row");
        Self { die, row_height, occupied: vec![Vec::new(); n] }
    }

    /// Number of placement rows.
    pub fn num_rows(&self) -> usize {
        self.occupied.len()
    }

    /// The y-coordinate of the bottom of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.num_rows()`.
    pub fn row_y(&self, row: usize) -> i64 {
        assert!(row < self.num_rows(), "row {row} out of range");
        self.die.lo.y + row as i64 * self.row_height
    }

    /// The rows whose band intersects `rect` vertically.
    pub fn rows_intersecting(&self, rect: &Rect) -> std::ops::Range<usize> {
        let lo = ((rect.lo.y - self.die.lo.y).max(0) / self.row_height) as usize;
        let hi =
            ((rect.hi.y - self.die.lo.y + self.row_height - 1) / self.row_height).max(0) as usize;
        lo.min(self.num_rows())..hi.min(self.num_rows())
    }

    /// Marks the x-extent of `rect` occupied in every row it intersects
    /// (used for macros and routing blockages before cell placement).
    pub fn block(&mut self, rect: &Rect) {
        let range = self.rows_intersecting(rect);
        for row in range {
            Self::insert_interval(&mut self.occupied[row], (rect.lo.x, rect.hi.x));
        }
    }

    /// Leftmost-fit placement of a `width`-wide cell in `row`, searching
    /// within `[xmin, xmax)`. Returns the chosen x and marks it occupied.
    pub fn try_place(&mut self, row: usize, xmin: i64, xmax: i64, width: i64) -> Option<i64> {
        let x = self.find_gap(row, xmin, xmax, width)?;
        Self::insert_interval(&mut self.occupied[row], (x, x + width));
        Some(x)
    }

    /// Like [`RowMap::try_place`] but requires the same x-span free in
    /// `height_rows` consecutive rows starting at `row` (multi-height cells).
    pub fn try_place_multi(
        &mut self,
        row: usize,
        xmin: i64,
        xmax: i64,
        width: i64,
        height_rows: usize,
    ) -> Option<i64> {
        if row + height_rows > self.num_rows() {
            return None;
        }
        // Scan candidate gaps in the base row; accept the first x that is
        // free in all spanned rows.
        let mut probe = xmin;
        loop {
            let x = self.find_gap(row, probe, xmax, width)?;
            let free_everywhere =
                (row + 1..row + height_rows).all(|r| self.is_free(r, x, x + width));
            if free_everywhere {
                for r in row..row + height_rows {
                    Self::insert_interval(&mut self.occupied[r], (x, x + width));
                }
                return Some(x);
            }
            probe = x + 1;
        }
    }

    /// Whether `[x1, x2)` is entirely free in `row`.
    pub fn is_free(&self, row: usize, x1: i64, x2: i64) -> bool {
        let ivs = &self.occupied[row];
        let idx = ivs.partition_point(|&(_, end)| end <= x1);
        ivs.get(idx).is_none_or(|&(start, _)| start >= x2)
    }

    /// Total occupied length in `row`, in DBU.
    pub fn occupied_length(&self, row: usize) -> i64 {
        self.occupied[row].iter().map(|&(a, b)| b - a).sum()
    }

    fn find_gap(&self, row: usize, xmin: i64, xmax: i64, width: i64) -> Option<i64> {
        let xmin = xmin.max(self.die.lo.x);
        let xmax = xmax.min(self.die.hi.x);
        if xmax - xmin < width {
            return None;
        }
        let ivs = &self.occupied[row];
        let mut cursor = xmin;
        let start_idx = ivs.partition_point(|&(_, end)| end <= xmin);
        for &(start, end) in &ivs[start_idx..] {
            if start >= xmax {
                break;
            }
            if start - cursor >= width {
                return Some(cursor);
            }
            cursor = cursor.max(end);
        }
        if xmax - cursor >= width {
            Some(cursor)
        } else {
            None
        }
    }

    /// Inserts an interval, merging with neighbours. Overlapping inserts are
    /// merged rather than rejected (macros may abut blockages).
    fn insert_interval(ivs: &mut Vec<(i64, i64)>, (mut a, mut b): (i64, i64)) {
        let lo = ivs.partition_point(|&(_, end)| end < a);
        let mut hi = lo;
        while hi < ivs.len() && ivs[hi].0 <= b {
            a = a.min(ivs[hi].0);
            b = b.max(ivs[hi].1);
            hi += 1;
        }
        ivs.splice(lo..hi, std::iter::once((a, b)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn map() -> RowMap {
        RowMap::new(Rect::new(0, 0, 10_000, 7_200), 1_800)
    }

    #[test]
    fn rows_and_y_coordinates() {
        let m = map();
        assert_eq!(m.num_rows(), 4);
        assert_eq!(m.row_y(0), 0);
        assert_eq!(m.row_y(3), 5_400);
    }

    #[test]
    fn leftmost_fit_packs_tightly() {
        let mut m = map();
        assert_eq!(m.try_place(0, 0, 10_000, 1_000), Some(0));
        assert_eq!(m.try_place(0, 0, 10_000, 2_000), Some(1_000));
        assert_eq!(m.try_place(0, 0, 10_000, 7_000), Some(3_000));
        assert_eq!(m.try_place(0, 0, 10_000, 1), None);
        assert_eq!(m.occupied_length(0), 10_000);
    }

    #[test]
    fn block_excludes_macro_area() {
        let mut m = map();
        m.block(&Rect::new(2_000, 0, 5_000, 3_600));
        // Rows 0 and 1 are blocked in [2000, 5000); row 2 is not.
        assert_eq!(m.try_place(0, 0, 10_000, 3_000), Some(5_000));
        assert_eq!(m.try_place(2, 0, 10_000, 3_000), Some(0));
    }

    #[test]
    fn multi_height_requires_both_rows() {
        let mut m = map();
        m.block(&Rect::new(0, 1_800, 400, 3_600)); // row 1 partially blocked
                                                   // A double-height cell at rows 0-1 must skip the blocked x-range.
        let x = m.try_place_multi(0, 0, 10_000, 600, 2).unwrap();
        assert_eq!(x, 400);
        assert!(!m.is_free(0, 400, 1_000));
        assert!(!m.is_free(1, 400, 1_000));
    }

    #[test]
    fn multi_height_out_of_rows_fails() {
        let mut m = map();
        assert_eq!(m.try_place_multi(3, 0, 10_000, 600, 2), None);
    }

    #[test]
    fn window_bounds_respected() {
        let mut m = map();
        assert_eq!(m.try_place(0, 4_000, 4_500, 600), None);
        assert_eq!(m.try_place(0, 4_000, 5_000, 600), Some(4_000));
    }

    #[test]
    fn rows_intersecting_covers_partial_overlap() {
        let m = map();
        assert_eq!(m.rows_intersecting(&Rect::new(0, 0, 10, 1)), 0..1);
        assert_eq!(m.rows_intersecting(&Rect::new(0, 1_700, 10, 1_900)), 0..2);
        assert_eq!(m.rows_intersecting(&Rect::new(0, 0, 10, 7_200)), 0..4);
    }

    proptest! {
        /// Placements never overlap, whatever the sequence of requests.
        #[test]
        fn prop_no_overlaps(widths in prop::collection::vec(1i64..3_000, 1..40)) {
            let mut m = map();
            let mut placed: Vec<(i64, i64)> = Vec::new();
            for w in widths {
                if let Some(x) = m.try_place(0, 0, 10_000, w) {
                    for &(a, b) in &placed {
                        prop_assert!(x + w <= a || x >= b, "overlap at {x}..{} vs {a}..{b}", x + w);
                    }
                    placed.push((x, x + w));
                }
            }
        }

        /// occupied_length equals the sum of successful placements.
        #[test]
        fn prop_occupancy_accounting(widths in prop::collection::vec(1i64..2_000, 1..30)) {
            let mut m = map();
            let mut total = 0i64;
            for w in widths {
                if m.try_place(0, 0, 10_000, w).is_some() {
                    total += w;
                }
            }
            prop_assert_eq!(m.occupied_length(0), total);
        }
    }
}

#![warn(missing_docs)]
//! Placement substrate for the `drcshap` workspace.
//!
//! The reproduced paper places its benchmarks with Eh?Placer and never uses
//! the placer beyond "produce a placed `.def`": what matters downstream is a
//! legal (non-overlapping, row-aligned, macro-avoiding) placement whose local
//! density varies realistically, since cell/pin density and pin spacing are
//! among the paper's 387 features. This crate provides exactly that — a
//! density-field-driven placer with legalization on placement rows.
//!
//! Pipeline position (paper Fig. 1): after `synth::generate_cells`, before
//! `synth::generate_nets` and global routing.
//!
//! # Example
//!
//! ```
//! use drcshap_netlist::{suite, synth, Design};
//! use drcshap_place::place;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let spec = suite::spec("fft_1").unwrap().scaled(0.3);
//! let mut design = Design::new(spec);
//! let mut rng = ChaCha8Rng::seed_from_u64(design.spec.seed());
//! synth::generate_cells(&mut design, &mut rng);
//! let summary = place(&mut design, &mut rng);
//! assert_eq!(summary.placed, design.netlist.num_cells());
//! ```

mod density;
mod placer;
mod rows;

pub use density::DensityMap;
pub use placer::{place, place_budgeted, PlaceSummary};
pub use rows::RowMap;

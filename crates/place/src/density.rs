//! Per-g-cell density fields: the target field that drives the placer and
//! the measured field over a placed design.

use drcshap_geom::{GcellGrid, GcellId};
use drcshap_netlist::Design;
use serde::{Deserialize, Serialize};

/// A scalar field over the g-cell grid (one value per g-cell, row-major).
///
/// # Example
///
/// ```
/// use drcshap_geom::{GcellGrid, GcellId, Rect};
/// use drcshap_place::DensityMap;
///
/// let grid = GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 30.0, 30.0), 3, 3);
/// let mut map = DensityMap::zeros(&grid);
/// map.set(GcellId::new(1, 1), 0.8);
/// assert_eq!(map.value(GcellId::new(1, 1)), 0.8);
/// assert_eq!(map.max(), 0.8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMap {
    dims: (u32, u32),
    values: Vec<f64>,
}

impl DensityMap {
    /// An all-zero field over `grid`.
    pub fn zeros(grid: &GcellGrid) -> Self {
        Self { dims: grid.dims(), values: vec![0.0; grid.num_cells()] }
    }

    /// The measured standard-cell area density of a placed design: for each
    /// g-cell, placed cell area overlapping it divided by the g-cell area.
    pub fn measured(design: &Design) -> Self {
        let grid = &design.grid;
        let mut map = Self::zeros(grid);
        for (id, _) in design.netlist.cells() {
            let Some(outline) = design.cell_outline(id) else { continue };
            for g in grid.cells_overlapping(&outline) {
                let cell_rect = grid.cell_rect(g);
                map.values[grid.index_of(g)] +=
                    outline.overlap_area(&cell_rect) as f64 / cell_rect.area() as f64;
            }
        }
        map
    }

    /// Grid dimensions `(nx, ny)` this field is defined over.
    pub fn dims(&self) -> (u32, u32) {
        self.dims
    }

    /// The value at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the field's grid.
    pub fn value(&self, id: GcellId) -> f64 {
        self.values[self.index(id)]
    }

    /// Sets the value at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the field's grid.
    pub fn set(&mut self, id: GcellId, v: f64) {
        let i = self.index(id);
        self.values[i] = v;
    }

    /// Adds `v` to the value at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the field's grid.
    pub fn add(&mut self, id: GcellId, v: f64) {
        let i = self.index(id);
        self.values[i] += v;
    }

    /// The raw row-major values.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Maximum value of the field (0.0 for an empty field).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean value of the field.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    fn index(&self, id: GcellId) -> usize {
        assert!(
            id.x < self.dims.0 && id.y < self.dims.1,
            "{id} outside {}x{} field",
            self.dims.0,
            self.dims.1
        );
        id.y as usize * self.dims.0 as usize + id.x as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_geom::Rect;

    fn grid() -> GcellGrid {
        GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 40.0, 40.0), 4, 4)
    }

    #[test]
    fn zeros_mean_and_max() {
        let m = DensityMap::zeros(&grid());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max(), 0.0);
        assert_eq!(m.as_slice().len(), 16);
    }

    #[test]
    fn add_and_set() {
        let mut m = DensityMap::zeros(&grid());
        m.add(GcellId::new(2, 3), 0.25);
        m.add(GcellId::new(2, 3), 0.25);
        assert_eq!(m.value(GcellId::new(2, 3)), 0.5);
        m.set(GcellId::new(2, 3), 0.1);
        assert_eq!(m.value(GcellId::new(2, 3)), 0.1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_panics() {
        let m = DensityMap::zeros(&grid());
        let _ = m.value(GcellId::new(4, 0));
    }
}

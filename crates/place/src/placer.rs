//! The density-field-driven placer.
//!
//! Placement proceeds in four steps:
//!
//! 1. Build a [`RowMap`] over the die and block macro outlines and routing
//!    blockages.
//! 2. Shape a *target density field* over the g-cell grid: a uniform base
//!    plus Gaussian "hotspot" bumps whose number and amplitude follow the
//!    design's congestion stress (`DesignSpec::stress`), clipped to the free
//!    capacity of each g-cell.
//! 3. Assign each cell to a g-cell by sampling the target field.
//! 4. Legalize: leftmost-fit each cell into a placement row inside its
//!    g-cell; cells that do not fit spill to a whole-die scan.
//!
//! The result is a legal placement whose local density varies smoothly with
//! deliberate hot regions — the substrate on which net synthesis, global
//! routing and ultimately DRC labels build.

use drcshap_geom::budget::{BudgetState, Interrupted, StageBudget};
use drcshap_geom::{GcellId, Point};
use drcshap_netlist::{CellId, Design};
use drcshap_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::density::DensityMap;
use crate::rows::RowMap;

/// Maximum fill fraction of a g-cell's free area.
const MAX_GCELL_FILL: f64 = 0.95;

/// Outcome statistics of a placement run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaceSummary {
    /// Cells successfully placed (always all cells on suite designs).
    pub placed: usize,
    /// Cells that needed the whole-die spill pass.
    pub spilled: usize,
    /// Number of Gaussian density bumps injected.
    pub hotspot_seeds: usize,
    /// Maximum measured per-g-cell density after placement.
    pub max_density: f64,
    /// Whether the legalization loop ran out of wall-clock budget and
    /// finished with the whole-die spill fallback for the remaining cells.
    #[serde(default)]
    pub deadline_degraded: bool,
}

/// Places every cell of `design` (see the module docs for the algorithm).
///
/// # Panics
///
/// Panics if cells are already placed, or if the die cannot fit the cells
/// (suite specs guarantee utilization ≤ 0.97).
pub fn place<R: Rng>(design: &mut Design, rng: &mut R) -> PlaceSummary {
    match place_budgeted(design, rng, &StageBudget::unlimited()) {
        Ok(summary) => summary,
        Err(Interrupted) => unreachable!("an unlimited budget cannot be cancelled"),
    }
}

/// Budgeted variant of [`place`]: on deadline expiry the remaining cells skip
/// the density-targeted g-cell fit and go straight to the whole-die spill
/// scan (still legal, just less shapely); on cancellation the call returns
/// [`Interrupted`] and the partially placed design should be discarded.
///
/// # Errors
///
/// [`Interrupted`] when the budget's cancel token fires.
///
/// # Panics
///
/// As [`place`].
pub fn place_budgeted<R: Rng>(
    design: &mut Design,
    rng: &mut R,
    budget: &StageBudget,
) -> Result<PlaceSummary, Interrupted> {
    assert_eq!(design.placement.num_placed(), 0, "design already placed");
    design.placement.resize(design.netlist.num_cells());

    let row_height = drcshap_netlist::suite::ROW_HEIGHT_DBU;
    let mut rows = RowMap::new(design.die, row_height);
    for b in design.blockages().collect::<Vec<_>>() {
        rows.block(&b);
    }

    let (target, hotspot_seeds) = target_field(design, rng);
    let assignment = assign_cells(design, &target, rng);

    let mut spilled = 0usize;
    let grid = design.grid.clone();
    // Shuffle for tie-breaking, then place wide (and multi-height) cells
    // first: big-item-first packing keeps rows from fragmenting into gaps
    // too narrow for the remaining cells at high utilization.
    let mut order: Vec<usize> = (0..design.netlist.num_cells()).collect();
    order.shuffle(rng);
    order.sort_by_key(|&i| {
        let c = design.netlist.cell(CellId::from_index(i));
        std::cmp::Reverse((c.multi_height as i64, c.width))
    });
    let mut deadline_hit = false;
    {
        let _legalize_span =
            telemetry::span_with("place/legalize", || format!("{} cells", order.len()));
        let mut pacer = budget.pacer(128);
        for idx in order {
            if !deadline_hit {
                match pacer.tick(budget) {
                    BudgetState::Cancelled => return Err(Interrupted),
                    BudgetState::DeadlineExpired => deadline_hit = true,
                    BudgetState::Within => {}
                }
            }
            let cell_id = CellId::from_index(idx);
            let g = assignment[idx];
            if deadline_hit || !try_place_in_gcell(design, &mut rows, cell_id, g, rng) {
                spill_place(design, &mut rows, cell_id, rng);
                spilled += 1;
            }
        }
    }
    telemetry::counter("place/spilled", spilled as u64);
    debug_assert_eq!(design.placement.num_placed(), design.netlist.num_cells());
    let _ = grid;

    let max_density = DensityMap::measured(design).max();
    Ok(PlaceSummary {
        placed: design.placement.num_placed(),
        spilled,
        hotspot_seeds,
        max_density,
        deadline_degraded: deadline_hit,
    })
}

/// Builds the target cell-area field (DBU² per g-cell) and returns it with
/// the number of injected hotspot bumps.
fn target_field<R: Rng>(design: &Design, rng: &mut R) -> (Vec<f64>, usize) {
    let grid = &design.grid;
    let (nx, ny) = grid.dims();
    let stress = design.spec.stress();
    let n = grid.num_cells();

    // Base weights with stress-scaled Gaussian bumps.
    let num_bumps = (2.0 + stress * (n as f64).sqrt() / 4.0).round() as usize;
    let mut weights = vec![1.0f64; n];
    for _ in 0..num_bumps {
        let cx = rng.gen_range(0..nx) as f64;
        let cy = rng.gen_range(0..ny) as f64;
        let amp = (1.0 + 7.0 * stress) * rng.gen_range(0.5..1.0);
        let sigma: f64 = rng.gen_range(1.2..3.5);
        let reach = (3.0 * sigma).ceil() as i64;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                let x = cx as i64 + dx;
                let y = cy as i64 + dy;
                if x < 0 || y < 0 || x >= nx as i64 || y >= ny as i64 {
                    continue;
                }
                let d2 = (dx * dx + dy * dy) as f64;
                weights[y as usize * nx as usize + x as usize] +=
                    amp * (-d2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }

    // Per-g-cell free capacity (excludes blockages).
    let blockages: Vec<_> = design.blockages().collect();
    let mut capacity = vec![0.0f64; n];
    for g in grid.iter() {
        let rect = grid.cell_rect(g);
        let blocked: i64 = blockages.iter().map(|b| b.overlap_area(&rect)).sum();
        capacity[grid.index_of(g)] = ((rect.area() - blocked).max(0) as f64) * MAX_GCELL_FILL;
    }

    // Total area to distribute.
    let total_cell_area: f64 =
        design.netlist.cells().map(|(_, c)| (c.width * c.height) as f64).sum();

    // Water-fill: distribute proportionally to weights, clip to capacity,
    // redistribute the excess over unclipped cells for a few rounds.
    let mut target = vec![0.0f64; n];
    let mut remaining = total_cell_area;
    let mut active: Vec<usize> = (0..n).filter(|&i| capacity[i] > 0.0).collect();
    for _ in 0..6 {
        if remaining <= 1.0 || active.is_empty() {
            break;
        }
        let wsum: f64 = active.iter().map(|&i| weights[i]).sum();
        if wsum <= 0.0 {
            break;
        }
        let mut next_active = Vec::with_capacity(active.len());
        let mut placed_now = 0.0;
        for &i in &active {
            let share = remaining * weights[i] / wsum;
            let room = capacity[i] - target[i];
            let take = share.min(room);
            target[i] += take;
            placed_now += take;
            if capacity[i] - target[i] > 1.0 {
                next_active.push(i);
            }
        }
        remaining -= placed_now;
        active = next_active;
    }

    (target, num_bumps)
}

/// Samples a g-cell for every cell, consuming target-field budget.
fn assign_cells<R: Rng>(design: &Design, target: &[f64], rng: &mut R) -> Vec<GcellId> {
    let grid = &design.grid;
    let n = grid.num_cells();
    let mut budget: Vec<f64> = target.to_vec();
    // Cumulative distribution for sampling; rebuilt lazily when stale.
    let mut cdf: Vec<f64> = Vec::with_capacity(n);
    let rebuild = |budget: &[f64], cdf: &mut Vec<f64>| {
        cdf.clear();
        let mut acc = 0.0;
        for &b in budget {
            acc += b.max(0.0);
            cdf.push(acc);
        }
        acc
    };
    let mut total = rebuild(&budget, &mut cdf);
    let mut staleness = 0.0f64;

    let mut out = Vec::with_capacity(design.netlist.num_cells());
    for (_, cell) in design.netlist.cells() {
        let area = (cell.width * cell.height) as f64;
        let idx = if total > area {
            let u = rng.gen_range(0.0..total);
            cdf.partition_point(|&c| c <= u).min(n - 1)
        } else {
            // Budget exhausted (rounding); fall back to the emptiest cell.
            budget.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
        };
        budget[idx] -= area;
        staleness += area;
        // Rebuild the CDF once ~2% of the mass has been consumed.
        if staleness > total * 0.02 {
            total = rebuild(&budget, &mut cdf);
            staleness = 0.0;
        }
        out.push(grid.cell_at_index(idx));
    }
    out
}

fn try_place_in_gcell<R: Rng>(
    design: &mut Design,
    rows: &mut RowMap,
    cell_id: CellId,
    g: GcellId,
    rng: &mut R,
) -> bool {
    let rect = design.grid.cell_rect(g);
    let cell = design.netlist.cell(cell_id);
    let (width, multi) = (cell.width, cell.multi_height);
    let row_range = rows.rows_intersecting(&rect);
    if row_range.is_empty() {
        return false;
    }
    let rows_in_gcell: Vec<usize> = row_range.collect();
    let start = rng.gen_range(0..rows_in_gcell.len());
    for k in 0..rows_in_gcell.len() {
        let row = rows_in_gcell[(start + k) % rows_in_gcell.len()];
        let placed = if multi {
            rows.try_place_multi(row, rect.lo.x, rect.hi.x, width, 2)
        } else {
            rows.try_place(row, rect.lo.x, rect.hi.x, width)
        };
        if let Some(x) = placed {
            design.placement.place(cell_id, Point::new(x, rows.row_y(row)));
            return true;
        }
    }
    false
}

/// Whole-die fallback: scan all rows from a random start.
///
/// # Panics
///
/// Panics if the die genuinely has no room (impossible for suite specs).
fn spill_place<R: Rng>(design: &mut Design, rows: &mut RowMap, cell_id: CellId, rng: &mut R) {
    let die = design.die;
    let cell = design.netlist.cell(cell_id);
    let (width, multi) = (cell.width, cell.multi_height);
    let n = rows.num_rows();
    let start = rng.gen_range(0..n);
    for k in 0..n {
        let row = (start + k) % n;
        let placed = if multi {
            if row + 1 >= n {
                continue;
            }
            rows.try_place_multi(row, die.lo.x, die.hi.x, width, 2)
        } else {
            rows.try_place(row, die.lo.x, die.hi.x, width)
        };
        if let Some(x) = placed {
            design.placement.place(cell_id, Point::new(x, rows.row_y(row)));
            return;
        }
    }
    panic!("no placement room for {cell_id} anywhere on the die");
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_netlist::{suite, synth, Design};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn placed_design(name: &str, scale: f64, seed: u64) -> (Design, PlaceSummary) {
        let spec = suite::spec(name).unwrap().scaled(scale);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        synth::generate_cells(&mut d, &mut rng);
        let summary = place(&mut d, &mut rng);
        (d, summary)
    }

    #[test]
    fn places_every_cell() {
        let (d, s) = placed_design("fft_1", 0.35, 3);
        assert_eq!(s.placed, d.netlist.num_cells());
        assert_eq!(d.placement.num_placed(), d.netlist.num_cells());
    }

    #[test]
    fn placements_avoid_macros() {
        let (d, _) = placed_design("fft_a", 0.4, 5);
        let macros: Vec<_> = d.netlist.macros().map(|(_, m)| m.rect).collect();
        assert!(!macros.is_empty());
        for (id, _) in d.netlist.cells() {
            let outline = d.cell_outline(id).unwrap();
            for m in &macros {
                assert!(!outline.overlaps(m), "cell {id} at {outline} overlaps macro {m}");
            }
        }
    }

    #[test]
    fn placements_do_not_overlap() {
        let (d, _) = placed_design("fft_1", 0.3, 7);
        // Overlap check via sweep by row band.
        let mut by_row: std::collections::HashMap<i64, Vec<(i64, i64)>> =
            std::collections::HashMap::new();
        for (id, cell) in d.netlist.cells() {
            let o = d.cell_outline(id).unwrap();
            let rows = o.height() / suite::ROW_HEIGHT_DBU;
            for r in 0..rows {
                by_row
                    .entry(o.lo.y + r * suite::ROW_HEIGHT_DBU)
                    .or_default()
                    .push((o.lo.x, o.lo.x + cell.width));
            }
        }
        for (y, mut spans) in by_row {
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap in row y={y}: {:?} vs {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn cells_stay_on_die() {
        let (d, _) = placed_design("bridge32_a", 0.35, 11);
        for (id, _) in d.netlist.cells() {
            let o = d.cell_outline(id).unwrap();
            assert!(d.die.contains_rect(&o), "cell {id} at {o} leaves the die");
        }
    }

    #[test]
    fn stressed_designs_form_denser_hotspots() {
        let (hot, s_hot) = placed_design("des_perf_1", 0.3, 13);
        let (cool, s_cool) = placed_design("fft_a", 0.3, 13);
        assert!(s_hot.hotspot_seeds >= s_cool.hotspot_seeds);
        let hot_max = DensityMap::measured(&hot).max();
        let cool_mean = DensityMap::measured(&cool).mean();
        assert!(hot_max > 3.0 * cool_mean, "hotspots not denser: {hot_max} vs mean {cool_mean}");
    }

    #[test]
    fn expired_deadline_still_places_every_cell() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        synth::generate_cells(&mut d, &mut rng);
        let budget = StageBudget::with_deadline(std::time::Duration::ZERO);
        let s = place_budgeted(&mut d, &mut rng, &budget).unwrap();
        assert!(s.deadline_degraded);
        assert_eq!(s.placed, d.netlist.num_cells());
        assert_eq!(d.placement.num_placed(), d.netlist.num_cells());
    }

    #[test]
    fn cancelled_budget_interrupts_placement() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        synth::generate_cells(&mut d, &mut rng);
        let token = drcshap_geom::budget::CancelToken::new();
        token.cancel();
        let budget = StageBudget::unlimited().cancelled_by(token);
        assert_eq!(place_budgeted(&mut d, &mut rng, &budget), Err(Interrupted));
    }

    #[test]
    fn placement_is_deterministic() {
        let (a, _) = placed_design("fft_2", 0.3, 21);
        let (b, _) = placed_design("fft_2", 0.3, 21);
        assert_eq!(a.placement, b.placement);
    }
}

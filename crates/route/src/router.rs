//! The global router: planar (2D) pattern routing with negotiated
//! congestion and an A* maze fallback, followed by layer assignment and via
//! demand insertion.
//!
//! The planar-then-layer-assign organization follows standard global-router
//! practice: congestion is negotiated on the combined per-direction capacity,
//! then each straight run is committed to a specific metal layer (short runs
//! prefer low metals, long runs float up to the less-congested high metals),
//! and vias are inserted at endpoints and bends.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use drcshap_geom::budget::{BudgetState, Interrupted, StageBudget};
use drcshap_geom::GcellId;
use drcshap_netlist::Design;
use drcshap_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::RouteConfig;
use crate::congestion::{CongestionMap, EdgeDir};
use crate::decompose::TwoPinConn;
use crate::layers::{MetalLayer, ViaLayer, ALL_METALS};
use crate::outcome::{DegradeReason, RouteOutcome, RouteStatus, RoutedConn, Segment};

/// Globally routes `design` and returns the congestion map, routed
/// connections and summary statistics.
///
/// The run is deterministic for a given `rng` state. Equivalent to
/// [`route_design_budgeted`] under an unlimited budget.
///
/// # Panics
///
/// Panics if any net has unplaced pins.
pub fn route_design<R: Rng>(design: &Design, config: &RouteConfig, rng: &mut R) -> RouteOutcome {
    match route_design_budgeted(design, config, rng, &StageBudget::unlimited()) {
        Ok(outcome) => outcome,
        Err(Interrupted) => unreachable!("an unlimited budget cannot be cancelled"),
    }
}

/// The cheapest complete fallback for a connection: a straight or single-L
/// pattern, with no congestion costing and no randomness.
fn fallback_pattern(conn: &TwoPinConn) -> Vec<GcellId> {
    let (a, b) = (conn.a, conn.b);
    if a.x == b.x || a.y == b.y {
        expand(&[a, b])
    } else {
        expand(&[a, GcellId::new(b.x, a.y), b])
    }
}

/// Budgeted variant of [`route_design`]: polls `budget` at iteration
/// granularity inside the initial pass, the rip-up-and-reroute negotiation
/// rounds, and the A* maze search.
///
/// On **deadline expiry** the router degrades instead of dying: connections
/// not yet routed fall back to uncosted L/Z patterns, remaining negotiation
/// rounds are skipped, and the outcome's [`RouteStatus`] records how many
/// connections were short-changed — the congestion map stays consistent and
/// overflow is recorded, so labelling and feature extraction still work.
///
/// # Errors
///
/// [`Interrupted`] when the budget's cancel token fires; the partial state
/// is discarded (a supervisor resumes from the previous stage checkpoint).
pub fn route_design_budgeted<R: Rng>(
    design: &Design,
    config: &RouteConfig,
    rng: &mut R,
    budget: &StageBudget,
) -> Result<RouteOutcome, Interrupted> {
    let _route_span = telemetry::span("route/design");
    let congestion = CongestionMap::with_capacities(design, config);
    let (nx, ny) = design.grid.dims();
    let mut planar = PlanarState::from_congestion(&congestion, nx, ny, config);

    // Decompose all nets. Decomposition is required for connectivity, so
    // only cancellation (not the deadline) interrupts it.
    let mut conns: Vec<TwoPinConn> = Vec::new();
    let mut local_nets = 0usize;
    let mut pacer = budget.pacer(256);
    for (net_id, _) in design.netlist.nets() {
        if pacer.tick(budget) == BudgetState::Cancelled {
            return Err(Interrupted);
        }
        let cs = crate::steiner::decompose_net_with(design, net_id, config.decomposition);
        if cs.is_empty() {
            local_nets += 1;
        }
        conns.extend(cs);
    }

    // Initial pass, in the configured connection order.
    let mut order: Vec<usize> = (0..conns.len()).collect();
    match config.net_order {
        crate::config::NetOrder::ShortFirst => order.sort_by_key(|&i| conns[i].manhattan_len()),
        crate::config::NetOrder::LongFirst => {
            order.sort_by_key(|&i| std::cmp::Reverse(conns[i].manhattan_len()))
        }
        crate::config::NetOrder::Random => order.shuffle(rng),
    }
    let mut paths: Vec<Vec<GcellId>> = vec![Vec::new(); conns.len()];
    let mut deadline_hit = false;
    let mut fallback_routes = 0usize;
    {
        let _pass_span =
            telemetry::span_with("route/initial_pass", || format!("{} conns", conns.len()));
        let mut pacer = budget.pacer(64);
        for &i in &order {
            if !deadline_hit {
                match pacer.tick(budget) {
                    BudgetState::Cancelled => return Err(Interrupted),
                    BudgetState::DeadlineExpired => deadline_hit = true,
                    BudgetState::Within => {}
                }
            }
            let path = if deadline_hit {
                fallback_routes += 1;
                fallback_pattern(&conns[i])
            } else {
                planar.route_patterns(&conns[i], rng)
            };
            planar.commit(&path, conns[i].demand, 1.0);
            paths[i] = path;
        }
    }

    // Negotiation: rip up and reroute connections crossing overflowed edges.
    'rounds: for round in 0..config.negotiation_rounds {
        if deadline_hit {
            break;
        }
        match budget.check() {
            BudgetState::Cancelled => return Err(Interrupted),
            BudgetState::DeadlineExpired => {
                deadline_hit = true;
                break;
            }
            BudgetState::Within => {}
        }
        let _round_span =
            telemetry::span_with("route/negotiate_round", || format!("round {round}"));
        planar.accumulate_history();
        let mut victims: Vec<usize> =
            (0..conns.len()).filter(|&i| planar.path_overflows(&paths[i])).collect();
        if victims.is_empty() {
            break;
        }
        victims.shuffle(rng);
        let cap = ((conns.len() as f64 * config.max_reroute_fraction) as usize).max(64);
        victims.truncate(cap);
        telemetry::counter("route/ripups", victims.len() as u64);
        let last_round = round + 1 == config.negotiation_rounds;
        let mut pacer = budget.pacer(16);
        for i in victims {
            // Poll *between* victims, so a rip-up is never left uncommitted.
            match pacer.tick(budget) {
                BudgetState::Cancelled => return Err(Interrupted),
                BudgetState::DeadlineExpired => {
                    deadline_hit = true;
                    break 'rounds;
                }
                BudgetState::Within => {}
            }
            planar.commit(&paths[i], conns[i].demand, -1.0);
            let mut path = planar.route_patterns(&conns[i], rng);
            if last_round && planar.path_would_overflow(&path, conns[i].demand) {
                telemetry::counter("route/maze_attempts", 1);
                if let Some(maze) = planar.route_maze(&conns[i], budget) {
                    if planar.path_cost(&maze, conns[i].demand)
                        < planar.path_cost(&path, conns[i].demand)
                    {
                        path = maze;
                        telemetry::counter("route/maze_accepted", 1);
                    }
                }
            }
            planar.commit(&path, conns[i].demand, 1.0);
            paths[i] = path;
        }
    }

    telemetry::counter("route/fallback_patterns", fallback_routes as u64);
    let deadline = deadline_hit.then_some(fallback_routes);
    Ok(finalize_routing(design, congestion, &conns, paths, local_nets, rng, deadline))
}

/// Layer-assigns planar paths, inserts via demand (bends, pin access, local
/// nets) and assembles the final [`RouteOutcome`]. Shared by the full router
/// and the incremental rerouter; `congestion` must carry capacities but no
/// wire loads yet.
///
/// `deadline_fallbacks` is `Some(n)` when the caller's wall-clock budget
/// expired after handing `n` connections an uncosted fallback pattern; the
/// outcome is then marked [`RouteStatus::Degraded`]. Independently, any
/// connection the assignment loop fails to produce (structurally impossible
/// today, but formerly an `expect` panic) is given a fallback pattern route
/// here and counted as degraded instead of aborting the run.
pub(crate) fn finalize_routing<R: Rng>(
    design: &Design,
    mut congestion: CongestionMap,
    conns: &[TwoPinConn],
    mut paths: Vec<Vec<GcellId>>,
    local_nets: usize,
    rng: &mut R,
    deadline_fallbacks: Option<usize>,
) -> RouteOutcome {
    let _finalize_span = telemetry::span("route/finalize");
    // Assign layers in shuffled order (no connection systematically gets
    // the least-congested layers), but keep the output aligned with the
    // input connection order.
    let mut routed: Vec<Option<RoutedConn>> = (0..conns.len()).map(|_| None).collect();
    let mut total_wirelength = 0u64;
    let mut assign_order: Vec<usize> = (0..conns.len()).collect();
    assign_order.shuffle(rng);
    for i in assign_order {
        let conn = &conns[i];
        let path = std::mem::take(&mut paths[i]);
        total_wirelength += (path.len().saturating_sub(1)) as u64;
        let segments = assign_layers(&path, conn.demand, &mut congestion, rng);
        insert_vias(&path, &segments, conn.demand, &mut congestion);
        routed[i] = Some(RoutedConn { net: conn.net, path, segments });
    }
    let mut unassigned = 0usize;
    let mut out: Vec<RoutedConn> = Vec::with_capacity(conns.len());
    for (i, slot) in routed.into_iter().enumerate() {
        match slot {
            Some(r) => out.push(r),
            None => {
                // Degrade, don't die: give the connection a complete (if
                // uncosted) pattern route so downstream stages can proceed.
                unassigned += 1;
                let path = fallback_pattern(&conns[i]);
                total_wirelength += (path.len().saturating_sub(1)) as u64;
                let segments = assign_layers(&path, conns[i].demand, &mut congestion, rng);
                insert_vias(&path, &segments, conns[i].demand, &mut congestion);
                out.push(RoutedConn { net: conns[i].net, path, segments });
            }
        }
    }
    let routed = out;
    let status = match (deadline_fallbacks, unassigned) {
        (None, 0) => RouteStatus::Complete,
        (Some(n), u) => {
            RouteStatus::Degraded { unrouted: n + u, reason: DegradeReason::DeadlineExpired }
        }
        (None, u) => RouteStatus::Degraded { unrouted: u, reason: DegradeReason::Unassigned },
    };

    // Pin-access via demand: every pin consumes a V1 cut in its g-cell;
    // local nets additionally consume a V2 cut for the intra-cell jog.
    for (pin_id, _) in design.netlist.pins() {
        if let Some(pos) = design.pin_position(pin_id) {
            let clamped = drcshap_geom::Point::new(
                pos.x.clamp(design.die.lo.x, design.die.hi.x - 1),
                pos.y.clamp(design.die.lo.y, design.die.hi.y - 1),
            );
            if let Some(g) = design.grid.cell_containing(clamped) {
                congestion.add_via_load(ViaLayer::V1, g, 1.0);
            }
        }
    }
    for (net_id, net) in design.netlist.nets() {
        if decompose_is_local(design, net_id) {
            if let Some(&pin) = net.pins.first() {
                if let Some(pos) = design.pin_position(pin) {
                    if let Some(g) = design.grid.cell_containing(pos) {
                        congestion.add_via_load(ViaLayer::V2, g, 1.0);
                    }
                }
            }
        }
    }

    let edge_overflow = congestion.total_edge_overflow();
    let overflowed_edges = congestion.overflowed_edges();
    let via_overflow = congestion.total_via_overflow();
    RouteOutcome {
        status,
        congestion,
        conns: routed,
        total_wirelength,
        local_nets,
        edge_overflow,
        overflowed_edges,
        via_overflow,
    }
}

fn decompose_is_local(design: &Design, net: drcshap_netlist::NetId) -> bool {
    let n = design.netlist.net(net);
    if n.pins.len() < 2 {
        return false;
    }
    let mut first: Option<GcellId> = None;
    for &pin in &n.pins {
        let Some(pos) = design.pin_position(pin) else { return false };
        let Some(g) = design.grid.cell_containing(pos) else { return false };
        match first {
            None => first = Some(g),
            Some(f) if f != g => return false,
            _ => {}
        }
    }
    true
}

/// Planar (direction-combined) routing state: capacity, load and history per
/// horizontal/vertical edge.
pub(crate) struct PlanarState {
    nx: usize,
    ny: usize,
    h_cap: Vec<f64>,
    v_cap: Vec<f64>,
    h_load: Vec<f64>,
    v_load: Vec<f64>,
    h_hist: Vec<f64>,
    v_hist: Vec<f64>,
    congestion_weight: f64,
    history_increment: f64,
}

impl PlanarState {
    pub(crate) fn from_congestion(
        map: &CongestionMap,
        nx: u32,
        ny: u32,
        config: &RouteConfig,
    ) -> Self {
        let (nx, ny) = (nx as usize, ny as usize);
        let mut h_cap = vec![0.0; (nx - 1).max(1) * ny];
        let mut v_cap = vec![0.0; nx * (ny - 1).max(1)];
        for y in 0..ny {
            for x in 0..nx.saturating_sub(1) {
                let a = GcellId::new(x as u32, y as u32);
                let b = GcellId::new(x as u32 + 1, y as u32);
                h_cap[y * (nx - 1) + x] = map.dir_capacity(EdgeDir::Horizontal, a, b);
            }
        }
        for y in 0..ny.saturating_sub(1) {
            for x in 0..nx {
                let a = GcellId::new(x as u32, y as u32);
                let b = GcellId::new(x as u32, y as u32 + 1);
                v_cap[y * nx + x] = map.dir_capacity(EdgeDir::Vertical, a, b);
            }
        }
        Self {
            nx,
            ny,
            h_load: vec![0.0; h_cap.len()],
            v_load: vec![0.0; v_cap.len()],
            h_hist: vec![0.0; h_cap.len()],
            v_hist: vec![0.0; v_cap.len()],
            h_cap,
            v_cap,
            congestion_weight: config.congestion_weight,
            history_increment: config.history_increment,
        }
    }

    #[inline]
    fn h_idx(&self, x: usize, y: usize) -> usize {
        y * (self.nx - 1) + x
    }

    #[inline]
    fn v_idx(&self, x: usize, y: usize) -> usize {
        y * self.nx + x
    }

    /// Cost of crossing one edge with `demand` extra tracks.
    #[inline]
    fn edge_cost(&self, horizontal: bool, idx: usize, demand: f64) -> f64 {
        let (cap, load, hist) = if horizontal {
            (self.h_cap[idx], self.h_load[idx], self.h_hist[idx])
        } else {
            (self.v_cap[idx], self.v_load[idx], self.v_hist[idx])
        };
        let after = load + demand;
        let penalty = if after <= cap { 0.8 * after / cap.max(1.0) } else { 2.0 + (after - cap) };
        1.0 + hist + self.congestion_weight * penalty
    }

    pub(crate) fn edge_between(&self, a: GcellId, b: GcellId) -> (bool, usize) {
        if a.y == b.y {
            let x = a.x.min(b.x) as usize;
            (true, self.h_idx(x, a.y as usize))
        } else {
            let y = a.y.min(b.y) as usize;
            (false, self.v_idx(a.x as usize, y))
        }
    }

    pub(crate) fn path_cost(&self, path: &[GcellId], demand: f64) -> f64 {
        path.windows(2)
            .map(|w| {
                let (h, i) = self.edge_between(w[0], w[1]);
                self.edge_cost(h, i, demand)
            })
            .sum()
    }

    pub(crate) fn commit(&mut self, path: &[GcellId], demand: f64, sign: f64) {
        for w in path.windows(2) {
            let (h, i) = self.edge_between(w[0], w[1]);
            if h {
                self.h_load[i] += sign * demand;
            } else {
                self.v_load[i] += sign * demand;
            }
        }
    }

    pub(crate) fn path_overflows(&self, path: &[GcellId]) -> bool {
        path.windows(2).any(|w| {
            let (h, i) = self.edge_between(w[0], w[1]);
            if h {
                self.h_load[i] > self.h_cap[i]
            } else {
                self.v_load[i] > self.v_cap[i]
            }
        })
    }

    pub(crate) fn path_would_overflow(&self, path: &[GcellId], demand: f64) -> bool {
        path.windows(2).any(|w| {
            let (h, i) = self.edge_between(w[0], w[1]);
            if h {
                self.h_load[i] + demand > self.h_cap[i]
            } else {
                self.v_load[i] + demand > self.v_cap[i]
            }
        })
    }

    /// Adds `penalty` history cost to every edge incident to a cell in
    /// `targets` (used by the incremental rerouter to steer traffic away).
    pub(crate) fn penalize_cells(
        &mut self,
        targets: &std::collections::HashSet<GcellId>,
        penalty: f64,
    ) {
        for &g in targets {
            let (x, y) = (g.x as usize, g.y as usize);
            if x + 1 < self.nx {
                let i = self.h_idx(x, y);
                self.h_hist[i] += penalty;
            }
            if x > 0 {
                let i = self.h_idx(x - 1, y);
                self.h_hist[i] += penalty;
            }
            if y + 1 < self.ny {
                let i = self.v_idx(x, y);
                self.v_hist[i] += penalty;
            }
            if y > 0 {
                let i = self.v_idx(x, y - 1);
                self.v_hist[i] += penalty;
            }
        }
    }

    pub(crate) fn accumulate_history(&mut self) {
        for i in 0..self.h_load.len() {
            if self.h_load[i] > self.h_cap[i] {
                self.h_hist[i] += self.history_increment;
            }
        }
        for i in 0..self.v_load.len() {
            if self.v_load[i] > self.v_cap[i] {
                self.v_hist[i] += self.history_increment;
            }
        }
    }

    /// Best of the straight/L/Z pattern candidates for `conn`.
    pub(crate) fn route_patterns<R: Rng>(&self, conn: &TwoPinConn, rng: &mut R) -> Vec<GcellId> {
        let (a, b) = (conn.a, conn.b);
        let mut candidates: Vec<Vec<GcellId>> = Vec::with_capacity(6);
        if a.x == b.x || a.y == b.y {
            candidates.push(expand(&[a, b]));
        } else {
            candidates.push(expand(&[a, GcellId::new(b.x, a.y), b]));
            candidates.push(expand(&[a, GcellId::new(a.x, b.y), b]));
            // Z patterns with random intermediate splits.
            let (xlo, xhi) = (a.x.min(b.x), a.x.max(b.x));
            let (ylo, yhi) = (a.y.min(b.y), a.y.max(b.y));
            if xhi - xlo > 1 {
                let mx = rng.gen_range(xlo + 1..xhi);
                candidates.push(expand(&[a, GcellId::new(mx, a.y), GcellId::new(mx, b.y), b]));
            }
            if yhi - ylo > 1 {
                let my = rng.gen_range(ylo + 1..yhi);
                candidates.push(expand(&[a, GcellId::new(a.x, my), GcellId::new(b.x, my), b]));
            }
        }
        candidates
            .into_iter()
            .min_by(|p, q| {
                self.path_cost(p, conn.demand).total_cmp(&self.path_cost(q, conn.demand))
            })
            .expect("at least one pattern candidate")
    }

    /// A* maze route on the planar grid; `None` on pathological inputs or
    /// when `budget` runs out mid-search (the caller keeps its pattern
    /// route — the degraded-but-complete fallback).
    pub(crate) fn route_maze(
        &self,
        conn: &TwoPinConn,
        budget: &StageBudget,
    ) -> Option<Vec<GcellId>> {
        let _maze_span = telemetry::span("route/maze");
        let (nx, ny) = (self.nx, self.ny);
        let idx = |g: GcellId| g.y as usize * nx + g.x as usize;
        let n = nx * ny;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<u32> = vec![u32::MAX; n];
        let start = idx(conn.a);
        let goal = idx(conn.b);
        dist[start] = 0.0;
        // Binary heap keyed on f = g + h (scaled to integer for Ord).
        let h = |i: usize| {
            let (x, y) = ((i % nx) as i64, (i / nx) as i64);
            ((x - conn.b.x as i64).abs() + (y - conn.b.y as i64).abs()) as f64
        };
        let key = |f: f64| (f * 1024.0) as u64;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((key(h(start)), start as u32)));
        let mut pops = 0usize;
        let mut pacer = budget.pacer(2048);
        while let Some(Reverse((_, u))) = heap.pop() {
            let u = u as usize;
            if u == goal {
                break;
            }
            pops += 1;
            if pops > 4 * n || pacer.tick(budget) != BudgetState::Within {
                return None;
            }
            let (x, y) = (u % nx, u / nx);
            let relax = |v: usize,
                         cost: f64,
                         heap: &mut BinaryHeap<Reverse<(u64, u32)>>,
                         dist: &mut [f64],
                         prev: &mut [u32]| {
                let nd = dist[u] + cost;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = u as u32;
                    heap.push(Reverse((key(nd + h(v)), v as u32)));
                }
            };
            if x + 1 < nx {
                let c = self.edge_cost(true, self.h_idx(x, y), conn.demand);
                relax(u + 1, c, &mut heap, &mut dist, &mut prev);
            }
            if x > 0 {
                let c = self.edge_cost(true, self.h_idx(x - 1, y), conn.demand);
                relax(u - 1, c, &mut heap, &mut dist, &mut prev);
            }
            if y + 1 < ny {
                let c = self.edge_cost(false, self.v_idx(x, y), conn.demand);
                relax(u + nx, c, &mut heap, &mut dist, &mut prev);
            }
            if y > 0 {
                let c = self.edge_cost(false, self.v_idx(x, y - 1), conn.demand);
                relax(u - nx, c, &mut heap, &mut dist, &mut prev);
            }
        }
        if dist[goal].is_infinite() {
            return None;
        }
        let mut path = vec![conn.b];
        let mut cur = goal;
        while cur != start {
            cur = prev[cur] as usize;
            path.push(GcellId::new((cur % nx) as u32, (cur / nx) as u32));
        }
        path.reverse();
        Some(path)
    }
}

/// Expands an axis-aligned corner sequence into a cell-by-cell path.
///
/// # Panics
///
/// Panics if consecutive corners are not axis-aligned.
fn expand(corners: &[GcellId]) -> Vec<GcellId> {
    let mut path = vec![corners[0]];
    for w in corners.windows(2) {
        let (a, b) = (w[0], w[1]);
        assert!(a.x == b.x || a.y == b.y, "corners {a}-{b} not axis-aligned");
        let mut cur = a;
        while cur != b {
            cur = GcellId::new(
                (cur.x as i64 + (b.x as i64 - cur.x as i64).signum()) as u32,
                (cur.y as i64 + (b.y as i64 - cur.y as i64).signum()) as u32,
            );
            path.push(cur);
        }
    }
    path
}

/// Splits `path` into maximal straight runs and assigns each to the
/// cheapest direction-compatible metal layer; commits the wire load.
fn assign_layers<R: Rng>(
    path: &[GcellId],
    demand: f64,
    congestion: &mut CongestionMap,
    rng: &mut R,
) -> Vec<Segment> {
    if path.len() < 2 {
        return Vec::new();
    }
    // Straight runs as (start_index, end_index) inclusive.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for i in 1..path.len() - 1 {
        let dir_in = path[i].x != path[i - 1].x;
        let dir_out = path[i + 1].x != path[i].x;
        if dir_in != dir_out {
            runs.push((start, i));
            start = i;
        }
    }
    runs.push((start, path.len() - 1));

    let mut segments = Vec::with_capacity(runs.len());
    for (s, e) in runs {
        let horizontal = path[s].y == path[e].y && path[s].x != path[e].x;
        let dir = if horizontal { EdgeDir::Horizontal } else { EdgeDir::Vertical };
        let layers: Vec<MetalLayer> =
            ALL_METALS.iter().copied().filter(|m| m.direction() == dir).collect();
        let len = (e - s) as f64;
        let mut best: Option<(f64, MetalLayer)> = None;
        for layer in layers {
            let mut acc = 0.0;
            for i in s..e {
                let cap = congestion.edge_capacity(layer, path[i], path[i + 1]).max(0.5);
                let load = congestion.edge_load(layer, path[i], path[i + 1]);
                acc += (load + demand) / cap;
            }
            // Short runs prefer low metals; jitter breaks ties.
            let score =
                acc / len + layer.index() as f64 * (0.6 / (len + 1.0)) + rng.gen_range(0.0..0.01);
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, layer));
            }
        }
        let layer = best.expect("direction always has compatible layers").1;
        for i in s..e {
            congestion.add_edge_load(layer, path[i], path[i + 1], demand);
        }
        segments.push(Segment { layer, from: path[s], to: path[e] });
    }
    segments
}

/// Inserts via demand at segment endpoints and bends.
fn insert_vias(
    path: &[GcellId],
    segments: &[Segment],
    demand: f64,
    congestion: &mut CongestionMap,
) {
    if segments.is_empty() {
        return;
    }
    // Pin access stacks at both ends: M1 up to the first/last segment layer.
    let first = segments.first().expect("non-empty");
    let last = segments.last().expect("non-empty");
    for v in ViaLayer::between(MetalLayer::M1, first.layer) {
        congestion.add_via_load(v, path[0], demand);
    }
    for v in ViaLayer::between(MetalLayer::M1, last.layer) {
        congestion.add_via_load(v, *path.last().expect("non-empty path"), demand);
    }
    // Layer changes at bends.
    for w in segments.windows(2) {
        let junction = w[0].to;
        for v in ViaLayer::between(w[0].layer, w[1].layer) {
            congestion.add_via_load(v, junction, demand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_netlist::{suite, synth, Design};
    use drcshap_place::place;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn routed(name: &str, scale: f64) -> (Design, RouteOutcome) {
        let spec = suite::spec(name).unwrap().scaled(scale);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let out = route_design(&d, &RouteConfig::default(), &mut rng);
        (d, out)
    }

    #[test]
    fn expand_walks_cell_by_cell() {
        let p = expand(&[GcellId::new(0, 0), GcellId::new(3, 0), GcellId::new(3, 2)]);
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], GcellId::new(0, 0));
        assert_eq!(p[3], GcellId::new(3, 0));
        assert_eq!(p[5], GcellId::new(3, 2));
        for w in p.windows(2) {
            assert_eq!(w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y), 1);
        }
    }

    #[test]
    #[should_panic(expected = "not axis-aligned")]
    fn expand_rejects_diagonals() {
        let _ = expand(&[GcellId::new(0, 0), GcellId::new(2, 2)]);
    }

    #[test]
    fn paths_connect_endpoints() {
        let (_, out) = routed("fft_1", 0.25);
        assert!(!out.conns.is_empty());
        for conn in &out.conns {
            let path = &conn.path;
            assert!(path.len() >= 2 || conn.segments.is_empty());
            for w in path.windows(2) {
                assert_eq!(
                    w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y),
                    1,
                    "path not cell-contiguous"
                );
            }
        }
    }

    #[test]
    fn segments_cover_paths_with_matching_directions() {
        let (_, out) = routed("fft_1", 0.25);
        for conn in out.conns.iter().filter(|c| c.path.len() >= 2) {
            let seg_len: u32 = conn.segments.iter().map(|s| s.len()).sum();
            assert_eq!(seg_len, conn.wirelength(), "segments must tile the path");
            for s in &conn.segments {
                let horizontal = s.from.y == s.to.y && s.from.x != s.to.x;
                let dir = if horizontal { EdgeDir::Horizontal } else { EdgeDir::Vertical };
                if !s.is_empty() {
                    assert_eq!(s.layer.direction(), dir, "segment on wrong-direction layer");
                }
            }
        }
    }

    #[test]
    fn congestion_load_matches_wirelength() {
        // Total committed edge load (at demand >= 1 per crossing) must be at
        // least the total wirelength.
        let (d, out) = routed("fft_1", 0.25);
        let grid = &d.grid;
        let mut committed = 0.0;
        for m in ALL_METALS {
            let (dx, dy) = match m.direction() {
                EdgeDir::Horizontal => (1, 0),
                EdgeDir::Vertical => (0, 1),
            };
            for a in grid.iter() {
                if let Some(b) = grid.neighbor(a, dx, dy) {
                    committed += out.congestion.edge_load(m, a, b);
                }
            }
        }
        assert!(
            committed >= out.total_wirelength as f64 * 0.999,
            "committed {committed} < wirelength {}",
            out.total_wirelength
        );
    }

    #[test]
    pub(crate) fn committed_edge_load_equals_demand_times_length() {
        // Conservation: total committed metal load must equal the sum over
        // connections of (wirelength x demand).
        let (d, out) = routed("fft_2", 0.25);
        let demand_of = |net: drcshap_netlist::NetId| {
            d.netlist.net(net).ndr.map(|id| d.netlist.ndr(id).track_demand()).unwrap_or(1.0)
        };
        let expected: f64 =
            out.conns.iter().map(|c| c.wirelength() as f64 * demand_of(c.net)).sum();
        let grid = &d.grid;
        let mut committed = 0.0;
        for m in ALL_METALS {
            let (dx, dy) = match m.direction() {
                EdgeDir::Horizontal => (1, 0),
                EdgeDir::Vertical => (0, 1),
            };
            for a in grid.iter() {
                if let Some(b) = grid.neighbor(a, dx, dy) {
                    committed += out.congestion.edge_load(m, a, b);
                }
            }
        }
        assert!(
            (committed - expected).abs() < 1e-6 * expected.max(1.0),
            "committed {committed} vs expected {expected}"
        );
    }

    #[test]
    fn via_loads_exist_at_pins() {
        let (d, out) = routed("fft_1", 0.25);
        let total_v1: f64 = d.grid.iter().map(|g| out.congestion.via_load(ViaLayer::V1, g)).sum();
        // Every pin adds at least one V1 cut.
        assert!(total_v1 >= d.netlist.num_pins() as f64 * 0.999);
    }

    #[test]
    fn capacity_derating_increases_overflow() {
        // The core pipeline derates capacity on stressed designs; a derated
        // route of the same design must overflow at least as much.
        let spec = suite::spec("des_perf_1").unwrap().scaled(0.2);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let mut rng_a = ChaCha8Rng::seed_from_u64(1);
        let full = route_design(&d, &RouteConfig::default(), &mut rng_a);
        let mut rng_b = ChaCha8Rng::seed_from_u64(1);
        let derated = route_design(&d, &RouteConfig::default().derated(0.5), &mut rng_b);
        assert!(
            derated.edge_overflow > full.edge_overflow,
            "derated {} <= full {}",
            derated.edge_overflow,
            full.edge_overflow
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, a) = routed("fft_2", 0.2);
        let (_, b) = routed("fft_2", 0.2);
        assert_eq!(a.total_wirelength, b.total_wirelength);
        assert_eq!(a.edge_overflow, b.edge_overflow);
    }

    #[test]
    fn net_order_changes_routing_but_stays_legal() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.25);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let mut results = Vec::new();
        for order in
            [crate::NetOrder::ShortFirst, crate::NetOrder::LongFirst, crate::NetOrder::Random]
        {
            let cfg = RouteConfig { net_order: order, ..RouteConfig::default() };
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let out = route_design(&d, &cfg, &mut rng);
            // Each ordering yields a complete, well-formed route set.
            assert!(out.total_wirelength > 0);
            for conn in &out.conns {
                let seg_len: u32 = conn.segments.iter().map(|s| s.len()).sum();
                assert_eq!(seg_len, conn.wirelength());
            }
            results.push((out.total_wirelength, out.edge_overflow, out.via_overflow));
        }
        // All patterns are shortest paths, so wirelength often ties — but
        // the congestion outcome should differ between orderings.
        assert!(results.windows(2).any(|w| w[0] != w[1]), "all orderings identical: {results:?}");
    }

    #[test]
    fn maze_route_finds_detour() {
        // Construct a planar state with a blocked straight path.
        let spec = suite::spec("fft_1").unwrap().scaled(0.2);
        let d = Design::new(spec);
        let map = CongestionMap::with_capacities(&d, &RouteConfig::default());
        let (nx, ny) = d.grid.dims();
        let mut planar = PlanarState::from_congestion(&map, nx, ny, &RouteConfig::default());
        // Saturate the direct horizontal corridor.
        let y = 5usize;
        for x in 0..(planar.nx - 1) {
            let i = planar.h_idx(x, y);
            planar.h_load[i] = planar.h_cap[i] + 50.0;
        }
        let conn = TwoPinConn {
            net: drcshap_netlist::NetId::from_index(0),
            a: GcellId::new(0, y as u32),
            b: GcellId::new(8, y as u32),
            demand: 1.0,
        };
        let maze = planar.route_maze(&conn, &StageBudget::unlimited()).expect("maze must succeed");
        assert_eq!(*maze.first().unwrap(), conn.a);
        assert_eq!(*maze.last().unwrap(), conn.b);
        // The detour leaves the saturated row.
        assert!(maze.iter().any(|g| g.y != y as u32), "maze did not detour");
    }

    #[test]
    fn expired_deadline_degrades_but_completes() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.25);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let budget = StageBudget::with_deadline(std::time::Duration::ZERO);
        let out = route_design_budgeted(&d, &RouteConfig::default(), &mut rng, &budget).unwrap();
        match out.status {
            RouteStatus::Degraded { unrouted, reason } => {
                assert_eq!(reason, DegradeReason::DeadlineExpired);
                assert!(unrouted > 0, "zero-deadline run must fall back on some connections");
            }
            RouteStatus::Complete => panic!("zero deadline must degrade"),
        }
        // Degraded is still a complete routing state: every connection has a
        // contiguous path tiled by its segments.
        assert!(!out.conns.is_empty());
        for conn in &out.conns {
            assert!(!conn.path.is_empty());
            for w in conn.path.windows(2) {
                assert_eq!(w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y), 1);
            }
            let seg_len: u32 = conn.segments.iter().map(|s| s.len()).sum();
            assert_eq!(seg_len, conn.wirelength());
        }
    }

    #[test]
    fn cancelled_budget_interrupts_routing() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.2);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let token = drcshap_geom::budget::CancelToken::new();
        token.cancel();
        let budget = StageBudget::unlimited().cancelled_by(token);
        let res = route_design_budgeted(&d, &RouteConfig::default(), &mut rng, &budget);
        assert_eq!(res.err(), Some(Interrupted));
    }

    #[test]
    fn fallback_pattern_connects_endpoints() {
        let conn = TwoPinConn {
            net: drcshap_netlist::NetId::from_index(0),
            a: GcellId::new(2, 7),
            b: GcellId::new(6, 1),
            demand: 1.0,
        };
        let p = fallback_pattern(&conn);
        assert_eq!(*p.first().unwrap(), conn.a);
        assert_eq!(*p.last().unwrap(), conn.b);
        for w in p.windows(2) {
            assert_eq!(w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y), 1);
        }
    }
}

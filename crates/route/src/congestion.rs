//! The congestion map: per-metal-layer edge capacity/load and per-via-layer
//! cell capacity/load — the source of all 288 congestion features.

use drcshap_geom::{GcellId, Rect};
use drcshap_netlist::Design;
use serde::{Deserialize, Serialize};

use crate::config::RouteConfig;
use crate::layers::{MetalLayer, ViaLayer, ALL_METALS, ALL_VIAS};

/// Traversal direction of a routing edge: a `Horizontal` edge is crossed by
/// east-west wires (it is the border between horizontally adjacent g-cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDir {
    /// Crossed by wires running east-west.
    Horizontal,
    /// Crossed by wires running north-south.
    Vertical,
}

/// Capacity and load bookkeeping for every routing resource of a design:
/// one value per (metal layer, g-cell border edge) and per (via layer,
/// g-cell).
///
/// The paper's congestion features are direct reads of this structure: the
/// *capacity* `C`, the *load* `L`, and the *resource margin* `C − L` (which
/// is negative on overflowed resources, e.g. `edM5_7H = -4` in Fig. 4(a)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionMap {
    nx: u32,
    ny: u32,
    /// Per metal layer: capacities on that layer's preferred-direction edges.
    edge_cap: Vec<Vec<f64>>,
    /// Per metal layer: loads, same indexing as `edge_cap`.
    edge_load: Vec<Vec<f64>>,
    /// Per via layer: capacities per g-cell (row-major).
    via_cap: Vec<Vec<f64>>,
    /// Per via layer: loads per g-cell.
    via_load: Vec<Vec<f64>>,
}

impl CongestionMap {
    /// An all-zero map for an `nx` × `ny` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "empty grid");
        let cells = (nx * ny) as usize;
        let edges = |dir: EdgeDir| match dir {
            EdgeDir::Horizontal => ((nx - 1) * ny) as usize,
            EdgeDir::Vertical => (nx * (ny - 1)) as usize,
        };
        Self {
            nx,
            ny,
            edge_cap: ALL_METALS.iter().map(|m| vec![0.0; edges(m.direction())]).collect(),
            edge_load: ALL_METALS.iter().map(|m| vec![0.0; edges(m.direction())]).collect(),
            via_cap: ALL_VIAS.iter().map(|_| vec![0.0; cells]).collect(),
            via_load: ALL_VIAS.iter().map(|_| vec![0.0; cells]).collect(),
        }
    }

    /// Builds the map for `design` with capacities from `config`, derated
    /// under blockages: macros block all layers, explicit routing blockages
    /// block M1–M3.
    pub fn with_capacities(design: &Design, config: &RouteConfig) -> Self {
        let grid = &design.grid;
        let (nx, ny) = grid.dims();
        let mut map = Self::zeros(nx, ny);
        let macros: Vec<Rect> = design.netlist.macros().map(|(_, m)| m.rect).collect();
        let strips: Vec<Rect> = design.routing_blockages.clone();

        let tracks = grid.gcell_size() as f64 / config.wire_pitch_dbu as f64;
        for m in ALL_METALS {
            let usable = config.layer_usable_fraction[m.index()];
            let base = tracks * usable * config.capacity_scale;
            let (dx, dy) = match m.direction() {
                EdgeDir::Horizontal => (1, 0),
                EdgeDir::Vertical => (0, 1),
            };
            for a in grid.iter() {
                let Some(b) = grid.neighbor(a, dx, dy) else { continue };
                let border = border_rect(grid, a, b);
                let blocked_m = blocked_fraction(&border, &macros);
                let blocked_s =
                    if m.index() <= 2 { blocked_fraction(&border, &strips) } else { 0.0 };
                let blocked = (blocked_m + blocked_s).min(1.0);
                let idx = map
                    .edge_index(m.direction(), a, b)
                    .expect("neighbor edges are always indexable");
                map.edge_cap[m.index()][idx] = (base * (1.0 - blocked)).floor().max(0.0);
            }
        }

        // Lower via layers have far more cut capacity (V1 serves pin access
        // for every cell); upper ones are scarcer.
        let via_layer_scale = [1.6, 0.8, 0.6, 0.45];
        for v in ALL_VIAS {
            let vias_per_cell =
                tracks * tracks / 8.0 * via_layer_scale[v.index()] * config.capacity_scale;
            for g in grid.iter() {
                let rect = grid.cell_rect(g);
                let blocked = blocked_fraction_area(&rect, &macros);
                map.via_cap[v.index()][grid.index_of(g)] =
                    (vias_per_cell * (1.0 - blocked)).floor().max(0.0);
            }
        }
        map
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (u32, u32) {
        (self.nx, self.ny)
    }

    /// Index of the edge between adjacent cells `a` and `b` for direction
    /// `dir`, `None` if the cells are not adjacent in that direction.
    pub fn edge_index(&self, dir: EdgeDir, a: GcellId, b: GcellId) -> Option<usize> {
        let (lo, hi) = if (a.x, a.y) <= (b.x, b.y) { (a, b) } else { (b, a) };
        match dir {
            EdgeDir::Horizontal => (lo.y == hi.y && lo.x + 1 == hi.x && hi.x < self.nx)
                .then(|| lo.y as usize * (self.nx - 1) as usize + lo.x as usize),
            EdgeDir::Vertical => (lo.x == hi.x && lo.y + 1 == hi.y && hi.y < self.ny)
                .then(|| lo.y as usize * self.nx as usize + lo.x as usize),
        }
    }

    /// Capacity of layer `m` across the border between `a` and `b`; zero when
    /// the border is not in `m`'s preferred direction (no wires of that layer
    /// cross it).
    pub fn edge_capacity(&self, m: MetalLayer, a: GcellId, b: GcellId) -> f64 {
        self.edge_index(m.direction(), a, b).map_or(0.0, |i| self.edge_cap[m.index()][i])
    }

    /// Load of layer `m` across the border between `a` and `b` (see
    /// [`CongestionMap::edge_capacity`] for direction handling).
    pub fn edge_load(&self, m: MetalLayer, a: GcellId, b: GcellId) -> f64 {
        self.edge_index(m.direction(), a, b).map_or(0.0, |i| self.edge_load[m.index()][i])
    }

    /// Resource margin `capacity − load` for layer `m` on the border between
    /// `a` and `b` — negative when overflowed.
    pub fn edge_margin(&self, m: MetalLayer, a: GcellId, b: GcellId) -> f64 {
        self.edge_capacity(m, a, b) - self.edge_load(m, a, b)
    }

    /// Adds `demand` wire tracks of layer `m` across the border `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if the border is not in `m`'s preferred direction.
    pub fn add_edge_load(&mut self, m: MetalLayer, a: GcellId, b: GcellId, demand: f64) {
        let i = self
            .edge_index(m.direction(), a, b)
            .unwrap_or_else(|| panic!("{a}-{b} is not a {:?} edge", m.direction()));
        self.edge_load[m.index()][i] += demand;
    }

    /// Via capacity of layer `v` inside g-cell `g`.
    pub fn via_capacity(&self, v: ViaLayer, g: GcellId) -> f64 {
        self.via_cap[v.index()][self.cell_index(g)]
    }

    /// Via load of layer `v` inside g-cell `g`.
    pub fn via_load(&self, v: ViaLayer, g: GcellId) -> f64 {
        self.via_load[v.index()][self.cell_index(g)]
    }

    /// Via margin `capacity − load` of layer `v` inside g-cell `g`.
    pub fn via_margin(&self, v: ViaLayer, g: GcellId) -> f64 {
        self.via_capacity(v, g) - self.via_load(v, g)
    }

    /// Adds `demand` vias of layer `v` inside g-cell `g`.
    pub fn add_via_load(&mut self, v: ViaLayer, g: GcellId, demand: f64) {
        let i = self.cell_index(g);
        self.via_load[v.index()][i] += demand;
    }

    /// Summed capacity over all layers of direction `dir` on the border
    /// `a`–`b` (the 2D capacity the router's planar phase works against).
    pub fn dir_capacity(&self, dir: EdgeDir, a: GcellId, b: GcellId) -> f64 {
        ALL_METALS
            .iter()
            .filter(|m| m.direction() == dir)
            .map(|&m| self.edge_capacity(m, a, b))
            .sum()
    }

    /// Summed load over all layers of direction `dir` on the border `a`–`b`.
    pub fn dir_load(&self, dir: EdgeDir, a: GcellId, b: GcellId) -> f64 {
        ALL_METALS.iter().filter(|m| m.direction() == dir).map(|&m| self.edge_load(m, a, b)).sum()
    }

    /// Total edge overflow `Σ max(0, load − capacity)` over all layers/edges.
    pub fn total_edge_overflow(&self) -> f64 {
        self.edge_cap
            .iter()
            .zip(&self.edge_load)
            .flat_map(|(caps, loads)| caps.iter().zip(loads))
            .map(|(&c, &l)| (l - c).max(0.0))
            .sum()
    }

    /// Number of overflowed edges across all layers.
    pub fn overflowed_edges(&self) -> usize {
        self.edge_cap
            .iter()
            .zip(&self.edge_load)
            .flat_map(|(caps, loads)| caps.iter().zip(loads))
            .filter(|&(&c, &l)| l > c)
            .count()
    }

    /// Total via overflow `Σ max(0, load − capacity)` over all via layers.
    pub fn total_via_overflow(&self) -> f64 {
        self.via_cap
            .iter()
            .zip(&self.via_load)
            .flat_map(|(caps, loads)| caps.iter().zip(loads))
            .map(|(&c, &l)| (l - c).max(0.0))
            .sum()
    }

    fn cell_index(&self, g: GcellId) -> usize {
        assert!(g.x < self.nx && g.y < self.ny, "{g} outside congestion map");
        g.y as usize * self.nx as usize + g.x as usize
    }
}

/// The shared border of two adjacent g-cells as a thin rectangle (1 DBU
/// thick), used for blockage overlap accounting.
fn border_rect(grid: &drcshap_geom::GcellGrid, a: GcellId, b: GcellId) -> Rect {
    let ra = grid.cell_rect(a);
    let rb = grid.cell_rect(b);
    if a.y == b.y {
        // Vertical border at x = shared boundary.
        let x = ra.hi.x.min(rb.hi.x).max(ra.lo.x.max(rb.lo.x));
        Rect::new(x - 1, ra.lo.y, x + 1, ra.hi.y)
    } else {
        let y = ra.hi.y.min(rb.hi.y).max(ra.lo.y.max(rb.lo.y));
        Rect::new(ra.lo.x, y - 1, ra.hi.x, y + 1)
    }
}

/// Fraction of the border length covered by any of `blockages`.
fn blocked_fraction(border: &Rect, blockages: &[Rect]) -> f64 {
    if blockages.is_empty() || border.area() == 0 {
        return 0.0;
    }
    let covered: i64 = blockages.iter().map(|b| b.overlap_area(border)).sum();
    (covered as f64 / border.area() as f64).min(1.0)
}

/// Fraction of a cell's area covered by any of `blockages`.
fn blocked_fraction_area(rect: &Rect, blockages: &[Rect]) -> f64 {
    blocked_fraction(rect, blockages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_geom::GcellGrid;
    use drcshap_netlist::{suite, Design, Macro};

    fn small_map() -> CongestionMap {
        CongestionMap::zeros(4, 3)
    }

    #[test]
    fn edge_counts_per_direction() {
        let m = small_map();
        // Horizontal edges: (nx-1)*ny = 9; vertical: nx*(ny-1) = 8.
        assert_eq!(m.edge_cap[MetalLayer::M1.index()].len(), 9);
        assert_eq!(m.edge_cap[MetalLayer::M2.index()].len(), 8);
    }

    #[test]
    fn edge_index_requires_adjacency_in_direction() {
        let m = small_map();
        let a = GcellId::new(1, 1);
        assert!(m.edge_index(EdgeDir::Horizontal, a, GcellId::new(2, 1)).is_some());
        // Symmetric in argument order.
        assert_eq!(
            m.edge_index(EdgeDir::Horizontal, a, GcellId::new(2, 1)),
            m.edge_index(EdgeDir::Horizontal, GcellId::new(2, 1), a)
        );
        assert!(m.edge_index(EdgeDir::Horizontal, a, GcellId::new(1, 2)).is_none());
        assert!(m.edge_index(EdgeDir::Vertical, a, GcellId::new(1, 2)).is_some());
        assert!(m.edge_index(EdgeDir::Vertical, a, GcellId::new(3, 1)).is_none());
    }

    #[test]
    fn loads_accumulate_and_margin_goes_negative() {
        let mut m = small_map();
        let (a, b) = (GcellId::new(0, 0), GcellId::new(1, 0));
        m.edge_cap[MetalLayer::M3.index()][0] = 2.0;
        m.add_edge_load(MetalLayer::M3, a, b, 1.0);
        m.add_edge_load(MetalLayer::M3, a, b, 2.5);
        assert_eq!(m.edge_load(MetalLayer::M3, a, b), 3.5);
        assert_eq!(m.edge_margin(MetalLayer::M3, a, b), -1.5);
        assert_eq!(m.total_edge_overflow(), 1.5);
        assert_eq!(m.overflowed_edges(), 1);
    }

    #[test]
    fn wrong_direction_edge_reads_zero() {
        let mut m = small_map();
        let (a, b) = (GcellId::new(0, 0), GcellId::new(0, 1));
        m.add_via_load(ViaLayer::V1, a, 3.0);
        // M1 is horizontal; a-b is a vertical-direction border.
        assert_eq!(m.edge_capacity(MetalLayer::M1, a, b), 0.0);
        assert_eq!(m.edge_load(MetalLayer::M1, a, b), 0.0);
    }

    #[test]
    fn via_accounting() {
        let mut m = small_map();
        let g = GcellId::new(2, 1);
        let idx = m.cell_index(g);
        m.via_cap[ViaLayer::V2.index()][idx] = 10.0;
        m.add_via_load(ViaLayer::V2, g, 12.0);
        assert_eq!(m.via_margin(ViaLayer::V2, g), -2.0);
        assert_eq!(m.total_via_overflow(), 2.0);
    }

    #[test]
    fn dir_capacity_sums_matching_layers() {
        let grid = GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 40.0, 30.0), 4, 3);
        let spec = suite::spec("fft_1").unwrap();
        let design = Design::new(spec);
        let _ = design;
        let mut m = CongestionMap::zeros(4, 3);
        let (a, b) = (GcellId::new(0, 0), GcellId::new(1, 0));
        for layer in [MetalLayer::M1, MetalLayer::M3, MetalLayer::M5] {
            let i = m.edge_index(EdgeDir::Horizontal, a, b).unwrap();
            m.edge_cap[layer.index()][i] = 5.0;
        }
        assert_eq!(m.dir_capacity(EdgeDir::Horizontal, a, b), 15.0);
        assert_eq!(m.dir_capacity(EdgeDir::Vertical, a, b), 0.0);
        let _ = grid;
    }

    #[test]
    fn capacities_derate_under_macros() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let mut design = Design::new(spec);
        // Drop a macro over the middle third of the die.
        let die = design.die;
        let w = die.width();
        let rect = Rect::new(w / 3, die.lo.y, 2 * w / 3, die.hi.y);
        design.netlist.add_macro(Macro { rect, pins: vec![] });
        let map = CongestionMap::with_capacities(&design, &RouteConfig::default());
        let (nx, ny) = design.grid.dims();
        let mid = GcellId::new(nx / 2, ny / 2);
        let east = GcellId::new(nx / 2 + 1, ny / 2);
        let corner = GcellId::new(0, 0);
        let corner_e = GcellId::new(1, 0);
        assert_eq!(map.edge_capacity(MetalLayer::M3, mid, east), 0.0);
        assert!(map.edge_capacity(MetalLayer::M3, corner, corner_e) > 0.0);
        assert_eq!(map.via_capacity(ViaLayer::V2, mid), 0.0);
        assert!(map.via_capacity(ViaLayer::V2, corner) > 0.0);
    }

    #[test]
    fn m1_has_less_capacity_than_m5() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let design = Design::new(spec);
        let map = CongestionMap::with_capacities(&design, &RouteConfig::default());
        let (a, b) = (GcellId::new(0, 0), GcellId::new(1, 0));
        assert!(map.edge_capacity(MetalLayer::M1, a, b) < map.edge_capacity(MetalLayer::M5, a, b));
    }
}

//! Incremental rip-up-and-reroute: given a routed design and a set of
//! target g-cells (predicted DRC hotspots), rip up the connections passing
//! through them, penalize the targets' routing resources, and reroute —
//! the router-side half of the predict → explain → fix loop the paper's
//! introduction motivates.
//!
//! Unlike the synthetic congestion edits of a pure what-if query, this
//! produces a *legal* new routing outcome: every ripped connection is
//! re-planned under negotiated congestion (patterns first, A* maze when the
//! pattern still overflows), and layer assignment + via insertion rerun.

use drcshap_geom::budget::{BudgetState, Interrupted, StageBudget};
use drcshap_geom::GcellId;
use drcshap_netlist::Design;
use rand::Rng;

use crate::config::RouteConfig;
use crate::congestion::CongestionMap;
use crate::decompose::TwoPinConn;
use crate::outcome::RouteOutcome;
use crate::router::{finalize_routing, PlanarState};

/// Extra history cost stamped on edges incident to target cells, steering
/// rerouted connections away from the hotspots.
const TARGET_PENALTY: f64 = 6.0;

/// Rips up every connection whose path crosses a `target` cell and reroutes
/// it away from the targets. Returns a fresh, fully finalized outcome
/// (congestion map, layer assignment, statistics) plus how many connections
/// were rerouted.
///
/// `prior` must come from routing the same `design` (paths are trusted).
/// Deterministic for a given `rng` state.
///
/// # Panics
///
/// Panics if a prior path references a net that no longer exists, or if a
/// target lies outside the design's grid.
pub fn reroute_around<R: Rng>(
    design: &Design,
    prior: &RouteOutcome,
    targets: &[GcellId],
    config: &RouteConfig,
    rng: &mut R,
) -> (RouteOutcome, usize) {
    match reroute_around_budgeted(design, prior, targets, config, rng, &StageBudget::unlimited()) {
        Ok(result) => result,
        Err(Interrupted) => unreachable!("an unlimited budget cannot be cancelled"),
    }
}

/// Budgeted variant of [`reroute_around`]: on deadline expiry, victims not
/// yet rerouted keep their *original* paths (recommitted unchanged) and the
/// outcome is marked degraded; on cancellation the call returns
/// [`Interrupted`] and the partial state is discarded.
///
/// # Errors
///
/// [`Interrupted`] when the budget's cancel token fires.
///
/// # Panics
///
/// As [`reroute_around`]: a prior path referencing a missing net, or a
/// target outside the grid.
pub fn reroute_around_budgeted<R: Rng>(
    design: &Design,
    prior: &RouteOutcome,
    targets: &[GcellId],
    config: &RouteConfig,
    rng: &mut R,
    budget: &StageBudget,
) -> Result<(RouteOutcome, usize), Interrupted> {
    for &t in targets {
        assert!(design.grid.contains_cell(t), "target {t} outside the grid");
    }
    let target_set: std::collections::HashSet<GcellId> = targets.iter().copied().collect();

    // Reconstruct planar connections (endpoints + demand) from prior paths.
    let demand_of = |net: drcshap_netlist::NetId| {
        design.netlist.net(net).ndr.map(|id| design.netlist.ndr(id).track_demand()).unwrap_or(1.0)
    };
    let conns: Vec<TwoPinConn> = prior
        .conns
        .iter()
        .map(|c| TwoPinConn {
            net: c.net,
            a: *c.path.first().expect("non-empty prior path"),
            b: *c.path.last().expect("non-empty prior path"),
            demand: demand_of(c.net),
        })
        .collect();
    let mut paths: Vec<Vec<GcellId>> = prior.conns.iter().map(|c| c.path.clone()).collect();

    // Rebuild the planar state with all prior paths committed.
    let capacities = CongestionMap::with_capacities(design, config);
    let (nx, ny) = design.grid.dims();
    let mut planar = PlanarState::from_congestion(&capacities, nx, ny, config);
    for (conn, path) in conns.iter().zip(&paths) {
        planar.commit(path, conn.demand, 1.0);
    }
    // Penalize routing over the targets.
    planar.penalize_cells(&target_set, TARGET_PENALTY);

    // Victims: connections whose path crosses a target (endpoints at a
    // target cannot leave it — their pins live there).
    let victims: Vec<usize> = (0..conns.len())
        .filter(|&i| {
            let path = &paths[i];
            path.len() >= 2 && path[1..path.len() - 1].iter().any(|g| target_set.contains(g))
        })
        .collect();

    for &i in &victims {
        planar.commit(&paths[i], conns[i].demand, -1.0);
    }
    let mut deadline_hit = false;
    let mut skipped = 0usize;
    let mut pacer = budget.pacer(16);
    for &i in &victims {
        if !deadline_hit {
            match pacer.tick(budget) {
                BudgetState::Cancelled => return Err(Interrupted),
                BudgetState::DeadlineExpired => deadline_hit = true,
                BudgetState::Within => {}
            }
        }
        if deadline_hit {
            // Out of time: recommit the original path unchanged.
            planar.commit(&paths[i], conns[i].demand, 1.0);
            skipped += 1;
            continue;
        }
        let mut path = planar.route_patterns(&conns[i], rng);
        // Pattern routes may still cross a target; fall back to the maze,
        // which sees the target penalty.
        if path[1..path.len().saturating_sub(1)].iter().any(|g| target_set.contains(g)) {
            if let Some(maze) = planar.route_maze(&conns[i], budget) {
                path = maze;
            }
        }
        planar.commit(&path, conns[i].demand, 1.0);
        paths[i] = path;
    }

    let rerouted = victims.len() - skipped;
    let deadline = deadline_hit.then_some(skipped);
    let outcome =
        finalize_routing(design, capacities, &conns, paths, prior.local_nets, rng, deadline);
    Ok((outcome, rerouted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_design;
    use drcshap_netlist::{suite, synth, Design};
    use drcshap_place::place;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn routed_design() -> (Design, RouteOutcome) {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let out = route_design(&d, &RouteConfig::default(), &mut rng);
        (d, out)
    }

    /// The most-trafficked interior cell of the prior routing.
    fn busiest_cell(d: &Design, out: &RouteOutcome) -> GcellId {
        let (nx, ny) = d.grid.dims();
        let mut traffic = vec![0usize; d.grid.num_cells()];
        for conn in &out.conns {
            for g in &conn.path[1..conn.path.len().saturating_sub(1)] {
                traffic[d.grid.index_of(*g)] += 1;
            }
        }
        let mut best = GcellId::new(nx / 2, ny / 2);
        let mut most = 0;
        for g in d.grid.iter() {
            // Keep away from the boundary so detours exist.
            if g.x == 0 || g.y == 0 || g.x + 1 == nx || g.y + 1 == ny {
                continue;
            }
            let t = traffic[d.grid.index_of(g)];
            if t > most {
                most = t;
                best = g;
            }
        }
        best
    }

    #[test]
    fn reroute_reduces_target_through_traffic() {
        let (d, prior) = routed_design();
        let target = busiest_cell(&d, &prior);
        let through = |out: &RouteOutcome| {
            out.conns
                .iter()
                .filter(|c| c.path.len() >= 2 && c.path[1..c.path.len() - 1].contains(&target))
                .count()
        };
        let before = through(&prior);
        assert!(before > 0, "picked a target with no through traffic");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (after_outcome, rerouted) =
            reroute_around(&d, &prior, &[target], &RouteConfig::default(), &mut rng);
        assert_eq!(rerouted, before);
        let after = through(&after_outcome);
        assert!(after < before, "through-traffic not reduced: {before} -> {after}");
    }

    #[test]
    fn rerouted_outcome_is_complete_and_legal() {
        let (d, prior) = routed_design();
        let target = busiest_cell(&d, &prior);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (out, _) = reroute_around(&d, &prior, &[target], &RouteConfig::default(), &mut rng);
        assert_eq!(out.conns.len(), prior.conns.len());
        for (new, old) in out.conns.iter().zip(&prior.conns) {
            // Same endpoints, contiguous path, segments tile the path.
            assert_eq!(new.path.first(), old.path.first());
            assert_eq!(new.path.last(), old.path.last());
            for w in new.path.windows(2) {
                assert_eq!(w[0].x.abs_diff(w[1].x) + w[0].y.abs_diff(w[1].y), 1);
            }
            let seg_len: u32 = new.segments.iter().map(|s| s.len()).sum();
            assert_eq!(seg_len, new.wirelength());
        }
    }

    #[test]
    fn empty_target_list_is_identity_up_to_layer_assignment() {
        let (d, prior) = routed_design();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (out, rerouted) = reroute_around(&d, &prior, &[], &RouteConfig::default(), &mut rng);
        assert_eq!(rerouted, 0);
        // Paths unchanged (layer assignment may differ by rng).
        for (new, old) in out.conns.iter().zip(&prior.conns) {
            assert_eq!(new.path, old.path);
        }
        assert_eq!(out.total_wirelength, prior.total_wirelength);
    }
}

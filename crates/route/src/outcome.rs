//! Routing results: per-connection paths with layer-assigned segments, the
//! final congestion map, and summary statistics.

use drcshap_geom::GcellId;
use drcshap_netlist::NetId;
use serde::{Deserialize, Serialize};

use crate::congestion::CongestionMap;
use crate::layers::MetalLayer;

/// A maximal straight run of a routed connection, assigned to one metal
/// layer. `from`/`to` are inclusive endpoint g-cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Metal layer carrying the segment.
    pub layer: MetalLayer,
    /// First g-cell of the run.
    pub from: GcellId,
    /// Last g-cell of the run.
    pub to: GcellId,
}

impl Segment {
    /// Length of the segment in crossed g-cell borders.
    pub fn len(&self) -> u32 {
        self.from.x.abs_diff(self.to.x) + self.from.y.abs_diff(self.to.y)
    }

    /// Whether the segment crosses no border (degenerate single-cell run).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A routed two-pin connection: the g-cell path and its layer assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedConn {
    /// The net this connection belongs to.
    pub net: NetId,
    /// The cell-by-cell path from source to sink (length ≥ 1).
    pub path: Vec<GcellId>,
    /// Layer-assigned straight segments covering the path.
    pub segments: Vec<Segment>,
}

impl RoutedConn {
    /// Wirelength in crossed g-cell borders.
    pub fn wirelength(&self) -> u32 {
        (self.path.len() - 1) as u32
    }
}

/// Why a routing run degraded instead of completing normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The stage's wall-clock budget expired: remaining connections fell
    /// back to uncosted L patterns and negotiation stopped early.
    DeadlineExpired,
    /// Layer assignment could not produce a normal route for some
    /// connections; they carry fallback pattern routes instead.
    Unassigned,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeReason::DeadlineExpired => "deadline expired",
            DegradeReason::Unassigned => "unassigned connections",
        })
    }
}

/// Completion status of a routing run.
///
/// A `Degraded` outcome is still a *complete* routing state — every
/// connection has a path, the congestion map is consistent, and the DRC
/// oracle and feature extractor accept it — but `unrouted` connections got a
/// cheap fallback (L/Z pattern without negotiation) and their overflow is
/// recorded rather than negotiated away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouteStatus {
    /// Every connection was routed under full negotiation.
    #[default]
    Complete,
    /// The run finished in degraded mode.
    Degraded {
        /// Connections that received a fallback pattern route.
        unrouted: usize,
        /// Why the run degraded.
        reason: DegradeReason,
    },
}

impl RouteStatus {
    /// Whether this outcome is degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RouteStatus::Degraded { .. })
    }
}

/// The outcome of global routing a design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Completion status ([`RouteStatus::Complete`] or degraded).
    #[serde(default)]
    pub status: RouteStatus,
    /// Final per-layer congestion map (capacities, loads).
    pub congestion: CongestionMap,
    /// All routed two-pin connections.
    pub conns: Vec<RoutedConn>,
    /// Total wirelength in g-cell border crossings.
    pub total_wirelength: u64,
    /// Number of nets whose pins all fall in one g-cell.
    pub local_nets: usize,
    /// Total edge overflow after routing, `Σ max(0, load − cap)`.
    pub edge_overflow: f64,
    /// Number of overflowed (layer, edge) resources.
    pub overflowed_edges: usize,
    /// Total via overflow after routing.
    pub via_overflow: f64,
}

impl std::fmt::Display for RouteOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routed {} connections ({} local nets): wirelength {}, \
             edge overflow {:.1} on {} edges, via overflow {:.1}",
            self.conns.len(),
            self.local_nets,
            self.total_wirelength,
            self.edge_overflow,
            self.overflowed_edges,
            self.via_overflow
        )?;
        if let RouteStatus::Degraded { unrouted, reason } = self.status {
            write!(f, " [DEGRADED: {unrouted} fallback routes, {reason}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::CongestionMap;

    #[test]
    fn outcome_display_summarizes() {
        let mut out = RouteOutcome {
            status: RouteStatus::Complete,
            congestion: CongestionMap::zeros(2, 2),
            conns: vec![],
            total_wirelength: 123,
            local_nets: 4,
            edge_overflow: 7.5,
            overflowed_edges: 3,
            via_overflow: 0.0,
        };
        let s = out.to_string();
        assert!(s.contains("wirelength 123"));
        assert!(s.contains("4 local nets"));
        assert!(s.contains("overflow 7.5 on 3 edges"));
        assert!(!s.contains("DEGRADED"));
        out.status = RouteStatus::Degraded { unrouted: 7, reason: DegradeReason::DeadlineExpired };
        let s = out.to_string();
        assert!(s.contains("DEGRADED: 7 fallback routes, deadline expired"), "{s}");
        assert!(out.status.is_degraded());
    }

    #[test]
    fn status_default_is_complete_and_round_trips() {
        assert_eq!(RouteStatus::default(), RouteStatus::Complete);
        let degraded = RouteStatus::Degraded { unrouted: 3, reason: DegradeReason::Unassigned };
        let json = serde_json::to_string(&degraded).unwrap();
        assert_eq!(serde_json::from_str::<RouteStatus>(&json).unwrap(), degraded);
    }

    #[test]
    fn segment_len_is_manhattan() {
        let s = Segment { layer: MetalLayer::M3, from: GcellId::new(2, 5), to: GcellId::new(7, 5) };
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        let dot =
            Segment { layer: MetalLayer::M1, from: GcellId::new(1, 1), to: GcellId::new(1, 1) };
        assert!(dot.is_empty());
    }

    #[test]
    fn conn_wirelength_counts_borders() {
        let conn = RoutedConn {
            net: NetId::from_index(0),
            path: vec![GcellId::new(0, 0), GcellId::new(1, 0), GcellId::new(1, 1)],
            segments: vec![],
        };
        assert_eq!(conn.wirelength(), 2);
    }
}

//! Router configuration.

use serde::{Deserialize, Serialize};

use crate::steiner::Decomposition;

/// Order in which two-pin connections take the initial routing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NetOrder {
    /// Shortest connections first (they have the least detour flexibility —
    /// the classical choice, and the default).
    #[default]
    ShortFirst,
    /// Longest connections first (they grab contiguous corridors early).
    LongFirst,
    /// Seeded-random order (an ordering-sensitivity probe).
    Random,
}

/// Global-router configuration: capacity model and negotiation schedule.
///
/// # Example
///
/// ```
/// use drcshap_route::RouteConfig;
///
/// let config = RouteConfig { negotiation_rounds: 4, ..RouteConfig::default() };
/// assert!(config.negotiation_rounds > RouteConfig::default().negotiation_rounds);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Routing-track pitch in DBU (0.2 µm at 65 nm).
    pub wire_pitch_dbu: i64,
    /// Usable track fraction per metal layer (M1 is mostly consumed by pins
    /// and cell-internal wiring).
    pub layer_usable_fraction: [f64; 5],
    /// Uniform capacity multiplier; the pipeline derates stressed designs.
    pub capacity_scale: f64,
    /// Rip-up-and-reroute rounds after the initial pattern pass.
    pub negotiation_rounds: usize,
    /// Congestion penalty weight in the routing cost.
    pub congestion_weight: f64,
    /// History-cost increment per overflowed edge per round.
    pub history_increment: f64,
    /// Maximum connections rerouted per negotiation round, as a fraction of
    /// all connections (bounds runtime on hopeless designs).
    pub max_reroute_fraction: f64,
    /// Multi-pin net decomposition strategy (MST or iterated 1-Steiner).
    pub decomposition: Decomposition,
    /// Initial routing order of two-pin connections.
    pub net_order: NetOrder,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            wire_pitch_dbu: 200,
            layer_usable_fraction: [0.15, 0.55, 0.75, 0.80, 0.85],
            capacity_scale: 1.0,
            negotiation_rounds: 3,
            congestion_weight: 2.0,
            history_increment: 1.5,
            max_reroute_fraction: 0.3,
            decomposition: Decomposition::Mst,
            net_order: NetOrder::ShortFirst,
        }
    }
}

impl RouteConfig {
    /// A config whose capacities are derated for a stressed design (the
    /// pipeline maps `DesignSpec::stress` through this).
    pub fn derated(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "derate factor must be in (0, 1]");
        self.capacity_scale *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RouteConfig::default();
        assert_eq!(c.layer_usable_fraction.len(), 5);
        assert!(c.layer_usable_fraction.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert!(c.wire_pitch_dbu > 0);
    }

    #[test]
    fn derated_multiplies_scale() {
        let c = RouteConfig::default().derated(0.8).derated(0.5);
        assert!((c.capacity_scale - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "derate factor")]
    fn derated_rejects_bad_factor() {
        let _ = RouteConfig::default().derated(1.5);
    }
}

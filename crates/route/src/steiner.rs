//! Rectilinear Steiner tree decomposition: the *iterated 1-Steiner*
//! heuristic (Kahng & Robins) over the Hanan grid of a net's pin g-cells.
//!
//! Global routers route Steiner *trees*, not spanning trees: inserting
//! Steiner points reduces wirelength by up to 33% per net versus the MST
//! bound (3-pin nets with an L-median already save the full detour). The
//! router can use either decomposition ([`crate::RouteConfig::decomposition`]);
//! the ablation bench quantifies the wirelength delta.

use drcshap_geom::GcellId;
use drcshap_netlist::{Design, NetId};
use serde::{Deserialize, Serialize};

use crate::decompose::{decompose_net, TwoPinConn};

/// Net decomposition strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Decomposition {
    /// Prim MST over pin g-cells (fast, up to 50% above RSMT optimum).
    #[default]
    Mst,
    /// Iterated 1-Steiner over the Hanan grid (slower, shorter trees).
    Steiner,
}

/// Largest net (distinct pin g-cells) Steinerized; bigger nets fall back to
/// the MST (the Hanan grid grows quadratically).
const MAX_STEINER_TERMINALS: usize = 12;
/// Maximum Steiner points inserted per net.
const MAX_STEINER_POINTS: usize = 4;

fn dist(a: GcellId, b: GcellId) -> u64 {
    (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u64
}

/// Total MST length over `points` and the chosen edges (Prim, O(k²)).
fn mst(points: &[GcellId]) -> (u64, Vec<(usize, usize)>) {
    let k = points.len();
    if k < 2 {
        return (0, Vec::new());
    }
    let mut in_tree = vec![false; k];
    let mut best = vec![(u64::MAX, 0usize); k];
    in_tree[0] = true;
    for i in 1..k {
        best[i] = (dist(points[0], points[i]), 0);
    }
    let mut total = 0u64;
    let mut edges = Vec::with_capacity(k - 1);
    for _ in 1..k {
        let (next, &(d, parent)) = best
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by_key(|(_, (d, _))| *d)
            .expect("vertex outside the tree remains");
        in_tree[next] = true;
        total += d;
        edges.push((parent, next));
        for i in 0..k {
            if !in_tree[i] {
                let nd = dist(points[next], points[i]);
                if nd < best[i].0 {
                    best[i] = (nd, next);
                }
            }
        }
    }
    (total, edges)
}

/// The Steiner tree topology over a terminal set: points (terminals then
/// Steiner points) and tree edges as index pairs.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// Terminals followed by inserted Steiner points.
    pub points: Vec<GcellId>,
    /// Tree edges as indices into `points`.
    pub edges: Vec<(usize, usize)>,
    /// Total rectilinear length in g-cell steps.
    pub length: u64,
}

/// Builds an iterated-1-Steiner tree over `terminals`.
///
/// Repeatedly inserts the Hanan-grid point that shrinks the MST the most,
/// until no candidate improves or `MAX_STEINER_POINTS` is reached. Degree-2
/// Steiner points left over after reconstruction are harmless (they lie on
/// the path anyway).
///
/// # Panics
///
/// Panics if `terminals` is empty.
pub fn steiner_tree(terminals: &[GcellId]) -> SteinerTree {
    assert!(!terminals.is_empty(), "empty terminal set");
    let mut points: Vec<GcellId> = terminals.to_vec();
    let (mut length, mut edges) = mst(&points);
    if terminals.len() < 3 || terminals.len() > MAX_STEINER_TERMINALS {
        return SteinerTree { points, edges, length };
    }

    // Hanan grid candidates.
    let mut xs: Vec<u32> = terminals.iter().map(|p| p.x).collect();
    let mut ys: Vec<u32> = terminals.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();

    for _ in 0..MAX_STEINER_POINTS {
        let mut best: Option<(u64, GcellId)> = None;
        for &x in &xs {
            for &y in &ys {
                let candidate = GcellId::new(x, y);
                if points.contains(&candidate) {
                    continue;
                }
                points.push(candidate);
                let (len, _) = mst(&points);
                points.pop();
                if len < length && best.is_none_or(|(b, _)| len < b) {
                    best = Some((len, candidate));
                }
            }
        }
        let Some((len, candidate)) = best else { break };
        points.push(candidate);
        length = len;
        let (_, new_edges) = mst(&points);
        edges = new_edges;
    }
    SteinerTree { points, edges, length }
}

/// Decomposes `net` into two-pin connections via the chosen strategy.
///
/// # Panics
///
/// Panics if any pin of the net is unplaced.
pub fn decompose_net_with(design: &Design, net: NetId, strategy: Decomposition) -> Vec<TwoPinConn> {
    match strategy {
        Decomposition::Mst => decompose_net(design, net),
        Decomposition::Steiner => {
            // Reuse the MST path for terminal collection and demand.
            let mst_conns = decompose_net(design, net);
            if mst_conns.is_empty() {
                return mst_conns;
            }
            let demand = mst_conns[0].demand;
            let mut terminals: Vec<GcellId> = Vec::new();
            for c in &mst_conns {
                if !terminals.contains(&c.a) {
                    terminals.push(c.a);
                }
                if !terminals.contains(&c.b) {
                    terminals.push(c.b);
                }
            }
            let tree = steiner_tree(&terminals);
            tree.edges
                .iter()
                .map(|&(u, v)| TwoPinConn { net, a: tree.points[u], b: tree.points[v], demand })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(x: u32, y: u32) -> GcellId {
        GcellId::new(x, y)
    }

    fn tree_length(conns: &[TwoPinConn]) -> u64 {
        conns.iter().map(|c| c.manhattan_len() as u64).sum()
    }

    #[test]
    fn three_pin_l_median_saves_wirelength() {
        // Classic: terminals at (0,0), (10,0), (5,8). MST = 10 + 13 = 23;
        // Steiner point at (5,0) gives 10 + 8 = 18.
        let terminals = [g(0, 0), g(10, 0), g(5, 8)];
        let (mst_len, _) = mst(&terminals);
        let tree = steiner_tree(&terminals);
        assert_eq!(mst_len, 23);
        assert_eq!(tree.length, 18);
        assert!(tree.points.contains(&g(5, 0)));
    }

    #[test]
    fn two_pin_nets_are_untouched() {
        let terminals = [g(1, 1), g(7, 3)];
        let tree = steiner_tree(&terminals);
        assert_eq!(tree.points.len(), 2);
        assert_eq!(tree.length, 8);
    }

    #[test]
    fn cross_topology_uses_center_steiner_point() {
        // Four terminals forming a plus: the center saves 2x the arm.
        let terminals = [g(5, 0), g(5, 10), g(0, 5), g(10, 5)];
        let (mst_len, _) = mst(&terminals);
        let tree = steiner_tree(&terminals);
        assert!(tree.length < mst_len, "steiner {} vs mst {mst_len}", tree.length);
        assert_eq!(tree.length, 20);
        assert!(tree.points.contains(&g(5, 5)));
    }

    #[test]
    fn tree_is_connected() {
        let terminals = [g(0, 0), g(9, 2), g(3, 8), g(7, 7), g(1, 5)];
        let tree = steiner_tree(&terminals);
        // Union-find over edges must leave one component spanning terminals.
        let mut parent: Vec<usize> = (0..tree.points.len()).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for &(u, v) in &tree.edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            parent[ru] = rv;
        }
        let root = find(&mut parent, 0);
        for i in 0..5 {
            assert_eq!(find(&mut parent, i), root, "terminal {i} disconnected");
        }
    }

    proptest! {
        /// Steiner never exceeds MST length, and both span the terminals.
        #[test]
        fn prop_steiner_no_worse_than_mst(
            coords in prop::collection::vec((0u32..30, 0u32..30), 3..9)
        ) {
            let mut terminals: Vec<GcellId> = coords.iter().map(|&(x, y)| g(x, y)).collect();
            terminals.sort_by_key(|p| (p.x, p.y));
            terminals.dedup();
            if terminals.len() < 2 {
                return Ok(());
            }
            let (mst_len, _) = mst(&terminals);
            let tree = steiner_tree(&terminals);
            prop_assert!(tree.length <= mst_len, "steiner {} > mst {}", tree.length, mst_len);
            prop_assert_eq!(tree.edges.len(), tree.points.len() - 1);
        }

        /// The reported length equals the sum of edge lengths.
        #[test]
        fn prop_length_is_edge_sum(
            coords in prop::collection::vec((0u32..20, 0u32..20), 3..7)
        ) {
            let mut terminals: Vec<GcellId> = coords.iter().map(|&(x, y)| g(x, y)).collect();
            terminals.sort_by_key(|p| (p.x, p.y));
            terminals.dedup();
            if terminals.len() < 2 {
                return Ok(());
            }
            let tree = steiner_tree(&terminals);
            let sum: u64 = tree
                .edges
                .iter()
                .map(|&(u, v)| dist(tree.points[u], tree.points[v]))
                .sum();
            prop_assert_eq!(sum, tree.length);
        }
    }

    mod integration {
        use super::*;
        use drcshap_netlist::{suite, synth, Design};
        use drcshap_place::place;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        #[test]
        fn steiner_decomposition_shortens_multi_pin_nets() {
            let spec = suite::spec("fft_1").unwrap().scaled(0.3);
            let mut d = Design::new(spec);
            let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
            synth::generate_cells(&mut d, &mut rng);
            place(&mut d, &mut rng);
            synth::generate_nets(&mut d, &mut rng);

            let mut mst_total = 0u64;
            let mut steiner_total = 0u64;
            let mut improved = 0usize;
            for (nid, net) in d.netlist.nets() {
                if net.pins.len() < 3 {
                    continue;
                }
                let a = decompose_net_with(&d, nid, Decomposition::Mst);
                let b = decompose_net_with(&d, nid, Decomposition::Steiner);
                mst_total += tree_length(&a);
                steiner_total += tree_length(&b);
                if tree_length(&b) < tree_length(&a) {
                    improved += 1;
                }
            }
            assert!(steiner_total <= mst_total);
            assert!(improved > 0, "no net improved by Steinerization");
        }
    }
}

//! Multi-pin net decomposition into two-pin connections at g-cell
//! granularity, via Prim's minimum spanning tree under Manhattan distance —
//! the standard first step of pattern-based global routing.

use drcshap_geom::GcellId;
use drcshap_netlist::{Design, NetId};
use serde::{Deserialize, Serialize};

/// A two-pin connection produced by net decomposition: route from g-cell `a`
/// to g-cell `b` with `demand` routing tracks per crossed edge (NDR nets
/// demand more than 1.0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPinConn {
    /// The net this connection belongs to.
    pub net: NetId,
    /// Source g-cell.
    pub a: GcellId,
    /// Sink g-cell.
    pub b: GcellId,
    /// Track demand per crossed edge (1.0 default, more for NDR nets).
    pub demand: f64,
}

impl TwoPinConn {
    /// Manhattan length of the connection in g-cell steps.
    pub fn manhattan_len(&self) -> u32 {
        self.a.x.abs_diff(self.b.x) + self.a.y.abs_diff(self.b.y)
    }
}

/// Decomposes `net` into two-pin connections between the *distinct* g-cells
/// its pins occupy. Returns an empty vector for local nets (all pins inside
/// one g-cell) — those consume via resources but no edges.
///
/// # Panics
///
/// Panics if any pin of the net is unplaced.
pub fn decompose_net(design: &Design, net: NetId) -> Vec<TwoPinConn> {
    let n = design.netlist.net(net);
    let demand = n.ndr.map_or(1.0, |ndr| design.netlist.ndr(ndr).track_demand());

    // Distinct g-cells touched by the net's pins.
    let mut gcells: Vec<GcellId> = Vec::with_capacity(n.pins.len());
    for &pin in &n.pins {
        let pos = design.pin_position(pin).expect("net decomposition requires placed pins");
        // Clamp boundary pins (e.g. macro pins on the die edge) onto the die.
        let clamped = drcshap_geom::Point::new(
            pos.x.clamp(design.die.lo.x, design.die.hi.x - 1),
            pos.y.clamp(design.die.lo.y, design.die.hi.y - 1),
        );
        let g = design.grid.cell_containing(clamped).expect("clamped pin is on-die");
        if !gcells.contains(&g) {
            gcells.push(g);
        }
    }
    if gcells.len() < 2 {
        return Vec::new();
    }

    // Prim's MST over the distinct g-cells.
    let dist = |a: GcellId, b: GcellId| a.x.abs_diff(b.x) + a.y.abs_diff(b.y);
    let n_cells = gcells.len();
    let mut in_tree = vec![false; n_cells];
    let mut best = vec![(u32::MAX, 0usize); n_cells]; // (distance, parent)
    in_tree[0] = true;
    for (i, &g) in gcells.iter().enumerate().skip(1) {
        best[i] = (dist(gcells[0], g), 0);
    }
    let mut conns = Vec::with_capacity(n_cells - 1);
    for _ in 1..n_cells {
        let (next, &(_, parent)) = best
            .iter()
            .enumerate()
            .filter(|(i, _)| !in_tree[*i])
            .min_by_key(|(_, (d, _))| *d)
            .expect("at least one vertex outside the tree");
        in_tree[next] = true;
        conns.push(TwoPinConn { net, a: gcells[parent], b: gcells[next], demand });
        for (i, &g) in gcells.iter().enumerate() {
            if !in_tree[i] {
                let d = dist(gcells[next], g);
                if d < best[i].0 {
                    best[i] = (d, next);
                }
            }
        }
    }
    conns
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_geom::Point;
    use drcshap_netlist::{suite, Cell, Design, Net, NetKind, Pin, PinOwner};

    /// A design with one cell per given position and a single net over them.
    fn design_with_net(positions: &[(f64, f64)]) -> (Design, NetId) {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let mut d = Design::new(spec);
        let mut pins = Vec::new();
        for &(x, y) in positions {
            let c = d.netlist.add_cell(Cell {
                width: 400,
                height: 1800,
                multi_height: false,
                pins: vec![],
            });
            d.placement.resize(d.netlist.num_cells());
            d.placement.place(c, Point::from_microns(x, y));
            pins.push(d.netlist.add_pin(Pin {
                owner: PinOwner::Cell { cell: c, offset: Point::new(100, 900) },
                net: NetId::from_index(0),
            }));
        }
        let net = d.netlist.add_net(Net { pins, kind: NetKind::Signal, ndr: None });
        (d, net)
    }

    #[test]
    fn local_net_yields_no_connections() {
        let (d, net) = design_with_net(&[(10.0, 10.0), (10.5, 10.2)]);
        assert!(decompose_net(&d, net).is_empty());
    }

    #[test]
    fn two_pin_net_yields_one_connection() {
        let (d, net) = design_with_net(&[(5.0, 5.0), (60.0, 40.0)]);
        let conns = decompose_net(&d, net);
        assert_eq!(conns.len(), 1);
        assert!(conns[0].manhattan_len() > 0);
        assert_eq!(conns[0].demand, 1.0);
    }

    #[test]
    fn mst_spans_all_distinct_gcells() {
        let (d, net) =
            design_with_net(&[(5.0, 5.0), (60.0, 5.0), (5.0, 60.0), (60.0, 60.0), (30.0, 30.0)]);
        let conns = decompose_net(&d, net);
        // 5 distinct g-cells -> 4 tree edges.
        assert_eq!(conns.len(), 4);
        // Union-find connectivity check.
        let mut nodes: Vec<GcellId> = Vec::new();
        let id = |g: GcellId, nodes: &mut Vec<GcellId>| {
            nodes.iter().position(|&x| x == g).unwrap_or_else(|| {
                nodes.push(g);
                nodes.len() - 1
            })
        };
        let mut parent: Vec<usize> = (0..10).collect();
        fn find(p: &mut Vec<usize>, i: usize) -> usize {
            if p[i] != i {
                let r = find(p, p[i]);
                p[i] = r;
            }
            p[i]
        }
        for c in &conns {
            let (ia, ib) = (id(c.a, &mut nodes), id(c.b, &mut nodes));
            let (ra, rb) = (find(&mut parent, ia), find(&mut parent, ib));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for i in 0..nodes.len() {
            assert_eq!(find(&mut parent, i), root, "MST not connected");
        }
    }

    #[test]
    fn mst_prefers_short_edges() {
        // Three collinear clusters: MST must not connect the two far ends.
        let (d, net) = design_with_net(&[(5.0, 5.0), (35.0, 5.0), (70.0, 5.0)]);
        let conns = decompose_net(&d, net);
        assert_eq!(conns.len(), 2);
        let max_len = conns.iter().map(|c| c.manhattan_len()).max().unwrap();
        let direct = {
            let a = d.grid.cell_containing(Point::from_microns(5.0, 5.0)).unwrap();
            let b = d.grid.cell_containing(Point::from_microns(70.0, 5.0)).unwrap();
            a.x.abs_diff(b.x)
        };
        assert!(max_len < direct, "MST kept the longest chord");
    }

    #[test]
    fn ndr_net_demands_more_tracks() {
        let (mut d, _) = design_with_net(&[(5.0, 5.0), (60.0, 40.0)]);
        let ndr = d.netlist.add_ndr(drcshap_netlist::Ndr { width_mult: 2.0, spacing_mult: 2.0 });
        // Build a second net with NDR over two fresh cells.
        let c1 = d.netlist.add_cell(Cell {
            width: 400,
            height: 1800,
            multi_height: false,
            pins: vec![],
        });
        let c2 = d.netlist.add_cell(Cell {
            width: 400,
            height: 1800,
            multi_height: false,
            pins: vec![],
        });
        d.placement.resize(d.netlist.num_cells());
        d.placement.place(c1, Point::from_microns(10.0, 10.0));
        d.placement.place(c2, Point::from_microns(50.0, 50.0));
        let p1 = d.netlist.add_pin(Pin {
            owner: PinOwner::Cell { cell: c1, offset: Point::new(0, 0) },
            net: NetId::from_index(0),
        });
        let p2 = d.netlist.add_pin(Pin {
            owner: PinOwner::Cell { cell: c2, offset: Point::new(0, 0) },
            net: NetId::from_index(0),
        });
        let net =
            d.netlist.add_net(Net { pins: vec![p1, p2], kind: NetKind::Signal, ndr: Some(ndr) });
        let conns = decompose_net(&d, net);
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].demand, 2.0);
    }
}

//! The metal/via layer stack: M1–M5 with alternating preferred directions
//! and the via layers V1–V4 between them (65 nm, five routing layers, as in
//! the paper's benchmark setup).

use serde::{Deserialize, Serialize};

use crate::congestion::EdgeDir;

/// A routing metal layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetalLayer {
    /// Metal 1 — horizontal, mostly consumed by pins and cell-internal wiring.
    M1,
    /// Metal 2 — vertical.
    M2,
    /// Metal 3 — horizontal.
    M3,
    /// Metal 4 — vertical.
    M4,
    /// Metal 5 — horizontal.
    M5,
}

/// All metal layers, bottom-up.
pub const ALL_METALS: [MetalLayer; 5] =
    [MetalLayer::M1, MetalLayer::M2, MetalLayer::M3, MetalLayer::M4, MetalLayer::M5];

impl MetalLayer {
    /// Zero-based index in the stack (M1 = 0).
    pub const fn index(self) -> usize {
        match self {
            MetalLayer::M1 => 0,
            MetalLayer::M2 => 1,
            MetalLayer::M3 => 2,
            MetalLayer::M4 => 3,
            MetalLayer::M5 => 4,
        }
    }

    /// The layer at stack `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 5`.
    pub fn from_index(index: usize) -> Self {
        ALL_METALS[index]
    }

    /// Preferred wire direction: wires on a `Horizontal` layer run east-west
    /// and therefore cross *vertical* g-cell borders, and vice versa.
    pub const fn direction(self) -> EdgeDir {
        match self {
            MetalLayer::M1 | MetalLayer::M3 | MetalLayer::M5 => EdgeDir::Horizontal,
            MetalLayer::M2 | MetalLayer::M4 => EdgeDir::Vertical,
        }
    }

    /// The layer name as used in feature names (`"M4"` in `edM4_6V`).
    pub const fn name(self) -> &'static str {
        match self {
            MetalLayer::M1 => "M1",
            MetalLayer::M2 => "M2",
            MetalLayer::M3 => "M3",
            MetalLayer::M4 => "M4",
            MetalLayer::M5 => "M5",
        }
    }
}

impl std::fmt::Display for MetalLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A via (cut) layer connecting two adjacent metal layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViaLayer {
    /// V1 connects M1–M2.
    V1,
    /// V2 connects M2–M3.
    V2,
    /// V3 connects M3–M4.
    V3,
    /// V4 connects M4–M5.
    V4,
}

/// All via layers, bottom-up.
pub const ALL_VIAS: [ViaLayer; 4] = [ViaLayer::V1, ViaLayer::V2, ViaLayer::V3, ViaLayer::V4];

impl ViaLayer {
    /// Zero-based index in the stack (V1 = 0).
    pub const fn index(self) -> usize {
        match self {
            ViaLayer::V1 => 0,
            ViaLayer::V2 => 1,
            ViaLayer::V3 => 2,
            ViaLayer::V4 => 3,
        }
    }

    /// The via layer at stack `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> Self {
        ALL_VIAS[index]
    }

    /// The metal layer directly below this via layer.
    pub const fn lower_metal(self) -> MetalLayer {
        match self {
            ViaLayer::V1 => MetalLayer::M1,
            ViaLayer::V2 => MetalLayer::M2,
            ViaLayer::V3 => MetalLayer::M3,
            ViaLayer::V4 => MetalLayer::M4,
        }
    }

    /// The metal layer directly above this via layer.
    pub const fn upper_metal(self) -> MetalLayer {
        match self {
            ViaLayer::V1 => MetalLayer::M2,
            ViaLayer::V2 => MetalLayer::M3,
            ViaLayer::V3 => MetalLayer::M4,
            ViaLayer::V4 => MetalLayer::M5,
        }
    }

    /// The via layer name as used in feature names (`"V2"` in `vlV2_E`).
    pub const fn name(self) -> &'static str {
        match self {
            ViaLayer::V1 => "V1",
            ViaLayer::V2 => "V2",
            ViaLayer::V3 => "V3",
            ViaLayer::V4 => "V4",
        }
    }

    /// The via layers crossed when moving between metal layers `a` and `b`
    /// (empty when `a == b`).
    pub fn between(a: MetalLayer, b: MetalLayer) -> Vec<ViaLayer> {
        let (lo, hi) = if a.index() <= b.index() { (a, b) } else { (b, a) };
        (lo.index()..hi.index()).map(ViaLayer::from_index).collect()
    }
}

impl std::fmt::Display for ViaLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_alternate() {
        assert_eq!(MetalLayer::M1.direction(), EdgeDir::Horizontal);
        assert_eq!(MetalLayer::M2.direction(), EdgeDir::Vertical);
        assert_eq!(MetalLayer::M5.direction(), EdgeDir::Horizontal);
    }

    #[test]
    fn index_round_trip() {
        for (i, m) in ALL_METALS.iter().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(MetalLayer::from_index(i), *m);
        }
        for (i, v) in ALL_VIAS.iter().enumerate() {
            assert_eq!(v.index(), i);
            assert_eq!(ViaLayer::from_index(i), *v);
        }
    }

    #[test]
    fn via_sandwich_is_consistent() {
        for v in ALL_VIAS {
            assert_eq!(v.lower_metal().index() + 1, v.upper_metal().index());
        }
    }

    #[test]
    fn vias_between_layers() {
        assert!(ViaLayer::between(MetalLayer::M3, MetalLayer::M3).is_empty());
        assert_eq!(
            ViaLayer::between(MetalLayer::M1, MetalLayer::M3),
            vec![ViaLayer::V1, ViaLayer::V2]
        );
        // Order-insensitive.
        assert_eq!(
            ViaLayer::between(MetalLayer::M5, MetalLayer::M2),
            vec![ViaLayer::V2, ViaLayer::V3, ViaLayer::V4]
        );
    }

    #[test]
    fn names_match_paper_convention() {
        assert_eq!(MetalLayer::M4.to_string(), "M4");
        assert_eq!(ViaLayer::V2.to_string(), "V2");
    }
}

#![warn(missing_docs)]
//! Global-routing substrate for the `drcshap` workspace.
//!
//! The reproduced paper extracts its congestion features from the signal
//! global-routing stage of Olympus-SoC on a 65 nm, five-metal-layer stack.
//! This crate provides an equivalent substrate:
//!
//! - a layer model with five metal layers (M1–M5, alternating preferred
//!   directions) and four via layers (V1–V4) — [`MetalLayer`], [`ViaLayer`];
//! - a per-layer congestion map over g-cell border edges and via cells with
//!   *capacity*, *load* and *margin* (capacity − load), exactly the
//!   quantities the paper's 288 congestion features are built from
//!   ([`CongestionMap`]);
//! - a global router ([`route_design`]) that decomposes nets into two-pin
//!   connections (Prim MST), routes them with L/Z pattern candidates under a
//!   negotiated-congestion cost, falls back to A* maze routing for stubborn
//!   connections, and finally assigns segments to metal layers and inserts
//!   via demand.
//!
//! # Example
//!
//! ```
//! use drcshap_netlist::{suite, synth, Design};
//! use drcshap_place::place;
//! use drcshap_route::{route_design, RouteConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let spec = suite::spec("fft_1").unwrap().scaled(0.25);
//! let mut design = Design::new(spec);
//! let mut rng = ChaCha8Rng::seed_from_u64(design.spec.seed());
//! synth::generate_cells(&mut design, &mut rng);
//! place(&mut design, &mut rng);
//! synth::generate_nets(&mut design, &mut rng);
//! let outcome = route_design(&design, &RouteConfig::default(), &mut rng);
//! assert!(outcome.total_wirelength > 0);
//! ```

mod config;
mod congestion;
mod decompose;
pub mod incremental;
mod layers;
mod outcome;
pub mod render;
mod router;
pub mod steiner;

pub use config::{NetOrder, RouteConfig};
pub use congestion::{CongestionMap, EdgeDir};
pub use decompose::{decompose_net, TwoPinConn};
pub use incremental::{reroute_around, reroute_around_budgeted};
pub use layers::{MetalLayer, ViaLayer, ALL_METALS, ALL_VIAS};
pub use outcome::{DegradeReason, RouteOutcome, RouteStatus, RoutedConn, Segment};
pub use render::{cell_utilization, heat_glyph, render_heatmap, HeatSource};
pub use router::{route_design, route_design_budgeted};
pub use steiner::{decompose_net_with, steiner_tree, Decomposition, SteinerTree};

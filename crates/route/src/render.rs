//! ASCII rendering of congestion maps — the terminal analogue of the
//! paper's Fig. 3 layout views, where edge colors encode GR congestion per
//! layer and red marks DRC errors.
//!
//! Each g-cell is drawn as one character encoding its *worst* resource
//! utilization (`load / capacity`) among the selected resources:
//!
//! ```text
//! . < 50%   - < 70%   + < 90%   * < 100%   # overflow   @ blocked
//! ```

use drcshap_geom::GcellId;

use crate::congestion::CongestionMap;
use crate::layers::{MetalLayer, ViaLayer, ALL_METALS};

/// What a heatmap cell aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatSource {
    /// Max utilization over the cell's four borders on one metal layer.
    Metal(MetalLayer),
    /// Via utilization of one via layer inside the cell.
    Via(ViaLayer),
    /// Max utilization over all metal layers and the cell's borders.
    AllMetals,
}

impl std::fmt::Display for HeatSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeatSource::Metal(m) => write!(f, "{m}"),
            HeatSource::Via(v) => write!(f, "{v}"),
            HeatSource::AllMetals => write!(f, "all metals"),
        }
    }
}

/// The worst utilization of `source` at cell `g` (`f64::INFINITY` when a
/// resource has zero capacity but non-zero load; `-1.0` when fully blocked).
pub fn cell_utilization(map: &CongestionMap, g: GcellId, source: HeatSource) -> f64 {
    let (nx, ny) = map.dims();
    let neighbors = [(1i32, 0i32), (-1, 0), (0, 1), (0, -1)];
    let edge_util = |m: MetalLayer| -> f64 {
        let mut worst = f64::MIN;
        let mut any = false;
        for (dx, dy) in neighbors {
            let x = g.x as i64 + dx as i64;
            let y = g.y as i64 + dy as i64;
            if x < 0 || y < 0 || x >= nx as i64 || y >= ny as i64 {
                continue;
            }
            let nb = GcellId::new(x as u32, y as u32);
            let cap = map.edge_capacity(m, g, nb);
            let load = map.edge_load(m, g, nb);
            if cap > 0.0 {
                worst = worst.max(load / cap);
                any = true;
            } else if load > 0.0 {
                return f64::INFINITY;
            }
        }
        if any {
            worst
        } else {
            -1.0
        }
    };
    match source {
        HeatSource::Metal(m) => edge_util(m),
        HeatSource::AllMetals => {
            let utils: Vec<f64> = ALL_METALS.iter().map(|&m| edge_util(m)).collect();
            if utils.iter().all(|&u| u < 0.0) {
                -1.0
            } else {
                utils.into_iter().fold(f64::MIN, f64::max)
            }
        }
        HeatSource::Via(v) => {
            let cap = map.via_capacity(v, g);
            let load = map.via_load(v, g);
            if cap > 0.0 {
                load / cap
            } else if load > 0.0 {
                f64::INFINITY
            } else {
                -1.0
            }
        }
    }
}

/// The heatmap glyph for a utilization value.
pub fn heat_glyph(utilization: f64) -> char {
    if utilization < 0.0 {
        '@' // blocked
    } else if utilization < 0.5 {
        '.'
    } else if utilization < 0.7 {
        '-'
    } else if utilization < 0.9 {
        '+'
    } else if utilization <= 1.0 {
        '*'
    } else {
        '#' // overflow
    }
}

/// Renders the heatmap of `source`, north row first, with an optional
/// overlay: cells where `overlay` returns true draw `X` (DRC errors in the
/// Fig. 3 reproduction).
pub fn render_heatmap(
    map: &CongestionMap,
    source: HeatSource,
    overlay: impl Fn(GcellId) -> bool,
) -> String {
    let (nx, ny) = map.dims();
    let mut out = format!(
        "congestion [{source}]  (. <50% - <70% + <90% * <=100% # overflow @ blocked, X = overlay)\n"
    );
    for y in (0..ny).rev() {
        for x in 0..nx {
            let g = GcellId::new(x, y);
            let c = if overlay(g) { 'X' } else { heat_glyph(cell_utilization(map, g, source)) };
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RouteConfig;
    use drcshap_netlist::{suite, Design};

    fn empty_map() -> CongestionMap {
        let spec = suite::spec("fft_1").unwrap().scaled(0.2);
        let design = Design::new(spec);
        CongestionMap::with_capacities(&design, &RouteConfig::default())
    }

    #[test]
    fn glyph_thresholds() {
        assert_eq!(heat_glyph(-1.0), '@');
        assert_eq!(heat_glyph(0.0), '.');
        assert_eq!(heat_glyph(0.6), '-');
        assert_eq!(heat_glyph(0.8), '+');
        assert_eq!(heat_glyph(1.0), '*');
        assert_eq!(heat_glyph(1.5), '#');
        assert_eq!(heat_glyph(f64::INFINITY), '#');
    }

    #[test]
    fn unloaded_map_renders_cool() {
        let map = empty_map();
        let s = render_heatmap(&map, HeatSource::AllMetals, |_| false);
        // All interior cells are '.', no overflow anywhere (skip the legend).
        let body: String = s.lines().skip(1).collect();
        assert!(body.contains('.'));
        assert!(!body.contains('#'));
        assert!(!body.contains('X'));
    }

    #[test]
    fn loaded_edges_heat_up() {
        let mut map = empty_map();
        let (a, b) = (GcellId::new(3, 3), GcellId::new(4, 3));
        let cap = map.edge_capacity(MetalLayer::M3, a, b);
        map.add_edge_load(MetalLayer::M3, a, b, cap + 5.0);
        let util = cell_utilization(&map, a, HeatSource::Metal(MetalLayer::M3));
        assert!(util > 1.0);
        let s = render_heatmap(&map, HeatSource::Metal(MetalLayer::M3), |_| false);
        assert!(s.contains('#'));
    }

    #[test]
    fn overlay_takes_precedence() {
        let map = empty_map();
        let target = GcellId::new(0, 0);
        let s = render_heatmap(&map, HeatSource::AllMetals, |g| g == target);
        let body: String = s.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert_eq!(body.matches('X').count(), 1);
        // South-west corner: last row, first column.
        let last_row = body.lines().last().unwrap();
        assert!(last_row.starts_with('X'));
    }

    #[test]
    fn via_source_reads_via_loads() {
        let mut map = empty_map();
        let g = GcellId::new(2, 2);
        let cap = map.via_capacity(ViaLayer::V2, g);
        map.add_via_load(ViaLayer::V2, g, cap * 0.95);
        let util = cell_utilization(&map, g, HeatSource::Via(ViaLayer::V2));
        assert!(util > 0.9 && util <= 1.0);
    }

    #[test]
    fn rows_render_north_first() {
        let map = empty_map();
        let s = render_heatmap(&map, HeatSource::AllMetals, |g| g.y == 0);
        let lines: Vec<&str> = s.lines().skip(1).collect();
        // The y=0 overlay row must be the LAST rendered row.
        assert!(lines.last().unwrap().chars().all(|c| c == 'X'));
        assert!(lines[0].chars().all(|c| c != 'X'));
    }
}

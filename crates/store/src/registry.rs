//! The crash-safe model registry: journaled generations over
//! content-addressed immutable blobs.
//!
//! One [`Registry`] owns a directory with this layout:
//!
//! ```text
//! <root>/LOG                      append-only generation journal
//! <root>/blobs/<hash>.blob        immutable model containers, by content hash
//! <root>/quarantine/<hash>.blob   blobs that failed verification
//! ```
//!
//! [`Registry::publish`] runs the atomic-publish protocol — blob tmp
//! write, fsync, rename, directory fsync, journal append, journal fsync —
//! so a crash at *any* syscall boundary leaves the registry recoverable:
//! [`Registry::open`] truncates a torn journal tail, sweeps stray temp
//! files, and [`Registry::open_latest`] walks generations newest-first,
//! quarantining any blob whose checksum or fingerprint fails, until it
//! lands on a verified generation. A generation whose publish returned
//! `Ok` is never lost, and a quarantined blob is never served again.

use std::sync::{Arc, Mutex};

use drcshap_core::artifact::{crc32, decode_model, encode_model, ModelKind, SavedModel};
use drcshap_features::FeatureSchema;
use drcshap_ml::{DrcshapError, StoreError};
use drcshap_telemetry as telemetry;
use serde::Serialize;

use crate::backend::{publish_file, StorageBackend};
use crate::journal::{self, Record};

/// Registry-relative path of the generation journal.
pub const JOURNAL: &str = "LOG";
/// Registry-relative blob directory.
pub const BLOB_DIR: &str = "blobs";
/// Registry-relative quarantine directory.
pub const QUARANTINE_DIR: &str = "quarantine";

/// FNV-1a 64-bit content hash — names blobs and detects silent content
/// drift independently of the CRC32 inside the container.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What recovery found and repaired when the registry was opened.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// Committed generations found in the journal.
    pub generations: usize,
    /// Bytes cut off the journal tail (0 when the journal was clean).
    pub truncated_bytes: u64,
    /// Why the tail was cut, if it was.
    pub torn_detail: Option<String>,
    /// Stray `*.tmp` files swept out of the blob directory.
    pub swept_tmp_files: usize,
}

/// A successfully published generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Published {
    /// The generation number the journal committed.
    pub generation: u64,
    /// Content hash of (and blob name for) the container bytes.
    pub hash: u64,
    /// Container size in bytes.
    pub len: u64,
    /// Schema fingerprint the model is bound to.
    pub fingerprint: u64,
}

/// A generation loaded back out of the registry, fully verified.
#[derive(Debug, Clone, PartialEq)]
pub struct Loaded {
    /// The generation number.
    pub generation: u64,
    /// Schema fingerprint the model is bound to.
    pub fingerprint: u64,
    /// Content hash of the container bytes.
    pub hash: u64,
    /// The decoded model.
    pub model: SavedModel,
}

/// One journaled generation as reported by [`Registry::list`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GenerationInfo {
    /// The generation number.
    pub generation: u64,
    /// Model kind code (see [`kind_name`]).
    pub kind: u8,
    /// Container size in bytes.
    pub len: u64,
    /// Schema fingerprint the model is bound to.
    pub fingerprint: u64,
    /// Content hash of (and blob name for) the container bytes.
    pub hash: u64,
    /// Whether the blob file currently exists (false after gc or
    /// quarantine).
    pub blob_present: bool,
}

/// Verification status of one journaled generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum GenerationStatus {
    /// Blob present, checksum and fingerprint verified, model decodes.
    Verified,
    /// Blob absent (garbage-collected or quarantined earlier).
    Missing,
    /// Blob failed verification during this pass and was moved to
    /// quarantine.
    Quarantined {
        /// What verification found.
        detail: String,
    },
}

/// The outcome of [`Registry::verify`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VerifyReport {
    /// Per-generation status, oldest first: `(generation, status)`.
    pub generations: Vec<(u64, GenerationStatus)>,
    /// Newest generation that verified, if any.
    pub latest_verified: Option<u64>,
}

impl VerifyReport {
    /// Generations whose blob verified in place.
    pub fn verified(&self) -> usize {
        self.count(|s| matches!(s, GenerationStatus::Verified))
    }

    /// Generations quarantined by this pass.
    pub fn quarantined(&self) -> usize {
        self.count(|s| matches!(s, GenerationStatus::Quarantined { .. }))
    }

    /// Generations whose blob is gone (collected or already quarantined).
    pub fn missing(&self) -> usize {
        self.count(|s| matches!(s, GenerationStatus::Missing))
    }

    fn count(&self, pred: impl Fn(&GenerationStatus) -> bool) -> usize {
        self.generations.iter().filter(|(_, s)| pred(s)).count()
    }
}

/// The outcome of [`Registry::gc`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GcReport {
    /// Generations kept in the compacted journal.
    pub kept: usize,
    /// Journal records dropped.
    pub dropped: usize,
    /// Blob files deleted (hashes no longer referenced by kept records).
    pub removed_blobs: usize,
}

struct Inner {
    backend: Arc<dyn StorageBackend>,
    /// Serializes publish/gc and carries the next generation number.
    next_generation: Mutex<u64>,
    recovery: RecoveryReport,
}

/// A handle to a crash-safe model registry. Cheap to clone; all clones
/// share one backend and serialize their writes.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Opens (and recovers) the registry stored in `backend`: lays out the
    /// directories, truncates a torn journal tail, sweeps stray temp
    /// files, and caches the next generation number.
    ///
    /// # Errors
    ///
    /// [`DrcshapError::Io`] if the backend fails; corruption is *repaired*
    /// here, never an error.
    pub fn open(backend: Arc<dyn StorageBackend>) -> Result<Registry, DrcshapError> {
        let _span = telemetry::span("store/recover");
        let io = |path: &str| {
            let path = path.to_string();
            move |e: std::io::Error| DrcshapError::io(path, e)
        };
        backend.create_dir_all(BLOB_DIR).map_err(io(BLOB_DIR))?;
        backend.create_dir_all(QUARANTINE_DIR).map_err(io(QUARANTINE_DIR))?;
        if !backend.exists(JOURNAL) {
            // Create the journal up front and make its *directory entry*
            // durable. Appends fsync file contents only — if the entry
            // itself were provisional, a crash after the first publish
            // could drop the whole journal.
            backend.write(JOURNAL, &[]).map_err(io(JOURNAL))?;
            backend.sync(JOURNAL).map_err(io(JOURNAL))?;
            backend.sync_dir("").map_err(io("<root>"))?;
        }
        let scan = journal::load(backend.as_ref(), JOURNAL).map_err(io(JOURNAL))?;
        let mut report = RecoveryReport {
            generations: scan.records.len(),
            torn_detail: scan.torn.clone(),
            ..Default::default()
        };
        if scan.torn.is_some() {
            // Only the tail of an append-only journal can be damaged; cut
            // it off so the torn frame can never shadow a later append.
            let total = backend.read(JOURNAL).map_err(io(JOURNAL))?.len() as u64;
            report.truncated_bytes = total - scan.valid_len;
            backend.truncate(JOURNAL, scan.valid_len).map_err(io(JOURNAL))?;
            backend.sync(JOURNAL).map_err(io(JOURNAL))?;
            telemetry::counter("store/journal_truncations", 1);
        }
        // Crash leftovers: a publish that died before its rename leaves a
        // *.tmp in the blob directory. Nothing references it; sweep it.
        for name in backend.list(BLOB_DIR).map_err(io(BLOB_DIR))? {
            if name.ends_with(".tmp") {
                let path = format!("{BLOB_DIR}/{name}");
                backend.remove(&path).map_err(io(&path))?;
                report.swept_tmp_files += 1;
            }
        }
        if report.swept_tmp_files > 0 {
            backend.sync_dir(BLOB_DIR).map_err(io(BLOB_DIR))?;
        }
        let next = scan.records.last().map_or(1, |r| r.generation + 1);
        Ok(Registry {
            inner: Arc::new(Inner { backend, next_generation: Mutex::new(next), recovery: report }),
        })
    }

    /// What recovery found when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.inner.recovery
    }

    /// Publishes `model` bound to `schema` as the next generation.
    ///
    /// # Errors
    ///
    /// The encoding errors of [`encode_model`]; [`DrcshapError::Io`] if
    /// any step of the atomic publish protocol fails (the registry is
    /// left recoverable: re-open and retry).
    pub fn publish(
        &self,
        model: &SavedModel,
        schema: &FeatureSchema,
    ) -> Result<Published, DrcshapError> {
        self.publish_model(model, schema.fingerprint())
    }

    /// Publishes `model` bound to a raw schema `fingerprint` (for callers
    /// that track fingerprints without a full schema, e.g. soak harnesses).
    ///
    /// # Errors
    ///
    /// As [`Registry::publish`].
    pub fn publish_model(
        &self,
        model: &SavedModel,
        fingerprint: u64,
    ) -> Result<Published, DrcshapError> {
        let _span = telemetry::span("store/publish");
        let bytes = encode_model(model, fingerprint)?;
        let backend = self.inner.backend.as_ref();
        let mut next = self.inner.next_generation.lock().expect("registry lock poisoned");
        let record = Record {
            generation: *next,
            hash: fnv1a64(&bytes),
            len: bytes.len() as u64,
            crc32: crc32(&bytes),
            fingerprint,
            kind: model.kind().code(),
        };
        let blob = record.blob_path();
        let io = |path: String| move |e: std::io::Error| DrcshapError::io(path, e);
        // The atomic publish protocol. Order is everything: the journal
        // record is appended only after the blob it points at is durable,
        // and the generation is committed only once the journal is synced.
        let tmp = format!("{blob}.tmp");
        backend.write(&tmp, &bytes).map_err(io(tmp.clone()))?; //       op 1
        backend.sync(&tmp).map_err(io(tmp.clone()))?; //                op 2
        backend.rename(&tmp, &blob).map_err(io(blob.clone()))?; //      op 3
        backend.sync_dir(BLOB_DIR).map_err(io(BLOB_DIR.into()))?; //    op 4
        backend.append(JOURNAL, &journal::encode_frame(&record)).map_err(io(JOURNAL.into()))?; // op 5
        backend.sync(JOURNAL).map_err(io(JOURNAL.into()))?; //          op 6
        *next += 1;
        telemetry::counter("store/published", 1);
        Ok(Published {
            generation: record.generation,
            hash: record.hash,
            len: record.len,
            fingerprint,
        })
    }

    /// Loads the newest generation that passes full verification —
    /// journal record, content hash, container checksum, schema
    /// fingerprint, model decode — quarantining every newer generation
    /// whose blob fails on the way down.
    ///
    /// # Errors
    ///
    /// [`StoreError::Empty`] if no generation verifies;
    /// [`DrcshapError::Io`] if the backend fails.
    pub fn open_latest(&self) -> Result<Loaded, DrcshapError> {
        let _span = telemetry::span("store/open_latest");
        let backend = self.inner.backend.as_ref();
        let scan = journal::load(backend, JOURNAL)
            .map_err(|e| DrcshapError::io(JOURNAL.to_string(), e))?;
        for record in scan.records.iter().rev() {
            match self.load_record(record)? {
                Ok(loaded) => return Ok(loaded),
                Err(None) => {} // blob gone: fall through to an older generation
                Err(Some(detail)) => {
                    self.quarantine(record)?;
                    telemetry::counter("store/quarantined", 1);
                    let _ = detail;
                }
            }
        }
        Err(StoreError::Empty.into())
    }

    /// Lists every journaled generation, oldest first. Strictly read-only:
    /// unlike [`Registry::verify`] this checks only blob *presence*, never
    /// content, and quarantines nothing.
    ///
    /// # Errors
    ///
    /// [`DrcshapError::Io`] if the journal cannot be read.
    pub fn list(&self) -> Result<Vec<GenerationInfo>, DrcshapError> {
        let backend = self.inner.backend.as_ref();
        let scan = journal::load(backend, JOURNAL)
            .map_err(|e| DrcshapError::io(JOURNAL.to_string(), e))?;
        Ok(scan
            .records
            .iter()
            .map(|r| GenerationInfo {
                generation: r.generation,
                kind: r.kind,
                len: r.len,
                fingerprint: r.fingerprint,
                hash: r.hash,
                blob_present: backend.exists(&r.blob_path()),
            })
            .collect())
    }

    /// Verifies every journaled generation in place, quarantining blobs
    /// that fail. Read-mostly: a fully healthy registry is not written.
    ///
    /// # Errors
    ///
    /// [`DrcshapError::Io`] if the backend fails; bad blobs are reported
    /// (and quarantined), not errors.
    pub fn verify(&self) -> Result<VerifyReport, DrcshapError> {
        let _span = telemetry::span("store/verify");
        let backend = self.inner.backend.as_ref();
        let scan = journal::load(backend, JOURNAL)
            .map_err(|e| DrcshapError::io(JOURNAL.to_string(), e))?;
        let mut generations = Vec::with_capacity(scan.records.len());
        let mut latest_verified = None;
        for record in &scan.records {
            let status = match self.load_record(record)? {
                Ok(_) => {
                    latest_verified = Some(record.generation);
                    GenerationStatus::Verified
                }
                Err(None) => GenerationStatus::Missing,
                Err(Some(detail)) => {
                    self.quarantine(record)?;
                    telemetry::counter("store/quarantined", 1);
                    GenerationStatus::Quarantined { detail }
                }
            };
            generations.push((record.generation, status));
        }
        Ok(VerifyReport { generations, latest_verified })
    }

    /// Keeps the newest `keep` generations: compacts the journal to those
    /// records (atomically) and deletes blob files no kept record
    /// references. Quarantined blobs are untouched — they are evidence.
    ///
    /// # Errors
    ///
    /// [`DrcshapError::usage`] if `keep` is zero; [`DrcshapError::Io`] if
    /// the backend fails.
    pub fn gc(&self, keep: usize) -> Result<GcReport, DrcshapError> {
        if keep == 0 {
            return Err(DrcshapError::usage("gc must keep at least one generation"));
        }
        let _span = telemetry::span("store/gc");
        let backend = self.inner.backend.as_ref();
        let _lock = self.inner.next_generation.lock().expect("registry lock poisoned");
        let io = |path: &str| {
            let path = path.to_string();
            move |e: std::io::Error| DrcshapError::io(path, e)
        };
        let scan = journal::load(backend, JOURNAL).map_err(io(JOURNAL))?;
        let cut = scan.records.len().saturating_sub(keep);
        let (dropped, kept) = scan.records.split_at(cut);
        // Swap the compacted journal in atomically first: once no record
        // references a blob, deleting it can no longer orphan a reader. A
        // crash in between leaves unreferenced blobs — harmless garbage
        // the next gc sweeps.
        let bytes: Vec<u8> = kept.iter().flat_map(journal::encode_frame).collect();
        publish_file(backend, JOURNAL, &bytes).map_err(io(JOURNAL))?;
        let kept_hashes: Vec<u64> = kept.iter().map(|r| r.hash).collect();
        let mut removed = 0usize;
        for record in dropped {
            if kept_hashes.contains(&record.hash) {
                continue; // content-addressing: a kept generation shares this blob
            }
            let blob = record.blob_path();
            if backend.exists(&blob) {
                backend.remove(&blob).map_err(io(&blob))?;
                removed += 1;
            }
        }
        if removed > 0 {
            backend.sync_dir(BLOB_DIR).map_err(io(BLOB_DIR))?;
        }
        Ok(GcReport { kept: kept.len(), dropped: dropped.len(), removed_blobs: removed })
    }

    /// A watch that delivers generations published *after* the newest one
    /// currently committed (the fleet is assumed to already serve that).
    ///
    /// # Errors
    ///
    /// [`DrcshapError::Io`] if the journal cannot be read.
    pub fn watch(&self) -> Result<RegistryWatch, DrcshapError> {
        let backend = self.inner.backend.as_ref();
        let scan = journal::load(backend, JOURNAL)
            .map_err(|e| DrcshapError::io(JOURNAL.to_string(), e))?;
        let last_seen = scan.records.last().map_or(0, |r| r.generation);
        Ok(RegistryWatch { registry: self.clone(), last_seen })
    }

    /// A watch that delivers every generation newer than `generation`
    /// (zero replays from the beginning).
    pub fn watch_from(&self, generation: u64) -> RegistryWatch {
        RegistryWatch { registry: self.clone(), last_seen: generation }
    }

    /// Reads and fully verifies one record's blob.
    ///
    /// Outer `Err` = backend I/O failure. Inner `Err(None)` = blob absent;
    /// `Err(Some(detail))` = blob present but failed verification.
    #[allow(clippy::type_complexity)]
    fn load_record(&self, record: &Record) -> Result<Result<Loaded, Option<String>>, DrcshapError> {
        let backend = self.inner.backend.as_ref();
        let blob = record.blob_path();
        let bytes = match backend.read(&blob) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Err(None)),
            Err(e) => return Err(DrcshapError::io(blob, e)),
        };
        if bytes.len() as u64 != record.len {
            return Ok(Err(Some(format!(
                "blob is {} bytes, journal committed {}",
                bytes.len(),
                record.len
            ))));
        }
        let hash = fnv1a64(&bytes);
        if hash != record.hash {
            return Ok(Err(Some(format!(
                "content hash {hash:#018x} != committed {:#018x}",
                record.hash
            ))));
        }
        if crc32(&bytes) != record.crc32 {
            return Ok(Err(Some("container CRC32 drifted from the journal record".into())));
        }
        let model = match decode_model(&bytes, record.fingerprint) {
            Ok(model) => model,
            Err(e) => return Ok(Err(Some(format!("container rejected: {e}")))),
        };
        if model.kind().code() != record.kind {
            return Ok(Err(Some(format!(
                "model kind {} != committed kind byte {:#04x}",
                model.kind(),
                record.kind
            ))));
        }
        Ok(Ok(Loaded {
            generation: record.generation,
            fingerprint: record.fingerprint,
            hash: record.hash,
            model,
        }))
    }

    /// Moves a failed blob to quarantine (durable), so it is never read
    /// as a candidate generation again.
    fn quarantine(&self, record: &Record) -> Result<(), DrcshapError> {
        let backend = self.inner.backend.as_ref();
        let from = record.blob_path();
        let to = record.quarantine_path();
        let io = |path: &str| {
            let path = path.to_string();
            move |e: std::io::Error| DrcshapError::io(path, e)
        };
        backend.rename(&from, &to).map_err(io(&from))?;
        backend.sync_dir(BLOB_DIR).map_err(io(BLOB_DIR))?;
        backend.sync_dir(QUARANTINE_DIR).map_err(io(QUARANTINE_DIR))?;
        Ok(())
    }
}

/// An incremental view over a registry: [`poll`](RegistryWatch::poll)
/// returns each newly published (and verified) generation exactly once.
pub struct RegistryWatch {
    registry: Registry,
    last_seen: u64,
}

impl RegistryWatch {
    /// The newest generation this watch has delivered (or started after).
    pub fn last_seen(&self) -> u64 {
        self.last_seen
    }

    /// Returns the newest verified generation newer than anything this
    /// watch has delivered, or `None` if the registry has nothing newer.
    /// Corrupt newer blobs are quarantined by the underlying
    /// [`Registry::open_latest`] walk, so a torn publish can never stall
    /// the watch behind it.
    ///
    /// # Errors
    ///
    /// [`DrcshapError::Io`] if the backend fails.
    pub fn poll(&mut self) -> Result<Option<Loaded>, DrcshapError> {
        match self.registry.open_latest() {
            Ok(loaded) if loaded.generation > self.last_seen => {
                self.last_seen = loaded.generation;
                Ok(Some(loaded))
            }
            Ok(_) => Ok(None),
            Err(DrcshapError::Store(StoreError::Empty)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The kind byte rendered for operator output (`registry ls`).
pub fn kind_name(code: u8) -> String {
    match ModelKind::from_code(code) {
        Some(kind) => kind.to_string(),
        None => format!("kind {code:#04x}"),
    }
}

//! Crash-simulating storage: an in-memory filesystem with explicit
//! durability semantics, plus a fault-injecting wrapper.
//!
//! [`MemBackend`] models what a real filesystem guarantees — and, more
//! importantly, what it does *not*. Every file tracks its visible content
//! separately from its synced content, and every namespace change (create,
//! rename, remove) stays provisional until the parent directory is
//! fsynced. A [`power cycle`](FaultBackend::power_cycle) resolves all
//! provisional state adversarially under a seeded RNG: unsynced writes
//! survive fully, tear to a prefix (optionally with garbage bytes — a
//! sector half-written when the power died), or vanish; un-fsynced renames
//! persist or revert; un-fsynced creates persist or disappear.
//!
//! [`FaultBackend`] wraps it with an operation counter and a
//! [`FaultPlan`]: crash exactly at the Nth storage call (which also covers
//! "partial fsync" — a crash scheduled *on* a sync op means the sync never
//! completed), or fail one op with `ENOSPC`/`EIO` without crashing. The
//! testkit crash soak drives every syscall boundary of a registry publish
//! through this and asserts recovery always lands on a verified
//! generation.

use std::collections::BTreeMap;
use std::io;
use std::sync::Mutex;

use crate::backend::{parent_of, StorageBackend};

/// xorshift64* — a tiny seeded RNG so fault resolution is deterministic
/// per seed without pulling RNG crates into the storage layer.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    // Decisions draw from the high half of the output: xorshift64*'s
    // quality lives in the upper bits, and nearby seeds share low bits.
    fn coin(&mut self) -> bool {
        self.next() >> 63 == 1
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((self.next() >> 32) % n as u64) as usize
        }
    }
}

/// One in-memory file: what a reader sees now vs. what a crash preserves.
#[derive(Debug, Clone)]
struct Node {
    /// Content visible to reads right now.
    visible: Vec<u8>,
    /// Content guaranteed flushed for this inode (what the platter holds).
    synced: Vec<u8>,
    /// The name→inode entry survives a crash (parent dir was fsynced
    /// after the entry appeared, or the file predates the last crash).
    entry_durable: bool,
}

impl Node {
    /// The content that survives a crash, resolved adversarially: the
    /// synced bytes, the full visible bytes (they happened to hit disk),
    /// or a torn prefix — never shorter than what was synced — possibly
    /// followed by garbage from a half-written sector.
    fn crash_content(&self, rng: &mut Rng) -> Vec<u8> {
        if self.visible == self.synced {
            return self.synced.clone();
        }
        match rng.below(4) {
            0 => self.synced.clone(),
            1 => self.visible.clone(),
            _ => {
                let cut = self.synced.len()
                    + rng.below(self.visible.len().saturating_sub(self.synced.len()) + 1);
                let mut torn = self.visible[..cut.min(self.visible.len())].to_vec();
                if rng.coin() {
                    for _ in 0..rng.below(16) + 1 {
                        torn.push(rng.next() as u8);
                    }
                }
                torn
            }
        }
    }
}

/// A rename that has not been made durable by a parent-directory fsync.
#[derive(Debug, Clone)]
struct PendingRename {
    from: String,
    to: String,
    /// Node `to` held before the rename replaced it (it resurfaces if the
    /// crash reverts the rename), if any.
    displaced: Option<Node>,
}

/// A remove that has not been made durable by a parent-directory fsync.
#[derive(Debug, Clone)]
struct PendingRemove {
    path: String,
    node: Node,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<String, Node>,
    /// Visible directories. Directory *entries for directories* are modeled
    /// as durable on creation: recovery re-creates the layout anyway, so
    /// simulating lost directories adds noise without new failure modes.
    dirs: Vec<String>,
    pending_renames: Vec<PendingRename>,
    pending_removes: Vec<PendingRemove>,
}

/// The in-memory filesystem with crash semantics. Usually used through
/// [`FaultBackend`]; usable alone as a fast, hermetic backend for tests.
#[derive(Debug, Default)]
pub struct MemBackend {
    state: Mutex<MemState>,
}

impl MemBackend {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a power loss: resolves every provisional state under
    /// `seed` and leaves the filesystem crash-consistent (everything that
    /// survived is now durable).
    pub fn crash(&self, seed: u64) {
        let mut rng = Rng::new(seed);
        let state = &mut *self.state.lock().unwrap();
        // Un-fsynced renames persist or revert, independently.
        for pending in std::mem::take(&mut state.pending_renames) {
            if rng.coin() {
                // The rename hit disk. If it replaced an entry that was
                // already durable, the *name* is durable no matter what:
                // a crash picks which inode the entry references, it can
                // never un-exist the entry itself.
                if pending.displaced.as_ref().is_some_and(|d| d.entry_durable) {
                    if let Some(node) = state.files.get_mut(&pending.to) {
                        node.entry_durable = true;
                    }
                }
                continue;
            }
            // Reverted: the inode answers to its old name again; whatever
            // the rename displaced at `to` resurfaces (if it was durable).
            if let Some(node) = state.files.remove(&pending.to) {
                state.files.insert(pending.from.clone(), node);
            }
            match pending.displaced {
                Some(node) if node.entry_durable => {
                    state.files.insert(pending.to.clone(), node);
                }
                _ => {}
            }
        }
        // Un-fsynced removes: the entry may come back.
        for pending in std::mem::take(&mut state.pending_removes) {
            if !rng.coin() && pending.node.entry_durable {
                state.files.entry(pending.path.clone()).or_insert(pending.node);
            }
        }
        // Resolve file contents; un-fsynced entries may vanish outright.
        let files = std::mem::take(&mut state.files);
        for (path, node) in files {
            if !node.entry_durable && rng.coin() {
                continue; // the create never reached the directory
            }
            let content = node.crash_content(&mut rng);
            state.files.insert(
                path,
                Node { visible: content.clone(), synced: content, entry_durable: true },
            );
        }
    }

    /// Flips bit `bit` of byte `offset` in the file at `path` — durable
    /// bit rot, surviving future crashes. Errors if the file or offset
    /// does not exist.
    pub fn corrupt(&self, path: &str, offset: usize, bit: u8) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let node = state.files.get_mut(path).ok_or_else(not_found)?;
        if offset >= node.visible.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "corrupt offset out of range"));
        }
        node.visible[offset] ^= 1 << (bit % 8);
        if offset < node.synced.len() {
            node.synced[offset] ^= 1 << (bit % 8);
        }
        Ok(())
    }

    /// The length of the file at `path`, if it exists.
    pub fn len(&self, path: &str) -> Option<usize> {
        self.state.lock().unwrap().files.get(path).map(|n| n.visible.len())
    }

    fn dir_exists(state: &MemState, dir: &str) -> bool {
        dir.is_empty() || state.dirs.iter().any(|d| d == dir)
    }
}

fn not_found() -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, "no such file")
}

impl StorageBackend for MemBackend {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let state = self.state.lock().unwrap();
        state.files.get(path).map(|n| n.visible.clone()).ok_or_else(not_found)
    }

    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        if !Self::dir_exists(&state, parent_of(path)) {
            return Err(not_found());
        }
        match state.files.get_mut(path) {
            Some(node) => {
                // Truncate + rewrite of an existing inode: nothing about
                // the new content is synced.
                node.visible = bytes.to_vec();
                node.synced.clear();
            }
            None => {
                state.files.insert(
                    path.to_string(),
                    Node { visible: bytes.to_vec(), synced: Vec::new(), entry_durable: false },
                );
            }
        }
        Ok(())
    }

    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        if !Self::dir_exists(&state, parent_of(path)) {
            return Err(not_found());
        }
        match state.files.get_mut(path) {
            Some(node) => node.visible.extend_from_slice(bytes),
            None => {
                state.files.insert(
                    path.to_string(),
                    Node { visible: bytes.to_vec(), synced: Vec::new(), entry_durable: false },
                );
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let node = state.files.get_mut(path).ok_or_else(not_found)?;
        node.visible.truncate(len as usize);
        node.synced.truncate(len as usize);
        Ok(())
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let node = state.files.get_mut(path).ok_or_else(not_found)?;
        node.synced = node.visible.clone();
        Ok(())
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        if !Self::dir_exists(&state, path) {
            return Err(not_found());
        }
        // Commit every provisional namespace change inside this directory.
        let renames = std::mem::take(&mut state.pending_renames);
        for pending in renames {
            if parent_of(&pending.to) == path || parent_of(&pending.from) == path {
                if let Some(node) = state.files.get_mut(&pending.to) {
                    node.entry_durable = true;
                }
            } else {
                state.pending_renames.push(pending);
            }
        }
        let removes = std::mem::take(&mut state.pending_removes);
        for pending in removes {
            if parent_of(&pending.path) != path {
                state.pending_removes.push(pending);
            }
        }
        for (file, node) in state.files.iter_mut() {
            if parent_of(file) == path {
                node.entry_durable = true;
            }
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        if !Self::dir_exists(&state, parent_of(to)) {
            return Err(not_found());
        }
        let node = state.files.remove(from).ok_or_else(not_found)?;
        let displaced = state.files.insert(to.to_string(), node);
        state.pending_renames.push(PendingRename {
            from: from.to_string(),
            to: to.to_string(),
            displaced,
        });
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let node = state.files.remove(path).ok_or_else(not_found)?;
        state.pending_removes.push(PendingRemove { path: path.to_string(), node });
        Ok(())
    }

    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        if path.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().unwrap();
        let mut prefix = String::new();
        for part in path.split('/') {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(part);
            if !state.dirs.iter().any(|d| d == &prefix) {
                state.dirs.push(prefix.clone());
            }
        }
        Ok(())
    }

    fn list(&self, path: &str) -> io::Result<Vec<String>> {
        let state = self.state.lock().unwrap();
        if !Self::dir_exists(&state, path) {
            return Err(not_found());
        }
        Ok(state
            .files
            .keys()
            .filter(|f| parent_of(f) == path)
            .map(|f| f.rsplit('/').next().unwrap_or(f).to_string())
            .collect())
    }

    fn exists(&self, path: &str) -> bool {
        self.state.lock().unwrap().files.contains_key(path)
    }
}

/// Which error a scheduled non-crash fault surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `ENOSPC`: the disk filled up mid-operation.
    Enospc,
    /// `EIO`: the device returned an I/O error.
    Eio,
}

impl FaultKind {
    fn error(self) -> io::Error {
        match self {
            FaultKind::Enospc => {
                io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC: no space left")
            }
            FaultKind::Eio => io::Error::other("injected EIO: device error"),
        }
    }
}

/// A seeded fault schedule for one arming of a [`FaultBackend`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Crash *instead of executing* the Nth storage operation (0-based,
    /// counted from [`FaultBackend::arm`]). Every later operation fails
    /// until [`FaultBackend::power_cycle`].
    pub crash_at_op: Option<u64>,
    /// Fail the Nth storage operation once with the given error, without
    /// crashing (the caller sees a typed I/O failure and must recover).
    pub fail_at_op: Option<(u64, FaultKind)>,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: u64,
    plan: FaultPlan,
    crashed: bool,
}

/// A [`StorageBackend`] that injects scheduled faults in front of a
/// [`MemBackend`]. Read-only probes (`exists`) are free; every other
/// operation advances the op counter the [`FaultPlan`] indexes.
#[derive(Debug, Default)]
pub struct FaultBackend {
    mem: MemBackend,
    fault: Mutex<FaultState>,
}

impl FaultBackend {
    /// A fault backend over an empty in-memory filesystem, with no faults
    /// armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// The filesystem underneath (for corruption injection and probes).
    pub fn mem(&self) -> &MemBackend {
        &self.mem
    }

    /// Installs `plan` and resets the op counter to zero, so plan indices
    /// address the operations of exactly the next registry action.
    pub fn arm(&self, plan: FaultPlan) {
        let mut fault = self.fault.lock().unwrap();
        fault.ops = 0;
        fault.plan = plan;
        fault.crashed = false;
    }

    /// Operations executed since the last [`arm`](Self::arm).
    pub fn ops(&self) -> u64 {
        self.fault.lock().unwrap().ops
    }

    /// Whether a scheduled crash has fired.
    pub fn is_crashed(&self) -> bool {
        self.fault.lock().unwrap().crashed
    }

    /// Ends a crash: resolves all provisional filesystem state under
    /// `seed` (see [`MemBackend::crash`]) and clears the fault schedule,
    /// as if the machine rebooted.
    pub fn power_cycle(&self, seed: u64) {
        self.mem.crash(seed);
        let mut fault = self.fault.lock().unwrap();
        fault.ops = 0;
        fault.plan = FaultPlan::default();
        fault.crashed = false;
    }

    fn gate(&self) -> io::Result<()> {
        let mut fault = self.fault.lock().unwrap();
        if fault.crashed {
            return Err(io::Error::other("simulated crash: backend down until power cycle"));
        }
        let op = fault.ops;
        fault.ops += 1;
        if fault.plan.crash_at_op == Some(op) {
            fault.crashed = true;
            return Err(io::Error::other("simulated crash at op boundary"));
        }
        if let Some((at, kind)) = fault.plan.fail_at_op {
            if at == op {
                fault.plan.fail_at_op = None;
                return Err(kind.error());
            }
        }
        Ok(())
    }
}

impl StorageBackend for FaultBackend {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.gate()?;
        self.mem.read(path)
    }

    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.mem.write(path, bytes)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        self.gate()?;
        self.mem.append(path, bytes)
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        self.gate()?;
        self.mem.truncate(path, len)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.mem.sync(path)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.mem.sync_dir(path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.gate()?;
        self.mem.rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.mem.remove(path)
    }

    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        self.gate()?;
        self.mem.create_dir_all(path)
    }

    fn list(&self, path: &str) -> io::Result<Vec<String>> {
        self.gate()?;
        self.mem.list(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.mem.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::publish_file;

    #[test]
    fn synced_content_survives_any_crash() {
        for seed in 0..64 {
            let mem = MemBackend::new();
            mem.create_dir_all("blobs").unwrap();
            publish_file(&mem, "blobs/a", b"durable").unwrap();
            // A later unsynced scribble must never damage the synced bytes.
            mem.append("blobs/a", b" tail").unwrap();
            mem.crash(seed);
            let got = mem.read("blobs/a").unwrap();
            assert!(got.starts_with(b"durable"), "seed {seed}: synced prefix lost: {got:?}");
        }
    }

    #[test]
    fn unsynced_write_can_tear_or_vanish() {
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..256 {
            let mem = MemBackend::new();
            mem.create_dir_all("blobs").unwrap();
            mem.write("blobs/t.tmp", b"0123456789").unwrap();
            mem.crash(seed);
            match mem.read("blobs/t.tmp") {
                Err(_) => {
                    outcomes.insert("absent");
                }
                Ok(b) if b == b"0123456789" => {
                    outcomes.insert("full");
                }
                Ok(_) => {
                    outcomes.insert("torn");
                }
            }
        }
        assert!(outcomes.len() == 3, "expected absent/full/torn across seeds, saw {outcomes:?}");
    }

    #[test]
    fn unsynced_rename_can_revert() {
        let mut saw_old = false;
        let mut saw_new = false;
        for seed in 0..64 {
            let mem = MemBackend::new();
            mem.create_dir_all("blobs").unwrap();
            publish_file(&mem, "blobs/a.tmp", b"x").unwrap();
            mem.rename("blobs/a.tmp", "blobs/a").unwrap();
            // No sync_dir: the rename is provisional.
            mem.crash(seed);
            saw_old |= mem.exists("blobs/a.tmp");
            saw_new |= mem.exists("blobs/a");
            assert!(
                mem.exists("blobs/a") != mem.exists("blobs/a.tmp"),
                "seed {seed}: rename must persist or revert, not both"
            );
        }
        assert!(saw_old && saw_new, "both rename outcomes must be reachable");
    }

    #[test]
    fn fault_backend_crashes_at_scheduled_op_and_recovers() {
        let be = FaultBackend::new();
        be.create_dir_all("d").unwrap();
        be.arm(FaultPlan { crash_at_op: Some(2), ..Default::default() });
        be.write("d/a", b"one").unwrap(); // op 0
        be.write("d/b", b"two").unwrap(); // op 1
        let err = be.write("d/c", b"three").unwrap_err(); // op 2: crash
        assert!(err.to_string().contains("crash"), "{err}");
        assert!(be.is_crashed());
        assert!(be.write("d/d", b"four").is_err(), "all ops fail while down");
        be.power_cycle(7);
        be.write("d/d", b"four").unwrap();
    }

    #[test]
    fn fault_backend_injects_one_shot_enospc() {
        let be = FaultBackend::new();
        be.create_dir_all("d").unwrap();
        be.arm(FaultPlan { fail_at_op: Some((1, FaultKind::Enospc)), ..Default::default() });
        be.write("d/a", b"one").unwrap();
        let err = be.write("d/b", b"two").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        be.write("d/b", b"two").unwrap();
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let mem = MemBackend::new();
        mem.create_dir_all("blobs").unwrap();
        publish_file(&mem, "blobs/a", &[0u8; 4]).unwrap();
        mem.corrupt("blobs/a", 2, 3).unwrap();
        assert_eq!(mem.read("blobs/a").unwrap(), vec![0, 0, 8, 0]);
        mem.crash(1);
        assert_eq!(mem.read("blobs/a").unwrap(), vec![0, 0, 8, 0], "bit rot is durable");
    }
}

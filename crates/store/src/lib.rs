//! drcshap-store: the crash-safe model registry.
//!
//! Durable model storage for the drcshap serving stack, built from three
//! layers:
//!
//! - [`backend`] — the [`StorageBackend`] trait (the narrow syscall
//!   surface the registry needs, with durability made explicit) and
//!   [`FsBackend`], the real-filesystem implementation that honors the
//!   full atomic-publish discipline: write `*.tmp` → fsync file → rename
//!   → fsync parent directory.
//! - [`fault`] — [`MemBackend`], an in-memory filesystem whose crashes
//!   resolve unsynced state adversarially (torn writes, reverted renames,
//!   vanished creates), and [`FaultBackend`], which schedules crashes at
//!   exact syscall boundaries plus one-shot `ENOSPC`/`EIO` failures and
//!   durable bit flips. This is what the testkit crash soak drives.
//! - [`journal`] + [`registry`] — an append-only CRC-framed generation
//!   journal over content-addressed immutable blobs, and the
//!   [`Registry`] API (`publish` / `open_latest` / `watch` / `verify` /
//!   `gc`) whose recovery truncates torn journal tails and quarantines
//!   corrupt blobs until it lands on the newest *verified* generation.
//!
//! Invariants the crash soak holds this crate to: a publish that returned
//! `Ok` is never lost; `open_latest` after recovery always yields a
//! bit-identical, fingerprint-valid model; a quarantined blob is never
//! served again; every failure is a typed [`drcshap_ml::DrcshapError`].

pub mod backend;
pub mod fault;
pub mod journal;
pub mod registry;

pub use backend::{publish_file, FsBackend, StorageBackend};
pub use fault::{FaultBackend, FaultKind, FaultPlan, MemBackend};
pub use registry::{
    fnv1a64, kind_name, GcReport, GenerationInfo, GenerationStatus, Loaded, Published,
    RecoveryReport, Registry, RegistryWatch, VerifyReport,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use drcshap_core::artifact::SavedModel;
    use drcshap_forest::RandomForestTrainer;
    use drcshap_ml::{Dataset, DrcshapError, StoreError, Trainer};

    use super::backend::StorageBackend;
    use super::fault::{FaultBackend, FaultKind, FaultPlan};
    use super::registry::Registry;

    /// A tiny deterministic forest distinguishable per `seed`.
    fn forest(seed: u64) -> SavedModel {
        let n = 40;
        let mut x = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let v = ((i * 2654435761 + seed) % 97) as f32 / 97.0;
            x.extend_from_slice(&[v, 1.0 - v, (v * 13.0) % 1.0]);
            y.push(v > 0.5);
        }
        let data = Dataset::from_parts(x, y, vec![0; n], 3);
        let trainer = RandomForestTrainer { n_trees: 3, ..Default::default() };
        SavedModel::Rf(trainer.fit(&data, seed))
    }

    fn open(backend: &Arc<FaultBackend>) -> Registry {
        Registry::open(backend.clone() as Arc<dyn super::StorageBackend>).unwrap()
    }

    #[test]
    fn publish_then_open_latest_round_trips_bit_identically() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        let model = forest(1);
        let published = registry.publish_model(&model, 0xfeed).unwrap();
        assert_eq!(published.generation, 1);
        let loaded = registry.open_latest().unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.fingerprint, 0xfeed);
        assert_eq!(loaded.model, model);
    }

    #[test]
    fn empty_registry_is_a_typed_error() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        match registry.open_latest() {
            Err(DrcshapError::Store(StoreError::Empty)) => {}
            other => panic!("expected StoreError::Empty, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_latest_blob_is_quarantined_and_previous_served() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        let old = forest(1);
        registry.publish_model(&old, 7).unwrap();
        let published = registry.publish_model(&forest(2), 7).unwrap();
        let blob = format!("blobs/{:016x}.blob", published.hash);
        backend.mem().corrupt(&blob, 40, 2).unwrap();
        let loaded = registry.open_latest().unwrap();
        assert_eq!(loaded.generation, 1, "falls back to the last good generation");
        assert_eq!(loaded.model, old);
        assert!(
            backend.exists(&format!("quarantine/{:016x}.blob", published.hash)),
            "corrupt blob must land in quarantine"
        );
        // The quarantined generation stays dead even after re-open.
        let registry = open(&backend);
        assert_eq!(registry.open_latest().unwrap().generation, 1);
    }

    #[test]
    fn verify_reports_every_generation() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        registry.publish_model(&forest(1), 7).unwrap();
        let bad = registry.publish_model(&forest(2), 7).unwrap();
        registry.publish_model(&forest(3), 7).unwrap();
        backend.mem().corrupt(&format!("blobs/{:016x}.blob", bad.hash), 50, 1).unwrap();
        let report = registry.verify().unwrap();
        assert_eq!(report.generations.len(), 3);
        assert_eq!((report.verified(), report.quarantined(), report.missing()), (2, 1, 0));
        assert_eq!(report.latest_verified, Some(3));
        // A second pass sees the quarantined blob as missing, not corrupt.
        let report = registry.verify().unwrap();
        assert_eq!((report.verified(), report.quarantined(), report.missing()), (2, 0, 1));
    }

    #[test]
    fn gc_keeps_newest_and_drops_unreferenced_blobs() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        for seed in 1..=5 {
            registry.publish_model(&forest(seed), 7).unwrap();
        }
        let report = registry.gc(2).unwrap();
        assert_eq!((report.kept, report.dropped, report.removed_blobs), (2, 3, 3));
        let loaded = registry.open_latest().unwrap();
        assert_eq!(loaded.generation, 5, "gc must not disturb the latest generation");
        // Re-open after compaction: generation numbering continues.
        let registry = open(&backend);
        let published = registry.publish_model(&forest(9), 7).unwrap();
        assert_eq!(published.generation, 6);
        assert!(registry.gc(0).is_err(), "keep=0 would empty the registry");
    }

    #[test]
    fn gc_keeps_shared_blob_of_republished_content() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        let model = forest(1);
        registry.publish_model(&model, 7).unwrap();
        registry.publish_model(&forest(2), 7).unwrap();
        // Re-publish generation 1's exact content: same hash, shared blob.
        registry.publish_model(&model, 7).unwrap();
        let report = registry.gc(1).unwrap();
        assert_eq!(report.kept, 1);
        assert_eq!(report.removed_blobs, 1, "only the unshared blob goes");
        assert_eq!(registry.open_latest().unwrap().model, model);
    }

    #[test]
    fn watch_delivers_each_new_generation_once() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        registry.publish_model(&forest(1), 7).unwrap();
        let mut watch = registry.watch().unwrap();
        assert!(watch.poll().unwrap().is_none(), "pre-existing generation is not re-delivered");
        let expected = forest(2);
        registry.publish_model(&expected, 7).unwrap();
        let delivered = watch.poll().unwrap().expect("new generation delivered");
        assert_eq!(delivered.generation, 2);
        assert_eq!(delivered.model, expected);
        assert!(watch.poll().unwrap().is_none(), "delivered exactly once");
        // watch_from(0) replays from the start.
        let mut replay = registry.watch_from(0);
        assert_eq!(replay.poll().unwrap().unwrap().generation, 2);
    }

    #[test]
    fn enospc_mid_publish_fails_typed_and_registry_stays_consistent() {
        let backend = Arc::new(FaultBackend::new());
        let registry = open(&backend);
        let old = forest(1);
        registry.publish_model(&old, 7).unwrap();
        for op in 0..6 {
            backend
                .arm(FaultPlan { fail_at_op: Some((op, FaultKind::Enospc)), ..Default::default() });
            let err = registry.publish_model(&forest(100 + op), 7).unwrap_err();
            assert!(matches!(err, DrcshapError::Io { .. }), "op {op}: {err:?}");
            backend.arm(FaultPlan::default());
            // The failed publish must not have committed anything the
            // recovery walk can't handle.
            let registry = open(&backend);
            let loaded = registry.open_latest().unwrap();
            assert!(loaded.model == old || loaded.generation > 1, "op {op}");
        }
    }

    #[test]
    fn crash_at_every_publish_boundary_recovers_to_a_verified_generation() {
        for kill_op in 0..=6u64 {
            for seed in 0..8u64 {
                let backend = Arc::new(FaultBackend::new());
                let registry = open(&backend);
                let old = forest(1);
                registry.publish_model(&old, 7).unwrap();
                let new = forest(2);
                backend.arm(FaultPlan { crash_at_op: Some(kill_op), ..Default::default() });
                let result = registry.publish_model(&new, 7);
                backend.power_cycle(seed.wrapping_mul(0x9e37_79b9) ^ kill_op);
                let committed = result.is_ok();
                let registry = open(&backend);
                let loaded = registry.open_latest().unwrap_or_else(|e| {
                    panic!("kill {kill_op} seed {seed}: no generation after recovery: {e}")
                });
                if committed {
                    assert_eq!(loaded.generation, 2, "kill {kill_op} seed {seed}");
                    assert_eq!(loaded.model, new, "kill {kill_op} seed {seed}");
                } else {
                    assert!(
                        loaded.model == old || loaded.model == new,
                        "kill {kill_op} seed {seed}: recovered a model never published"
                    );
                    if loaded.generation == 1 {
                        assert_eq!(loaded.model, old, "kill {kill_op} seed {seed}");
                    }
                }
            }
        }
    }
}

//! The storage abstraction the registry runs on.
//!
//! [`StorageBackend`] is the narrow set of filesystem operations the
//! registry needs, expressed over registry-relative string paths so the
//! same journal and recovery code runs against the real filesystem
//! ([`FsBackend`]) and the crash-simulating in-memory backends in
//! [`crate::fault`]. Durability is explicit: `write`/`append`/`rename`
//! only change the *visible* state, and nothing is guaranteed to survive
//! a crash until the matching `sync` (file contents) and `sync_dir`
//! (namespace changes: creates, renames, removes) have returned.

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Filesystem operations the registry is built from.
///
/// Paths are `/`-separated and relative to the registry root (e.g. `LOG`,
/// `blobs/00ab.blob`). Implementations must be safe to share across
/// threads; the registry serializes mutations itself.
pub trait StorageBackend: Send + Sync {
    /// Reads the whole file at `path`.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` with `bytes`. Not durable until
    /// [`sync`](Self::sync) (content) and, for a new file,
    /// [`sync_dir`](Self::sync_dir) on the parent (namespace).
    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if absent. Not durable until
    /// synced.
    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()>;
    /// Truncates `path` to `len` bytes (journal torn-tail repair).
    fn truncate(&self, path: &str, len: u64) -> io::Result<()>;
    /// fsyncs the file contents at `path`.
    fn sync(&self, path: &str) -> io::Result<()>;
    /// fsyncs the directory at `path`, making entry creates / renames /
    /// removes inside it durable.
    fn sync_dir(&self, path: &str) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same registry). Durable only
    /// after `sync_dir` on the parent(s).
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &str) -> io::Result<()>;
    /// Creates `path` and any missing parents as directories.
    fn create_dir_all(&self, path: &str) -> io::Result<()>;
    /// File names (not paths) directly inside directory `path`.
    fn list(&self, path: &str) -> io::Result<Vec<String>>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &str) -> bool;
}

/// Publishes `bytes` at `path` through `backend` with the full atomic
/// discipline: write `path.tmp`, sync it, rename over `path`, sync the
/// parent directory. This is the only way registry code writes a file
/// whose torn state would be dangerous.
pub fn publish_file(backend: &dyn StorageBackend, path: &str, bytes: &[u8]) -> io::Result<()> {
    let tmp = format!("{path}.tmp");
    backend.write(&tmp, bytes)?;
    backend.sync(&tmp)?;
    backend.rename(&tmp, path)?;
    backend.sync_dir(parent_of(path))?;
    Ok(())
}

/// The parent directory of a registry-relative path (`""` is the root).
pub(crate) fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[..i],
        None => "",
    }
}

/// The real filesystem rooted at a directory, with every durability point
/// honored: file writes fsync before they count, renames are followed by a
/// parent-directory fsync.
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    /// A backend rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Arc<Self>> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Arc::new(FsBackend { root }))
    }

    /// The directory this backend is rooted at.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn abs(&self, path: &str) -> PathBuf {
        if path.is_empty() {
            self.root.clone()
        } else {
            self.root.join(path)
        }
    }
}

impl StorageBackend for FsBackend {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.abs(path))
    }

    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(self.abs(path), bytes)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(self.abs(path))?;
        file.write_all(bytes)
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(self.abs(path))?;
        file.set_len(len)?;
        file.sync_all()
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        std::fs::File::open(self.abs(path))?.sync_all()
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        std::fs::File::open(self.abs(path))?.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.abs(from), self.abs(to))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(self.abs(path))
    }

    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        std::fs::create_dir_all(self.abs(path))
    }

    fn list(&self, path: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(self.abs(path))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &str) -> bool {
        self.abs(path).is_file()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_of_splits_registry_paths() {
        assert_eq!(parent_of("LOG"), "");
        assert_eq!(parent_of("blobs/ab.blob"), "blobs");
        assert_eq!(parent_of("a/b/c"), "a/b");
    }

    #[test]
    fn fs_backend_round_trips_and_lists() {
        let dir = std::env::temp_dir().join(format!("drcshap-store-be-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let be = FsBackend::new(&dir).unwrap();
        be.create_dir_all("blobs").unwrap();
        publish_file(be.as_ref(), "blobs/a.blob", b"hello").unwrap();
        assert_eq!(be.read("blobs/a.blob").unwrap(), b"hello");
        assert!(!be.exists("blobs/a.blob.tmp"), "tmp file must be renamed away");
        be.append("LOG", b"one").unwrap();
        be.append("LOG", b"two").unwrap();
        assert_eq!(be.read("LOG").unwrap(), b"onetwo");
        be.truncate("LOG", 3).unwrap();
        assert_eq!(be.read("LOG").unwrap(), b"one");
        assert_eq!(be.list("blobs").unwrap(), vec!["a.blob".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The append-only, CRC-framed generation journal (`LOG`).
//!
//! Each frame is `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`
//! where the payload is one JSON [`Record`] naming a generation and the
//! content-addressed blob that holds it. Because the journal is
//! append-only, only its *tail* can ever be torn: a scan reads frames
//! front to back and stops at the first one that is short, oversized,
//! checksum-mismatched, unparseable, or non-monotonic in generation —
//! everything before that offset is committed history, everything from it
//! on is discarded by truncation during recovery.

use serde::{Deserialize, Serialize};

use crate::backend::StorageBackend;

/// Frame header: payload length + payload CRC32, both little-endian.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on one record's JSON payload. Real records are ~150 bytes;
/// anything larger is a torn length field, not a record.
pub const MAX_RECORD_LEN: u32 = 4096;

/// One committed generation: which blob holds it and how to verify it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Monotonic generation number, starting at 1.
    pub generation: u64,
    /// FNV-1a 64 content hash of the blob bytes; also names the blob file
    /// (`blobs/<hash:016x>.blob`).
    pub hash: u64,
    /// Blob size in bytes.
    pub len: u64,
    /// CRC32 of the blob bytes.
    pub crc32: u32,
    /// Feature-schema fingerprint the contained model was bound to.
    pub fingerprint: u64,
    /// Artifact kind byte of the contained model (see
    /// [`drcshap_core::artifact::ModelKind`]).
    pub kind: u8,
}

impl Record {
    /// The registry-relative path of this record's blob.
    pub fn blob_path(&self) -> String {
        format!("blobs/{:016x}.blob", self.hash)
    }

    /// The registry-relative quarantine path for this record's blob.
    pub fn quarantine_path(&self) -> String {
        format!("quarantine/{:016x}.blob", self.hash)
    }
}

/// Encodes one record as a journal frame.
pub fn encode_frame(record: &Record) -> Vec<u8> {
    let payload = serde_json::to_vec(record).expect("journal record serializes");
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&drcshap_core::artifact::crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The result of scanning a journal byte string.
#[derive(Debug, Clone, PartialEq)]
pub struct Scan {
    /// Every committed record, in append order.
    pub records: Vec<Record>,
    /// Byte offset of the first invalid frame — the truncation point. If
    /// it equals the journal length, the journal is clean.
    pub valid_len: u64,
    /// Why the scan stopped early, if it did.
    pub torn: Option<String>,
}

/// Scans `bytes` front to back, accepting frames until the first invalid
/// one. Never fails: a damaged journal yields the committed prefix plus
/// the offset to truncate at.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut records: Vec<Record> = Vec::new();
    let mut offset = 0usize;
    let torn = loop {
        if offset == bytes.len() {
            break None;
        }
        let rest = &bytes[offset..];
        if rest.len() < FRAME_HEADER_LEN {
            break Some(format!("{}-byte partial frame header", rest.len()));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            break Some(format!("implausible frame length {len}"));
        }
        let end = FRAME_HEADER_LEN + len as usize;
        if rest.len() < end {
            break Some(format!(
                "torn frame: header declares {len} payload bytes, {} present",
                rest.len() - FRAME_HEADER_LEN
            ));
        }
        let payload = &rest[FRAME_HEADER_LEN..end];
        let computed = drcshap_core::artifact::crc32(payload);
        if computed != crc {
            break Some(format!(
                "frame CRC32 mismatch: stored {crc:#010x}, computed {computed:#010x}"
            ));
        }
        let record: Record = match serde_json::from_slice(payload) {
            Ok(record) => record,
            Err(e) => break Some(format!("frame payload unparseable: {e}")),
        };
        // Strictly increasing, but not necessarily contiguous: gc
        // compaction keeps only the newest records under their original
        // generation numbers.
        let floor = records.last().map_or(0, |r: &Record| r.generation);
        if record.generation <= floor {
            break Some(format!(
                "generation {} out of order (must exceed {floor})",
                record.generation
            ));
        }
        records.push(record);
        offset += end;
    };
    Scan { records, valid_len: offset as u64, torn }
}

/// Reads and scans the journal at `path`, treating a missing journal as
/// empty. I/O errors (other than not-found) propagate.
pub fn load(backend: &dyn StorageBackend, path: &str) -> std::io::Result<Scan> {
    match backend.read(path) {
        Ok(bytes) => Ok(scan(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok(Scan { records: Vec::new(), valid_len: 0, torn: None })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(generation: u64) -> Record {
        Record {
            generation,
            hash: 0x1234 + generation,
            len: 100,
            crc32: 0xdead_beef,
            fingerprint: 42,
            kind: 1,
        }
    }

    fn journal(n: u64) -> Vec<u8> {
        (1..=n).flat_map(|g| encode_frame(&record(g))).collect()
    }

    #[test]
    fn clean_journal_round_trips() {
        let scan = scan(&journal(3));
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.valid_len, journal(3).len() as u64);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records[2], record(3));
    }

    #[test]
    fn empty_journal_is_clean() {
        let scan = scan(&[]);
        assert!(scan.records.is_empty() && scan.torn.is_none() && scan.valid_len == 0);
    }

    #[test]
    fn every_truncation_of_the_tail_preserves_the_committed_prefix() {
        let two = journal(2).len();
        let three = journal(3);
        for cut in two + 1..three.len() {
            let scan = scan(&three[..cut]);
            assert_eq!(scan.records.len(), 2, "cut at {cut}");
            assert_eq!(scan.valid_len as usize, two, "cut at {cut}");
            assert!(scan.torn.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_in_the_tail_frame_is_caught() {
        let two = journal(2).len();
        let three = journal(3);
        for byte in two..three.len() {
            for bit in 0..8 {
                let mut bytes = three.clone();
                bytes[byte] ^= 1 << bit;
                let scan = scan(&bytes);
                assert!(
                    scan.records.len() == 2 && scan.torn.is_some(),
                    "flip at byte {byte} bit {bit} accepted: {:?}",
                    scan.torn
                );
                assert_eq!(scan.records[..2], super::scan(&three).records[..2]);
            }
        }
    }

    #[test]
    fn garbage_tail_is_rejected() {
        let mut bytes = journal(2);
        bytes.extend_from_slice(&[0xff; 23]);
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, journal(2).len() as u64);
        assert!(scan.torn.unwrap().contains("implausible"));
    }

    #[test]
    fn non_monotonic_generation_stops_the_scan() {
        let mut bytes = journal(2);
        bytes.extend_from_slice(&encode_frame(&record(2)));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert!(scan.torn.unwrap().contains("out of order"));
    }

    #[test]
    fn gapped_generations_are_accepted() {
        let mut bytes = encode_frame(&record(5));
        bytes.extend_from_slice(&encode_frame(&record(9)));
        let scan = scan(&bytes);
        assert_eq!(scan.records.len(), 2, "{:?}", scan.torn);
        assert!(scan.torn.is_none());
    }
}

#![warn(missing_docs)]
//! Lightweight workspace telemetry: RAII spans and relaxed-atomic counters,
//! exported as a JSON summary (per-span count/total/p50/p99) or as Chrome
//! trace-event format loadable in `chrome://tracing` / Perfetto.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disabled.** Telemetry is off by default. A
//!    disabled [`span`] or [`counter`] call is one relaxed atomic load —
//!    no allocation, no clock read, no thread-local initialisation. Hot
//!    loops (per-tree fits, router rounds, serve flushes) can stay
//!    instrumented unconditionally.
//! 2. **Rayon-safe.** Each thread records spans into its own buffer
//!    (registered once with the global [`TelemetryHub`]); counters are
//!    shared relaxed atomics, so increments from any number of workers
//!    merge trivially. Export merges the per-thread buffers and sorts
//!    deterministically, so two exports of the same run are byte-identical.
//! 3. **No dependencies beyond serde.** This crate sits below everything
//!    else in the workspace; `drcshap-core` re-exports it as
//!    `core::telemetry`.
//!
//! # Usage
//!
//! ```
//! drcshap_telemetry::enable();
//! {
//!     let _span = drcshap_telemetry::span("stage/route");
//!     drcshap_telemetry::counter("route/ripups", 3);
//! }
//! let summary = drcshap_telemetry::hub().summary();
//! assert_eq!(summary.counters["route/ripups"], 3);
//! let trace = drcshap_telemetry::hub().chrome_trace();
//! assert!(trace.contains("\"traceEvents\""));
//! # drcshap_telemetry::hub().reset();
//! # drcshap_telemetry::disable();
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use serde::Serialize;

/// Global on/off switch. Off by default; every recording call checks this
/// first and bails with a single relaxed load when telemetry is disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns telemetry on. Spans and counters recorded from this point on are
/// visible in [`TelemetryHub::summary`] / [`TelemetryHub::chrome_trace`].
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns telemetry off. Already-recorded data is kept (use
/// [`TelemetryHub::reset`] to drop it); in-flight span guards created while
/// enabled still record on drop.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether telemetry is currently enabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide time origin: all span timestamps are nanoseconds since
/// the first enabled span. Monotonic (`Instant`), never wall clock.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One finished span, as recorded by the thread that ran it.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: &'static str,
    detail: Option<String>,
    start_ns: u64,
    dur_ns: u64,
    depth: u32,
}

/// Per-thread span cap: a hot loop traced for minutes (the gateway chaos
/// soak records one span per request) must not grow memory and the trace
/// file without bound. Past the cap, spans are counted in
/// [`SpanSink::dropped`] instead of stored; counters are unaffected.
const SPAN_CAP: usize = 1 << 18;

/// Per-thread span buffer, registered once with the hub. The mutex is
/// uncontended in steady state (only export locks it from another thread).
struct SpanSink {
    tid: u64,
    spans: Mutex<Vec<SpanRecord>>,
    /// Spans discarded after this sink hit [`SPAN_CAP`].
    dropped: AtomicU64,
}

thread_local! {
    /// This thread's registered sink (lazily created on first recorded span).
    static SINK: RefCell<Option<Arc<SpanSink>>> = const { RefCell::new(None) };
    /// Nesting depth of live spans on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Cache of counter handles, so steady-state increments skip the hub's
    /// registry lock entirely.
    static COUNTERS: RefCell<HashMap<&'static str, &'static AtomicU64>> =
        RefCell::new(HashMap::new());
}

fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// The global registry of per-thread span sinks and named counters.
///
/// There is exactly one hub per process ([`hub`]); spans and counters from
/// every thread land here and are merged at export time.
pub struct TelemetryHub {
    sinks: Mutex<Vec<Arc<SpanSink>>>,
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    next_tid: AtomicU64,
}

/// The process-wide [`TelemetryHub`].
pub fn hub() -> &'static TelemetryHub {
    static HUB: OnceLock<TelemetryHub> = OnceLock::new();
    HUB.get_or_init(|| TelemetryHub {
        sinks: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        next_tid: AtomicU64::new(1),
    })
}

/// Returns this thread's sink, registering a fresh one with the hub on
/// first use.
fn local_sink() -> Arc<SpanSink> {
    SINK.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(sink) = slot.as_ref() {
            return Arc::clone(sink);
        }
        let h = hub();
        let sink = Arc::new(SpanSink {
            tid: h.next_tid.fetch_add(1, Ordering::Relaxed),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        lock_ignore_poison(&h.sinks).push(Arc::clone(&sink));
        *slot = Some(Arc::clone(&sink));
        sink
    })
}

/// RAII guard for one timed span: created by [`span`] / [`span_with`],
/// records `(name, start, duration, nesting depth)` into the calling
/// thread's buffer when dropped. Inert (and allocation-free) when telemetry
/// was disabled at creation.
#[must_use = "a span guard measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    name: &'static str,
    detail: Option<String>,
    /// `None` when telemetry was disabled at creation: drop is a no-op.
    start: Option<Instant>,
    start_ns: u64,
    depth: u32,
}

impl SpanGuard {
    fn inert(name: &'static str) -> Self {
        Self { name, detail: None, start: None, start_ns: 0, depth: 0 }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name: self.name,
            detail: self.detail.take(),
            start_ns: self.start_ns,
            dur_ns,
            depth: self.depth,
        };
        let sink = local_sink();
        let mut spans = lock_ignore_poison(&sink.spans);
        if spans.len() < SPAN_CAP {
            spans.push(record);
        } else {
            sink.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Opens a timed span; the returned guard records it when dropped.
///
/// `name` should be a stable `scope/what` identifier (`"stage/route"`,
/// `"rf/fit_tree"`): the summary aggregates by exact name. When telemetry
/// is disabled this is one atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::inert(name);
    }
    let origin = epoch();
    let now = Instant::now();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    SpanGuard {
        name,
        detail: None,
        start: Some(now),
        start_ns: now.duration_since(origin).as_nanos() as u64,
        depth,
    }
}

/// Like [`span`], with a lazily-built detail string (shown in the Chrome
/// trace's `args`). The closure only runs when telemetry is enabled, so
/// formatting costs nothing in the disabled path.
#[inline]
pub fn span_with(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::inert(name);
    }
    let mut guard = span(name);
    guard.detail = Some(detail());
    guard
}

/// Adds `delta` to the named counter. Counters are process-global relaxed
/// atomics, so concurrent increments from rayon workers merge exactly.
/// A `delta` of zero still registers the counter (useful to report "this
/// happened zero times" explicitly). Disabled: one atomic load, no effect.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    counter_handle(name).fetch_add(delta, Ordering::Relaxed);
}

fn counter_handle(name: &'static str) -> &'static AtomicU64 {
    COUNTERS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&handle) = cache.get(name) {
            return handle;
        }
        let mut registry = lock_ignore_poison(&hub().counters);
        let handle: &'static AtomicU64 =
            registry.entry(name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
        cache.insert(name, handle);
        handle
    })
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Serialize)]
pub struct SpanStats {
    /// Number of recorded spans with this name.
    pub count: u64,
    /// Total time across all occurrences, milliseconds.
    pub total_ms: f64,
    /// Mean duration, microseconds.
    pub mean_us: f64,
    /// Median duration, microseconds.
    pub p50_us: f64,
    /// 99th-percentile duration (nearest-rank), microseconds.
    pub p99_us: f64,
}

/// The JSON summary: per-span aggregate stats plus final counter values,
/// both keyed by name in sorted order.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySummary {
    /// Aggregates per span name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Final value per counter name.
    pub counters: BTreeMap<String, u64>,
    /// Spans discarded after a thread's buffer hit its cap (the stats
    /// above cover only the retained prefix of such threads).
    pub dropped_spans: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice (`q` in `[0, 1]`).
fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64
}

impl TelemetryHub {
    /// Merges every thread's buffer into one deterministically-ordered list:
    /// by start time, then thread id, then depth (parents before children at
    /// equal timestamps), then name.
    fn collect(&self) -> Vec<(u64, SpanRecord)> {
        let sinks = lock_ignore_poison(&self.sinks);
        let mut merged: Vec<(u64, SpanRecord)> = Vec::new();
        for sink in sinks.iter() {
            let spans = lock_ignore_poison(&sink.spans);
            merged.extend(spans.iter().map(|r| (sink.tid, r.clone())));
        }
        merged.sort_by(|(ta, a), (tb, b)| {
            (a.start_ns, *ta, a.depth, a.name).cmp(&(b.start_ns, *tb, b.depth, b.name))
        });
        merged
    }

    /// Total spans discarded across all threads after their buffers hit
    /// the per-thread cap.
    pub fn dropped_spans(&self) -> u64 {
        lock_ignore_poison(&self.sinks)
            .iter()
            .map(|sink| sink.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Builds the JSON-ready summary: per-span count/total/mean/p50/p99 and
    /// final counter values.
    pub fn summary(&self) -> TelemetrySummary {
        let mut durations: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
        for (_, record) in self.collect() {
            durations.entry(record.name).or_default().push(record.dur_ns);
        }
        let spans = durations
            .into_iter()
            .map(|(name, mut ns)| {
                ns.sort_unstable();
                let total: u64 = ns.iter().sum();
                let stats = SpanStats {
                    count: ns.len() as u64,
                    total_ms: total as f64 / 1e6,
                    mean_us: total as f64 / 1e3 / ns.len() as f64,
                    p50_us: percentile(&ns, 0.50) / 1e3,
                    p99_us: percentile(&ns, 0.99) / 1e3,
                };
                (name.to_string(), stats)
            })
            .collect();
        let counters = lock_ignore_poison(&self.counters)
            .iter()
            .map(|(&name, value)| (name.to_string(), value.load(Ordering::Relaxed)))
            .collect();
        TelemetrySummary { spans, counters, dropped_spans: self.dropped_spans() }
    }

    /// Renders every recorded span (and final counter values) in Chrome
    /// trace-event format: open the result in `chrome://tracing` or
    /// <https://ui.perfetto.dev>. Timestamps are microseconds since the
    /// telemetry epoch; output is deterministic for a given set of records.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<serde_json::Value> = Vec::new();
        let mut last_ts_us = 0.0f64;
        for (tid, record) in self.collect() {
            let ts_us = record.start_ns as f64 / 1e3;
            let dur_us = record.dur_ns as f64 / 1e3;
            last_ts_us = last_ts_us.max(ts_us + dur_us);
            let mut args = serde_json::json!({ "depth": record.depth });
            if let Some(detail) = &record.detail {
                args["detail"] = serde_json::Value::from(detail.clone());
            }
            events.push(serde_json::json!({
                "name": record.name,
                "cat": "drcshap",
                "ph": "X",
                "ts": ts_us,
                "dur": dur_us,
                "pid": 1,
                "tid": tid,
                "args": args,
            }));
        }
        for (&name, value) in lock_ignore_poison(&self.counters).iter() {
            events.push(serde_json::json!({
                "name": name,
                "cat": "drcshap",
                "ph": "C",
                "ts": last_ts_us,
                "pid": 1,
                "tid": 0,
                "args": { "value": value.load(Ordering::Relaxed) },
            }));
        }
        // Make a truncated trace say so, in the trace itself.
        let dropped = self.dropped_spans();
        if dropped > 0 {
            events.push(serde_json::json!({
                "name": "telemetry/spans_dropped",
                "cat": "drcshap",
                "ph": "C",
                "ts": last_ts_us,
                "pid": 1,
                "tid": 0,
                "args": { "value": dropped },
            }));
        }
        let trace = serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
        });
        serde_json::to_string_pretty(&trace).expect("trace serializes")
    }

    /// Drops all recorded spans and zeroes all counters. Registered sinks
    /// and counter identities survive (threads keep their cached handles);
    /// only the data is cleared. Intended for tests and between-phase resets.
    pub fn reset(&self) {
        for sink in lock_ignore_poison(&self.sinks).iter() {
            lock_ignore_poison(&sink.spans).clear();
            sink.dropped.store(0, Ordering::Relaxed);
        }
        for value in lock_ignore_poison(&self.counters).values() {
            value.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    /// Telemetry state is process-global; tests that record must not
    /// interleave. (`cargo test` runs them on multiple threads.)
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        hub().reset();
        enable();
        guard
    }

    fn teardown() {
        disable();
        hub().reset();
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        let _guard = exclusive();
        {
            let _outer = span("test/outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test/inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let records = hub().collect();
        let outer = records.iter().find(|(_, r)| r.name == "test/outer").unwrap();
        let inner = records.iter().find(|(_, r)| r.name == "test/inner").unwrap();
        assert_eq!(outer.1.depth, 0);
        assert_eq!(inner.1.depth, 1);
        // The inner span lies inside the outer span's interval.
        assert!(inner.1.start_ns >= outer.1.start_ns);
        assert!(
            inner.1.start_ns + inner.1.dur_ns <= outer.1.start_ns + outer.1.dur_ns,
            "inner must end before outer"
        );
        assert!(outer.1.dur_ns > inner.1.dur_ns);
        teardown();
    }

    #[test]
    fn summary_aggregates_counts_and_percentiles() {
        let _guard = exclusive();
        for _ in 0..10 {
            let _s = span("test/repeat");
        }
        let summary = hub().summary();
        let stats = &summary.spans["test/repeat"];
        assert_eq!(stats.count, 10);
        assert!(stats.total_ms >= 0.0);
        assert!(stats.p50_us <= stats.p99_us, "{stats:?}");
        assert!(stats.mean_us * 10.0 <= stats.total_ms * 1000.0 + 1e-6);
        teardown();
    }

    #[test]
    fn counters_merge_across_rayon_workers() {
        let _guard = exclusive();
        (0..1000u64).into_par_iter().for_each(|i| {
            counter("test/par_events", 1);
            if i % 2 == 0 {
                let _s = span("test/par_span");
            }
        });
        let summary = hub().summary();
        assert_eq!(summary.counters["test/par_events"], 1000);
        assert_eq!(summary.spans["test/par_span"].count, 500);
        teardown();
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = exclusive();
        disable();
        {
            let _s = span("test/should_not_appear");
            counter("test/should_not_count", 5);
        }
        let summary = hub().summary();
        assert!(!summary.spans.contains_key("test/should_not_appear"));
        assert!(!summary.counters.contains_key("test/should_not_count"));
        teardown();
    }

    #[test]
    fn chrome_trace_is_valid_json_and_deterministic() {
        let _guard = exclusive();
        (0..8u64).into_par_iter().for_each(|_| {
            let _s = span_with("test/traced", || "worker".to_string());
            counter("test/traced_count", 1);
        });
        let a = hub().chrome_trace();
        let b = hub().chrome_trace();
        assert_eq!(a, b, "export must be deterministic for fixed records");
        let parsed: serde_json::Value = serde_json::from_str(&a).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(events.len() >= 9, "8 spans + 1 counter, got {}", events.len());
        for e in events {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e}");
            }
        }
        assert!(events.iter().any(|e| e["ph"] == "C"), "counter event present");
        teardown();
    }

    #[test]
    fn reset_clears_spans_and_zeroes_counters() {
        let _guard = exclusive();
        {
            let _s = span("test/reset_me");
        }
        counter("test/reset_count", 7);
        hub().reset();
        let summary = hub().summary();
        assert!(summary.spans.is_empty() || !summary.spans.contains_key("test/reset_me"));
        assert_eq!(summary.counters.get("test/reset_count"), Some(&0));
        teardown();
    }

    #[test]
    fn span_with_skips_detail_closure_when_disabled() {
        let _guard = exclusive();
        disable();
        let _s = span_with("test/lazy", || unreachable!("detail built while disabled"));
        teardown();
    }

    #[test]
    fn span_buffer_is_capped_and_drops_are_reported() {
        let _guard = exclusive();
        for _ in 0..SPAN_CAP + 100 {
            let _s = span("test/capped");
        }
        let summary = hub().summary();
        assert_eq!(summary.spans["test/capped"].count as usize, SPAN_CAP);
        assert_eq!(summary.dropped_spans, 100);
        // The trace itself says it was truncated.
        let trace = hub().chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        let drop_event = events
            .iter()
            .find(|e| e["name"] == "telemetry/spans_dropped")
            .expect("truncated trace must carry a spans_dropped counter");
        assert_eq!(drop_event["args"]["value"], 100);
        // reset() rearms the buffer and zeroes the drop count.
        hub().reset();
        assert_eq!(hub().summary().dropped_spans, 0);
        teardown();
    }
}

//! Disabled telemetry must be allocation-free: hot loops across the
//! workspace (per-tree fits, router rounds, serve flushes) call `span` /
//! `counter` unconditionally, so the disabled path has to be nothing but a
//! relaxed load. A counting global allocator makes that a hard assertion
//! rather than a code-review promise.
//!
//! This lives in its own integration-test binary so the allocator override
//! cannot interfere with the unit tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_spans_and_counters_do_not_allocate() {
    drcshap_telemetry::disable();
    assert!(!drcshap_telemetry::is_enabled());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        let _span = drcshap_telemetry::span("alloc_test/span");
        let _nested = drcshap_telemetry::span_with("alloc_test/detail", || {
            unreachable!("detail closure must not run while disabled")
        });
        drcshap_telemetry::counter("alloc_test/count", i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated {} times in 10k span/counter calls",
        after - before
    );
}

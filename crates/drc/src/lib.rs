#![warn(missing_docs)]
//! DRC label oracle for the `drcshap` workspace.
//!
//! The reproduced paper obtains ground-truth labels by detail-routing each
//! design with Olympus-SoC and collecting the DRC error bounding boxes; a
//! g-cell is a *DRC hotspot* iff it overlaps any error box. Detailed routing
//! of the ISPD-2015 designs is not reproducible here (closed tool, closed
//! results), so this crate implements the closest synthetic equivalent: a
//! **stochastic DRC oracle** whose violation intensity is an explicit
//! function of the true local causes the paper's analysis names — global
//! routing edge overflow, via congestion, pin density, macro proximity,
//! partial blockage (see [`DrcConfig`] for the weights).
//!
//! Because the causal structure is explicit, the oracle double-duties as a
//! validation instrument: SHAP explanations of a trained model can be checked
//! against the *injected* causes of each violation, strengthening the paper's
//! qualitative Fig. 3/4 validation into an assertable one.
//!
//! # Example
//!
//! ```
//! use drcshap_netlist::{suite, synth, Design};
//! use drcshap_place::place;
//! use drcshap_route::{route_design, RouteConfig};
//! use drcshap_drc::{run_drc, DrcConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let spec = suite::spec("fft_1").unwrap().scaled(0.25);
//! let mut design = Design::new(spec);
//! let mut rng = ChaCha8Rng::seed_from_u64(design.spec.seed());
//! synth::generate_cells(&mut design, &mut rng);
//! place(&mut design, &mut rng);
//! synth::generate_nets(&mut design, &mut rng);
//! let route = route_design(&design, &RouteConfig::default(), &mut rng);
//! let report = run_drc(&design, &route, &DrcConfig::default(), &mut rng);
//! assert_eq!(report.labels.len(), design.grid.num_cells());
//! ```

mod oracle;
mod report;
mod violation;

pub use oracle::{run_drc, DrcConfig};
pub use report::DrcReport;
pub use violation::{Violation, ViolationKind};

//! DRC violation records: kind, layer and bounding box — the shape of the
//! data a sign-off DRC run reports (and what the paper's Fig. 3 overlays).

use drcshap_geom::Rect;
use drcshap_route::MetalLayer;
use serde::{Deserialize, Serialize};

/// The violation categories seen in the paper's examples (§IV-B lists
/// shorts, end-of-line spacing errors and different-net spacing errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two nets short together.
    Short,
    /// End-of-line spacing violation (typically via-crowding induced).
    EolSpacing,
    /// Different-net spacing violation.
    DiffNetSpacing,
}

impl ViolationKind {
    /// Human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            ViolationKind::Short => "short",
            ViolationKind::EolSpacing => "end-of-line space",
            ViolationKind::DiffNetSpacing => "different-net space",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One DRC violation: its kind, the metal layer it occurs on, and the
/// bounding box the checker reports. G-cells overlapping `bbox` are hotspots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Violation category.
    pub kind: ViolationKind,
    /// Metal layer of the violation.
    pub layer: MetalLayer,
    /// Reported bounding box in DBU.
    pub bbox: Rect,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {} at {}", self.kind, self.layer, self.bbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reads_like_a_drc_report_line() {
        let v = Violation {
            kind: ViolationKind::EolSpacing,
            layer: MetalLayer::M3,
            bbox: Rect::new(0, 0, 100, 100),
        };
        let s = v.to_string();
        assert!(s.contains("end-of-line space"));
        assert!(s.contains("M3"));
    }

    #[test]
    fn kinds_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            [ViolationKind::Short, ViolationKind::EolSpacing, ViolationKind::DiffNetSpacing]
                .iter()
                .map(|k| k.name())
                .collect();
        assert_eq!(names.len(), 3);
    }
}

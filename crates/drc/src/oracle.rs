//! The stochastic DRC oracle: detailed routing + sign-off DRC condensed into
//! an explicit risk model over global-routing-stage causes.

use drcshap_geom::{GcellId, Point, Rect};
use drcshap_netlist::Design;
use drcshap_route::{MetalLayer, RouteOutcome, ViaLayer, ALL_METALS, ALL_VIAS};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::report::DrcReport;
use crate::violation::{Violation, ViolationKind};

/// Oracle weights and sampling parameters.
///
/// The risk intensity of a g-cell is a weighted sum of its true local
/// causes; violations are then sampled proportionally to `risk^gamma` with
/// multiplicative log-normal noise, plus a small fraction of "surprise"
/// violations in unremarkable cells — detailed routing is not a
/// deterministic function of the global-routing state, and neither is the
/// oracle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrcConfig {
    /// Weight of summed edge overflow (tracks over capacity) around a cell.
    pub edge_overflow_weight: f64,
    /// Weight of near-capacity edge utilization pressure.
    pub edge_pressure_weight: f64,
    /// Weight of via overflow inside the cell.
    pub via_overflow_weight: f64,
    /// Weight of near-capacity via utilization pressure.
    pub via_pressure_weight: f64,
    /// Weight of normalized pin density.
    pub pin_density_weight: f64,
    /// Weight of adjacency to a macro boundary.
    pub macro_adjacency_weight: f64,
    /// Weight of partial blockage coverage.
    pub partial_blockage_weight: f64,
    /// Sigma of the multiplicative log-normal risk noise.
    pub noise_sigma: f64,
    /// Fraction of violation sites drawn uniformly (surprises).
    pub surprise_fraction: f64,
    /// Exponent applied to risk when sampling violation sites.
    pub sampling_gamma: f64,
    /// Violation sites per calibrated target hotspot.
    pub site_multiplier: f64,
}

impl Default for DrcConfig {
    fn default() -> Self {
        Self {
            edge_overflow_weight: 1.0,
            edge_pressure_weight: 0.3,
            via_overflow_weight: 0.8,
            via_pressure_weight: 0.25,
            pin_density_weight: 0.3,
            macro_adjacency_weight: 0.5,
            partial_blockage_weight: 0.3,
            noise_sigma: 0.2,
            surprise_fraction: 0.03,
            sampling_gamma: 4.0,
            site_multiplier: 0.8,
        }
    }
}

/// Per-cell cause decomposition (used to pick violation layer and kind, and
/// exposed to tests through [`run_drc`]'s risk field).
#[derive(Debug, Clone, Default)]
struct CellCauses {
    edge_overflow: [f64; 5],
    edge_pressure: [f64; 5],
    via_overflow: [f64; 4],
    via_pressure: [f64; 4],
    pin_density: f64,
    macro_adjacent: f64,
    partial_blockage: f64,
}

impl CellCauses {
    fn risk(&self, c: &DrcConfig) -> f64 {
        let edge: f64 = self.edge_overflow.iter().sum::<f64>() * c.edge_overflow_weight
            + self.edge_pressure.iter().sum::<f64>() * c.edge_pressure_weight;
        let via: f64 = self.via_overflow.iter().sum::<f64>() * c.via_overflow_weight
            + self.via_pressure.iter().sum::<f64>() * c.via_pressure_weight;
        edge + via
            + self.pin_density * c.pin_density_weight
            + self.macro_adjacent * c.macro_adjacency_weight
            + self.partial_blockage * c.partial_blockage_weight
    }

    /// Dominant metal layer by edge cause score.
    fn dominant_metal(&self) -> (MetalLayer, f64) {
        let mut best = (MetalLayer::M3, f64::MIN);
        for m in ALL_METALS {
            let s = self.edge_overflow[m.index()] + 0.5 * self.edge_pressure[m.index()];
            if s > best.1 {
                best = (m, s);
            }
        }
        best
    }

    /// Dominant via layer by via cause score.
    fn dominant_via(&self) -> (ViaLayer, f64) {
        let mut best = (ViaLayer::V2, f64::MIN);
        for v in ALL_VIAS {
            let s = self.via_overflow[v.index()] + 0.5 * self.via_pressure[v.index()];
            if s > best.1 {
                best = (v, s);
            }
        }
        best
    }
}

/// Runs the DRC oracle over a routed design.
///
/// The number of violation sites is calibrated to the design spec's scaled
/// Table I hotspot count; *which* cells get them follows the risk field.
/// Deterministic for a given `rng` state.
pub fn run_drc<R: Rng>(
    design: &Design,
    route: &RouteOutcome,
    config: &DrcConfig,
    rng: &mut R,
) -> DrcReport {
    let grid = &design.grid;
    let n = grid.num_cells();
    let causes = compute_causes(design, route);
    let risk: Vec<f64> =
        causes.iter().map(|c| c.risk(config) * log_normal(config.noise_sigma, rng)).collect();

    let target = design.spec.target_hotspots();
    if target == 0 {
        return DrcReport::from_violations(grid, Vec::new(), risk);
    }
    let num_sites = ((target as f64) * config.site_multiplier).round().max(1.0) as usize;
    let num_surprise = ((num_sites as f64) * config.surprise_fraction).ceil() as usize;
    let num_risky = num_sites.saturating_sub(num_surprise);

    // Weighted sampling without replacement (exponential-key trick).
    let mut keyed: Vec<(f64, usize)> = risk
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let w = (r.max(0.0) + 1e-9).powf(config.sampling_gamma);
            let u: f64 = rng.gen_range(1e-12..1.0);
            (-u.ln() / w, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut sites: Vec<usize> = keyed.iter().take(num_risky).map(|&(_, i)| i).collect();
    for _ in 0..num_surprise {
        sites.push(rng.gen_range(0..n));
    }

    let mean_site_risk = {
        let s: f64 = sites.iter().map(|&i| risk[i]).sum();
        (s / sites.len().max(1) as f64).max(1e-9)
    };

    let mut violations = Vec::new();
    for &site in &sites {
        let g = grid.cell_at_index(site);
        let r_norm = risk[site] / mean_site_risk;
        let extra = ((r_norm * rng.gen_range(0.5..1.5)) as usize).min(20);
        for _ in 0..1 + extra {
            violations.push(sample_violation(grid, g, &causes[site], rng));
        }
    }
    DrcReport::from_violations(grid, violations, risk)
}

/// A log-normal multiplier `exp(sigma · z)`, `z ~ N(0, 1)` via Box–Muller.
fn log_normal<R: Rng>(sigma: f64, rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

/// Computes the per-cell cause decomposition from the routed state.
fn compute_causes(design: &Design, route: &RouteOutcome) -> Vec<CellCauses> {
    let grid = &design.grid;
    let n = grid.num_cells();
    let map = &route.congestion;
    let mut causes = vec![CellCauses::default(); n];

    // Pin counts.
    let mut pins = vec![0u32; n];
    for (pid, _) in design.netlist.pins() {
        if let Some(pos) = design.pin_position(pid) {
            if let Some(g) = grid.cell_containing(pos) {
                pins[grid.index_of(g)] += 1;
            }
        }
    }
    let mean_pins = {
        let nz: Vec<u32> = pins.iter().copied().filter(|&p| p > 0).collect();
        if nz.is_empty() {
            1.0
        } else {
            nz.iter().sum::<u32>() as f64 / nz.len() as f64
        }
    };

    // Blockage fractions.
    let blockages: Vec<Rect> = design.blockages().collect();
    let block_frac: Vec<f64> = grid
        .iter()
        .map(|g| {
            let rect = grid.cell_rect(g);
            let covered: i64 = blockages.iter().map(|b| b.overlap_area(&rect)).sum();
            (covered as f64 / rect.area() as f64).min(1.0)
        })
        .collect();

    for g in grid.iter() {
        let i = grid.index_of(g);
        let c = &mut causes[i];
        for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            let Some(nb) = grid.neighbor(g, dx, dy) else { continue };
            for m in ALL_METALS {
                let cap = map.edge_capacity(m, g, nb);
                if cap <= 0.0 {
                    continue;
                }
                let load = map.edge_load(m, g, nb);
                c.edge_overflow[m.index()] += (load - cap).max(0.0);
                c.edge_pressure[m.index()] += (load / cap - 0.9).max(0.0) * 4.0;
            }
        }
        for v in ALL_VIAS {
            let cap = map.via_capacity(v, g);
            if cap <= 0.0 {
                continue;
            }
            let load = map.via_load(v, g);
            c.via_overflow[v.index()] += (load - cap).max(0.0);
            c.via_pressure[v.index()] += (load / cap - 0.85).max(0.0) * 4.0;
        }
        // Only above-average pin crowding raises risk.
        c.pin_density = (pins[i] as f64 / mean_pins - 1.0).max(0.0);
        c.partial_blockage = if block_frac[i] > 0.0 && block_frac[i] < 0.95 { 1.0 } else { 0.0 };
        // Macro adjacency: a largely-free cell next to a largely-blocked one.
        if block_frac[i] < 0.5 {
            let adjacent_block = (-1..=1).any(|dy| {
                (-1..=1).any(|dx| {
                    grid.neighbor(g, dx, dy)
                        .map(|nb| block_frac[grid.index_of(nb)] > 0.5)
                        .unwrap_or(false)
                })
            });
            if adjacent_block {
                c.macro_adjacent = 1.0;
            }
        }
    }
    causes
}

/// Samples one violation in cell `g`, with layer/kind following the cell's
/// dominant cause (so explanations can be validated against injection).
fn sample_violation<R: Rng>(
    grid: &drcshap_geom::GcellGrid,
    g: GcellId,
    causes: &CellCauses,
    rng: &mut R,
) -> Violation {
    let rect = grid.cell_rect(g);
    let size = grid.gcell_size() as f64;

    let (metal, metal_score) = causes.dominant_metal();
    let (via, via_score) = causes.dominant_via();
    let pin_score = causes.pin_density * 0.5;

    let (kind, layer) = if via_score > metal_score && via_score > pin_score {
        // Via crowding produces spacing errors on an adjacent metal
        // (the paper's hotspot (b): dense V2/V3 vias cause EOLs in M3).
        let layer = if rng.gen_bool(0.5) { via.lower_metal() } else { via.upper_metal() };
        (ViolationKind::EolSpacing, layer)
    } else if pin_score > metal_score {
        // Pin crowding shows up as low-metal spacing violations.
        let layer = if rng.gen_bool(0.5) { MetalLayer::M1 } else { MetalLayer::M2 };
        (ViolationKind::DiffNetSpacing, layer)
    } else {
        (ViolationKind::Short, metal)
    };

    // Box size: mostly sub-cell and interior, occasionally elongated so it
    // deliberately spans into a neighbouring g-cell.
    let elongated = rng.gen_bool(0.15);
    let (w, h) = if elongated {
        (size * rng.gen_range(1.1..1.8), size * rng.gen_range(0.1..0.3))
    } else {
        (size * rng.gen_range(0.1..0.5), size * rng.gen_range(0.1..0.5))
    };
    let (cx, cy) = if elongated {
        (rng.gen_range(rect.lo.x..rect.hi.x) as f64, rng.gen_range(rect.lo.y..rect.hi.y) as f64)
    } else {
        // Keep small boxes inside the cell.
        let mx = (rect.width() as f64 * 0.3) as i64;
        let my = (rect.height() as f64 * 0.3) as i64;
        (
            rng.gen_range(rect.lo.x + mx..rect.hi.x - mx) as f64,
            rng.gen_range(rect.lo.y + my..rect.hi.y - my) as f64,
        )
    };
    let bbox = Rect::new(
        (cx - w / 2.0) as i64,
        (cy - h / 2.0) as i64,
        (cx + w / 2.0) as i64 + 1,
        (cy + h / 2.0) as i64 + 1,
    );
    let _ = Point::new(0, 0); // geometry types fully imported
    Violation { kind, layer, bbox }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_netlist::{suite, synth, Design};
    use drcshap_place::place;
    use drcshap_route::{route_design, RouteConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pipeline(name: &str, scale: f64) -> (Design, RouteOutcome, DrcReport) {
        let spec = suite::spec(name).unwrap().scaled(scale);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let stress = d.spec.stress();
        let cfg = RouteConfig::default().derated(1.0 - 0.4 * (stress - 0.25));
        let route = route_design(&d, &cfg, &mut rng);
        let report = run_drc(&d, &route, &DrcConfig::default(), &mut rng);
        (d, route, report)
    }

    #[test]
    fn clean_design_gets_no_violations() {
        let (_, _, report) = pipeline("des_perf_b", 0.2);
        assert!(report.violations.is_empty());
        assert_eq!(report.num_hotspots(), 0);
    }

    #[test]
    fn hotspot_count_tracks_target() {
        let (d, _, report) = pipeline("des_perf_1", 0.4);
        let target = d.spec.target_hotspots();
        let got = report.num_hotspots();
        assert!(got > 0, "no hotspots produced");
        // Within a factor of ~2.5 of the calibrated target.
        assert!(
            (got as f64) > target as f64 / 2.5 && (got as f64) < target as f64 * 2.5,
            "hotspots {got} vs target {target}"
        );
    }

    #[test]
    fn hotspots_concentrate_in_high_risk_cells() {
        // Lift test: the hotspot rate inside the top risk decile must be at
        // least 2.5x the overall rate.
        let (d, _, report) = pipeline("des_perf_1", 0.4);
        let n = d.grid.num_cells();
        let mut by_risk: Vec<usize> = (0..n).collect();
        by_risk.sort_by(|&a, &b| report.risk[b].total_cmp(&report.risk[a]));
        let decile = n / 10;
        let hot_in_top = by_risk[..decile].iter().filter(|&&i| report.labels[i]).count();
        let top_rate = hot_in_top as f64 / decile as f64;
        let base_rate = report.num_hotspots() as f64 / n as f64;
        assert!(
            top_rate > 2.5 * base_rate,
            "no concentration: top-decile rate {top_rate:.3} vs base {base_rate:.3}"
        );
    }

    #[test]
    fn violation_layers_follow_dominant_causes() {
        let (d, route, report) = pipeline("des_perf_1", 0.4);
        let causes = compute_causes(&d, &route);
        // For hotspot cells whose dominant metal-edge cause is strong,
        // shorts should sit on that layer most of the time.
        let mut matches = 0usize;
        let mut total = 0usize;
        for v in &report.violations {
            if v.kind != ViolationKind::Short {
                continue;
            }
            let center = v.bbox.center();
            let Some(g) = d.grid.cell_containing(center) else { continue };
            let c = &causes[d.grid.index_of(g)];
            let (dominant, score) = c.dominant_metal();
            if score <= 0.0 {
                continue;
            }
            total += 1;
            if dominant == v.layer {
                matches += 1;
            }
        }
        if total >= 10 {
            assert!(
                matches as f64 > 0.5 * total as f64,
                "only {matches}/{total} shorts on their dominant layer"
            );
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let (_, _, a) = pipeline("fft_2", 0.3);
        let (_, _, b) = pipeline("fft_2", 0.3);
        assert_eq!(a.violations.len(), b.violations.len());
        assert_eq!(a.num_hotspots(), b.num_hotspots());
    }

    #[test]
    fn violation_boxes_overlap_the_die() {
        let (d, _, report) = pipeline("des_perf_1", 0.35);
        assert!(!report.violations.is_empty());
        for v in &report.violations {
            assert!(v.bbox.overlaps(&d.die), "violation {v} entirely off-die {}", d.die);
            assert!(v.bbox.area() > 0, "degenerate violation box");
        }
    }

    #[test]
    fn risk_field_covers_grid() {
        let (d, _, report) = pipeline("fft_1", 0.3);
        assert_eq!(report.risk.len(), d.grid.num_cells());
        assert!(report.risk.iter().all(|r| r.is_finite() && *r >= 0.0));
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use drcshap_netlist::{suite, synth, Design};
    use drcshap_place::place;
    use drcshap_route::{route_design, RouteConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    #[ignore]
    fn print_risk_stats() {
        let spec = suite::spec("des_perf_1").unwrap().scaled(0.4);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        place(&mut d, &mut rng);
        synth::generate_nets(&mut d, &mut rng);
        let stress = d.spec.stress();
        let cfg = RouteConfig::default().derated(1.0 - 0.4 * (stress - 0.25));
        let route = route_design(&d, &cfg, &mut rng);
        println!(
            "edge_overflow={} overflowed_edges={} via_overflow={}",
            route.edge_overflow, route.overflowed_edges, route.via_overflow
        );
        let causes = compute_causes(&d, &route);
        let risks: Vec<f64> = causes.iter().map(|c| c.risk(&DrcConfig::default())).collect();
        let mut sorted = risks.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        println!(
            "n={} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            n,
            sorted[0],
            sorted[n / 2],
            sorted[n * 9 / 10],
            sorted[n * 99 / 100],
            sorted[n - 1]
        );
    }
}

//! The DRC report: violations, per-g-cell hotspot labels, and the oracle's
//! internal risk field (exposed for validation and diagnostics).

use drcshap_geom::{GcellGrid, GcellId};
use serde::{Deserialize, Serialize};

use crate::violation::Violation;

/// Result of a DRC oracle run over one design.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrcReport {
    /// All violation boxes, as a sign-off DRC run would report them.
    pub violations: Vec<Violation>,
    /// Per-g-cell hotspot label, row-major: `true` iff the g-cell overlaps
    /// at least one violation bounding box (the paper's label definition).
    pub labels: Vec<bool>,
    /// The oracle's per-g-cell risk intensity (diagnostic; *not* available
    /// to models, which see only the extracted features).
    pub risk: Vec<f64>,
}

impl DrcReport {
    /// Builds a report from violations by rasterizing their boxes onto
    /// `grid` (hotspot = positive-area overlap).
    pub fn from_violations(grid: &GcellGrid, violations: Vec<Violation>, risk: Vec<f64>) -> Self {
        let mut labels = vec![false; grid.num_cells()];
        for v in &violations {
            for g in grid.cells_overlapping(&v.bbox) {
                labels[grid.index_of(g)] = true;
            }
        }
        Self { violations, labels, risk }
    }

    /// Whether g-cell `g` (by grid index) is a hotspot.
    pub fn is_hotspot(&self, index: usize) -> bool {
        self.labels[index]
    }

    /// Number of hotspot g-cells.
    pub fn num_hotspots(&self) -> usize {
        self.labels.iter().filter(|&&b| b).count()
    }

    /// The violations whose bounding box overlaps g-cell `g` of `grid`.
    pub fn violations_in(&self, grid: &GcellGrid, g: GcellId) -> Vec<&Violation> {
        let rect = grid.cell_rect(g);
        self.violations.iter().filter(|v| v.bbox.overlaps(&rect)).collect()
    }

    /// Violation counts per (kind, metal layer), sorted descending — the
    /// summary a sign-off report leads with.
    pub fn kind_layer_histogram(
        &self,
    ) -> Vec<(crate::ViolationKind, drcshap_route::MetalLayer, usize)> {
        let mut counts: std::collections::HashMap<_, usize> = Default::default();
        for v in &self.violations {
            *counts.entry((v.kind, v.layer)).or_default() += 1;
        }
        let mut out: Vec<_> = counts.into_iter().map(|((k, l), c)| (k, l, c)).collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.1.cmp(&b.1)));
        out
    }

    /// Renders the histogram as a small report table.
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "{} violations across {} hotspot g-cells\n",
            self.violations.len(),
            self.num_hotspots()
        );
        for (kind, layer, count) in self.kind_layer_histogram() {
            out.push_str(&format!("  {count:>6}  {kind} in {layer}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::ViolationKind;
    use drcshap_geom::Rect;
    use drcshap_route::MetalLayer;

    fn grid() -> GcellGrid {
        GcellGrid::with_dims(Rect::from_microns(0.0, 0.0, 100.0, 100.0), 10, 10)
    }

    #[test]
    fn labels_follow_bbox_overlap() {
        let g = grid();
        // A box spanning two cells horizontally.
        let v = Violation {
            kind: ViolationKind::Short,
            layer: MetalLayer::M3,
            bbox: Rect::from_microns(9.0, 1.0, 11.0, 2.0),
        };
        let report = DrcReport::from_violations(&g, vec![v], vec![0.0; 100]);
        assert_eq!(report.num_hotspots(), 2);
        assert!(report.is_hotspot(0));
        assert!(report.is_hotspot(1));
        assert!(!report.is_hotspot(2));
    }

    #[test]
    fn violations_in_returns_overlapping_boxes() {
        let g = grid();
        let inside = Violation {
            kind: ViolationKind::EolSpacing,
            layer: MetalLayer::M2,
            bbox: Rect::from_microns(55.0, 55.0, 56.0, 56.0),
        };
        let elsewhere = Violation {
            kind: ViolationKind::Short,
            layer: MetalLayer::M4,
            bbox: Rect::from_microns(5.0, 5.0, 6.0, 6.0),
        };
        let report = DrcReport::from_violations(&g, vec![inside, elsewhere], vec![0.0; 100]);
        let hits = report.violations_in(&g, GcellId::new(5, 5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].kind, ViolationKind::EolSpacing);
    }

    #[test]
    fn empty_report_has_no_hotspots() {
        let g = grid();
        let report = DrcReport::from_violations(&g, vec![], vec![0.0; 100]);
        assert_eq!(report.num_hotspots(), 0);
        assert!(report.kind_layer_histogram().is_empty());
    }

    #[test]
    fn histogram_counts_and_sorts() {
        let g = grid();
        let mk =
            |kind, layer| Violation { kind, layer, bbox: Rect::from_microns(1.0, 1.0, 2.0, 2.0) };
        let report = DrcReport::from_violations(
            &g,
            vec![
                mk(ViolationKind::Short, MetalLayer::M3),
                mk(ViolationKind::Short, MetalLayer::M3),
                mk(ViolationKind::EolSpacing, MetalLayer::M2),
            ],
            vec![0.0; 100],
        );
        let hist = report.kind_layer_histogram();
        assert_eq!(hist[0], (ViolationKind::Short, MetalLayer::M3, 2));
        assert_eq!(hist[1], (ViolationKind::EolSpacing, MetalLayer::M2, 1));
        let s = report.render_summary();
        assert!(s.contains("3 violations"));
        assert!(s.contains("short in M3"));
    }
}

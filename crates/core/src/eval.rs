//! The Table II evaluation protocol (paper §II, §IV-A):
//!
//! 1. For each of the five design groups, hold the group out entirely.
//! 2. Grid-search each model family on the remaining four groups with
//!    grouped 4-pass cross-validation, selecting by AUPRC.
//! 3. Retrain the winner on all four training groups.
//! 4. Evaluate `TPR*`, `Prec*` (at FPR = 0.5%) and `A_prc` on every design
//!    of the held-out group.
//!
//! Feature normalization is fitted on the training groups only.

use std::time::Instant;

use drcshap_ml::metrics::{average_precision, tpr_prec_at_fpr, PAPER_FPR};
use drcshap_ml::{Dataset, ModelComplexity, StandardScaler};
use serde::{Deserialize, Serialize};

use crate::pipeline::DesignBundle;
use crate::zoo::{ModelBudget, ModelFamily};

/// Evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Model families to evaluate (defaults to all five).
    pub families: Vec<ModelFamily>,
    /// Training budget.
    pub budget: ModelBudget,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self { families: ModelFamily::ALL.to_vec(), budget: ModelBudget::Quick, seed: 42 }
    }
}

/// Per-design, per-family metrics — one Table II cell triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// Design name.
    pub design: String,
    /// Model family.
    pub family: ModelFamily,
    /// Recall at FPR = 0.5%.
    pub tpr_star: f64,
    /// Precision at the same operating point.
    pub prec_star: f64,
    /// Area under the precision-recall curve.
    pub auprc: f64,
    /// Wall-clock seconds to score the design.
    pub predict_seconds: f64,
}

/// Per-family aggregate — Table II's bottom block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySummary {
    /// Model family.
    pub family: ModelFamily,
    /// Mean `TPR*` over evaluated designs.
    pub avg_tpr: f64,
    /// Mean `Prec*`.
    pub avg_prec: f64,
    /// Mean `A_prc`.
    pub avg_auprc: f64,
    /// Designs where this family had the best `TPR*`.
    pub wins_tpr: usize,
    /// Designs where this family had the best `Prec*`.
    pub wins_prec: usize,
    /// Designs where this family had the best `A_prc`.
    pub wins_auprc: usize,
    /// Mean model complexity over the five group models.
    pub complexity: ModelComplexity,
    /// Mean training (final fit) seconds per model.
    pub fit_seconds: f64,
    /// Mean grid-search seconds per model.
    pub tune_seconds: f64,
    /// Mean prediction seconds per design.
    pub predict_seconds: f64,
}

/// The reproduced Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// All per-design, per-family metric rows.
    pub rows: Vec<DesignMetrics>,
    /// Per-family aggregates.
    pub summaries: Vec<FamilySummary>,
    /// Designs that were evaluated (had both classes present).
    pub evaluated_designs: Vec<String>,
}

impl Table2 {
    /// The metrics row for `design` × `family`, if evaluated.
    pub fn row(&self, design: &str, family: ModelFamily) -> Option<&DesignMetrics> {
        self.rows.iter().find(|r| r.design == design && r.family == family)
    }

    /// The summary for `family`, if evaluated.
    pub fn summary(&self, family: ModelFamily) -> Option<&FamilySummary> {
        self.summaries.iter().find(|s| s.family == family)
    }

    /// Renders the table in the paper's layout (one block per family).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {}\n",
            "Design",
            self.summaries
                .iter()
                .map(|s| format!("| {:^26} ", s.family.display_name()))
                .collect::<String>()
        ));
        out.push_str(&format!(
            "{:<12} {}\n",
            "",
            self.summaries
                .iter()
                .map(|_| format!("| {:>8} {:>8} {:>8} ", "TPR*", "Prec*", "A_prc"))
                .collect::<String>()
        ));
        for design in &self.evaluated_designs {
            out.push_str(&format!("{design:<12} "));
            for s in &self.summaries {
                if let Some(r) = self.row(design, s.family) {
                    out.push_str(&format!(
                        "| {:>8.4} {:>8.4} {:>8.4} ",
                        r.tpr_star, r.prec_star, r.auprc
                    ));
                } else {
                    out.push_str("|        -        -        - ");
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<12} ", "Average"));
        for s in &self.summaries {
            out.push_str(&format!(
                "| {:>8.4} {:>8.4} {:>8.4} ",
                s.avg_tpr, s.avg_prec, s.avg_auprc
            ));
        }
        out.push('\n');
        out.push_str(&format!("{:<12} ", "# Win."));
        for s in &self.summaries {
            out.push_str(&format!("| {:>8} {:>8} {:>8} ", s.wins_tpr, s.wins_prec, s.wins_auprc));
        }
        out.push('\n');
        out.push_str(&format!("{:<12} ", "# Param."));
        for s in &self.summaries {
            out.push_str(&format!("| {:>24.1}k  ", s.complexity.num_parameters as f64 / 1e3));
        }
        out.push('\n');
        out.push_str(&format!("{:<12} ", "# Pred. op."));
        for s in &self.summaries {
            out.push_str(&format!("| {:>24.1}k  ", s.complexity.prediction_ops as f64 / 1e3));
        }
        out.push('\n');
        out.push_str(&format!("{:<12} ", "Train (s)"));
        for s in &self.summaries {
            out.push_str(&format!("| {:>25.1}  ", s.fit_seconds + s.tune_seconds));
        }
        out.push('\n');
        out.push_str(&format!("{:<12} ", "Pred (s)"));
        for s in &self.summaries {
            out.push_str(&format!("| {:>25.3}  ", s.predict_seconds));
        }
        out.push('\n');
        out
    }
}

impl Table2 {
    /// Renders the per-family averages as a GitHub-flavored markdown table
    /// (the format used in `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| Family | TPR* | Prec* | A_prc | wins (TPR*/Prec*/A_prc) |\n|---|---|---|---|---|\n",
        );
        for s in &self.summaries {
            out.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:.3} | {}/{}/{} |\n",
                s.family.display_name(),
                s.avg_tpr,
                s.avg_prec,
                s.avg_auprc,
                s.wins_tpr,
                s.wins_prec,
                s.wins_auprc
            ));
        }
        out
    }
}

/// Runs the full protocol over the suite bundles.
///
/// # Panics
///
/// Panics if `bundles` spans fewer than two groups or `config.families` is
/// empty.
pub fn evaluate_models(bundles: &[DesignBundle], config: &EvalConfig) -> Table2 {
    assert!(!config.families.is_empty(), "no model families selected");
    let datasets: Vec<Dataset> = bundles.iter().map(|b| b.to_dataset()).collect();
    let groups: Vec<u8> = bundles.iter().map(|b| b.design.spec.group).collect();
    let mut distinct: Vec<u8> = groups.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(distinct.len() >= 2, "need at least two groups");

    let mut rows: Vec<DesignMetrics> = Vec::new();
    let mut complexity_acc: std::collections::HashMap<ModelFamily, Vec<ModelComplexity>> =
        std::collections::HashMap::new();
    let mut fit_acc: std::collections::HashMap<ModelFamily, Vec<f64>> =
        std::collections::HashMap::new();
    let mut tune_acc: std::collections::HashMap<ModelFamily, Vec<f64>> =
        std::collections::HashMap::new();

    for &test_group in &distinct {
        // Any test design in this group with both classes present?
        let test_indices: Vec<usize> = (0..bundles.len())
            .filter(|&i| {
                groups[i] == test_group && {
                    let pos = datasets[i].num_positives();
                    pos > 0 && pos < datasets[i].n_samples()
                }
            })
            .collect();
        if test_indices.is_empty() {
            continue;
        }
        // Training set: every design outside the test group.
        let mut train = Dataset::empty(387);
        for i in 0..bundles.len() {
            if groups[i] != test_group {
                train.append(&datasets[i]);
            }
        }
        let scaler = StandardScaler::fit(&train);
        let train = scaler.transform(&train);

        for &family in &config.families {
            let trained = family.tune_and_fit(&train, config.budget, config.seed);
            complexity_acc.entry(family).or_default().push(trained.model.complexity());
            fit_acc.entry(family).or_default().push(trained.fit_seconds);
            tune_acc.entry(family).or_default().push(trained.tune_seconds);
            for &i in &test_indices {
                let test = scaler.transform(&datasets[i]);
                let t0 = Instant::now();
                let scores = trained.model.score_dataset(&test);
                let predict_seconds = t0.elapsed().as_secs_f64();
                let op = tpr_prec_at_fpr(&scores, test.labels(), PAPER_FPR);
                rows.push(DesignMetrics {
                    design: bundles[i].design.spec.name.clone(),
                    family,
                    tpr_star: op.tpr,
                    prec_star: op.precision,
                    auprc: average_precision(&scores, test.labels()),
                    predict_seconds,
                });
            }
        }
    }

    // Evaluated designs, in bundle order.
    let evaluated_designs: Vec<String> = bundles
        .iter()
        .map(|b| b.design.spec.name.clone())
        .filter(|name| rows.iter().any(|r| &r.design == name))
        .collect();

    // Win counts per metric.
    let mut summaries = Vec::new();
    for &family in &config.families {
        let fam_rows: Vec<&DesignMetrics> = rows.iter().filter(|r| r.family == family).collect();
        if fam_rows.is_empty() {
            continue;
        }
        let n = fam_rows.len() as f64;
        let mut wins = (0usize, 0usize, 0usize);
        for design in &evaluated_designs {
            let cell = |f: ModelFamily, get: &dyn Fn(&DesignMetrics) -> f64| {
                rows.iter().find(|r| &r.design == design && r.family == f).map(get)
            };
            for (slot, get) in [
                (&mut wins.0, &(|r: &DesignMetrics| r.tpr_star) as &dyn Fn(&DesignMetrics) -> f64),
                (&mut wins.1, &|r: &DesignMetrics| r.prec_star),
                (&mut wins.2, &|r: &DesignMetrics| r.auprc),
            ] {
                let mine = cell(family, get);
                let best =
                    config.families.iter().filter_map(|&f| cell(f, get)).fold(f64::MIN, f64::max);
                // A tie at the top counts for every tied family, but a
                // zero is never a "win" (models that predicted nothing
                // within the FPR budget did not win anything).
                if let Some(v) = mine {
                    if v > 0.0 && v >= best - 1e-9 {
                        *slot += 1;
                    }
                }
            }
        }
        let avg =
            |get: &dyn Fn(&DesignMetrics) -> f64| fam_rows.iter().map(|r| get(r)).sum::<f64>() / n;
        let complexities = &complexity_acc[&family];
        let complexity = ModelComplexity {
            num_parameters: complexities.iter().map(|c| c.num_parameters).sum::<usize>()
                / complexities.len(),
            prediction_ops: complexities.iter().map(|c| c.prediction_ops).sum::<usize>()
                / complexities.len(),
        };
        summaries.push(FamilySummary {
            family,
            avg_tpr: avg(&|r| r.tpr_star),
            avg_prec: avg(&|r| r.prec_star),
            avg_auprc: avg(&|r| r.auprc),
            wins_tpr: wins.0,
            wins_prec: wins.1,
            wins_auprc: wins.2,
            complexity,
            fit_seconds: fit_acc[&family].iter().sum::<f64>() / fit_acc[&family].len() as f64,
            tune_seconds: tune_acc[&family].iter().sum::<f64>() / tune_acc[&family].len() as f64,
            predict_seconds: avg(&|r| r.predict_seconds),
        });
    }

    Table2 { rows, summaries, evaluated_designs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_suite, PipelineConfig};
    use drcshap_netlist::suite;

    /// A 4-design mini-suite spanning 4 groups, at tiny scale.
    fn mini_bundles() -> Vec<DesignBundle> {
        let specs: Vec<_> = ["mult_2", "fft_b", "bridge32_a", "des_perf_1"]
            .iter()
            .map(|n| suite::spec(n).unwrap())
            .collect();
        build_suite(&specs, &PipelineConfig { scale: 0.22, ..Default::default() })
    }

    #[test]
    fn protocol_produces_rows_for_evaluable_designs() {
        let bundles = mini_bundles();
        let config = EvalConfig {
            families: vec![ModelFamily::Rf, ModelFamily::RusBoost],
            ..Default::default()
        };
        let table = evaluate_models(&bundles, &config);
        assert!(!table.evaluated_designs.is_empty());
        for design in &table.evaluated_designs {
            for family in &config.families {
                let row = table.row(design, *family).expect("row exists");
                assert!((0.0..=1.0).contains(&row.tpr_star));
                assert!((0.0..=1.0).contains(&row.prec_star));
                assert!((0.0..=1.0 + 1e-9).contains(&row.auprc));
            }
        }
        // Summaries cover both families.
        assert!(table.summary(ModelFamily::Rf).is_some());
        assert!(table.summary(ModelFamily::RusBoost).is_some());
    }

    #[test]
    fn rf_learns_something_on_the_mini_suite() {
        // Lift-based shape check: at this tiny scale absolute AUPRC is
        // noisy, but RF must beat the random-ranking baseline (= positive
        // rate) by a clear factor on average.
        let bundles = mini_bundles();
        let config = EvalConfig { families: vec![ModelFamily::Rf], ..Default::default() };
        let table = evaluate_models(&bundles, &config);
        let s = table.summary(ModelFamily::Rf).unwrap();
        let mean_base: f64 = bundles
            .iter()
            .map(|b| b.to_dataset().positive_rate())
            .filter(|&r| r > 0.0)
            .sum::<f64>()
            / table.evaluated_designs.len() as f64;
        assert!(
            s.avg_auprc > 2.0 * mean_base,
            "RF AUPRC {} vs base rate {}",
            s.avg_auprc,
            mean_base
        );
    }

    #[test]
    fn render_includes_all_blocks() {
        let bundles = mini_bundles();
        let config = EvalConfig { families: vec![ModelFamily::Rf], ..Default::default() };
        let table = evaluate_models(&bundles, &config);
        let s = table.render();
        assert!(s.contains("RF (this work)"));
        assert!(s.contains("Average"));
        assert!(s.contains("# Win."));
        assert!(s.contains("# Param."));
        assert!(s.contains("Pred (s)"));
        let md = table.render_markdown();
        assert!(md.starts_with("| Family |"));
        assert!(md.contains("| RF (this work) |"));
    }
}

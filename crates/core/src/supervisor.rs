//! Supervised, resumable execution of the data-acquisition pipeline.
//!
//! [`crate::pipeline::build_suite`] is the happy path: it assumes every
//! stage of every design finishes, and a panic or a kill loses the whole
//! run. The supervisor runs the same stage sequence — synth, place, route,
//! DRC, extract — under adult supervision:
//!
//! - each completed stage is written to disk as a **checksummed
//!   checkpoint** (the [`crate::artifact`] container format) together with
//!   a snapshot of the RNG state, so a crashed or cancelled run resumes
//!   from the last good stage *bit-exactly* — a resumed run produces the
//!   same features as an uninterrupted one;
//! - a **run manifest** (`manifest.json`) records the configuration
//!   fingerprint and per-design progress; resuming under a different
//!   configuration is rejected with a typed error instead of silently
//!   mixing incompatible intermediate state;
//! - every stage runs under a [`StageBudget`]: deadline expiry makes the
//!   stage *degrade* (fallback routes, spill placement) while cancellation
//!   unwinds cleanly and marks the run resumable;
//! - a panicking stage is **isolated** ([`std::panic::catch_unwind`]) and
//!   mapped to [`PipelineError::StagePanicked`]; the design is retried once
//!   with derated routing capacity, then marked failed — the rest of the
//!   suite continues;
//! - a corrupt or truncated checkpoint is detected by the container CRC,
//!   counted as a recovery event, and recomputed from the last good stage —
//!   never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use drcshap_drc::{run_drc, DrcReport};
use drcshap_features::{extract_design, FeatureMatrix};
use drcshap_geom::budget::{BudgetState, CancelToken, StageBudget};
use drcshap_ml::{DrcshapError, PipelineError};
use drcshap_netlist::{suite::DesignSpec, synth, Design};
use drcshap_place::place_budgeted;
use drcshap_route::{route_design_budgeted, RouteConfig, RouteOutcome};
use drcshap_telemetry as telemetry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::artifact::{decode_container, encode_container};
use crate::faults::{StageFault, StageFaultKind};
use crate::pipeline::{DesignBundle, PipelineConfig};

/// Manifest schema version written by this build.
pub const MANIFEST_VERSION: u32 = 1;

/// Capacity derate applied to the retry attempt of a failed design.
const RETRY_DERATE: f64 = 0.5;

/// The named stages of one design's build, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Netlist synthesis: die, grid and cell population.
    Synth,
    /// Legalized placement plus net generation.
    Place,
    /// Global routing.
    Route,
    /// DRC oracle labelling.
    Drc,
    /// 387-feature extraction.
    Extract,
}

impl Stage {
    /// All stages in execution order.
    pub const ALL: [Stage; 5] =
        [Stage::Synth, Stage::Place, Stage::Route, Stage::Drc, Stage::Extract];

    /// Stable lower-case stage name (checkpoint file stem, manifest entry).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Synth => "synth",
            Stage::Place => "place",
            Stage::Route => "route",
            Stage::Drc => "drc",
            Stage::Extract => "extract",
        }
    }

    /// Container kind byte for this stage's checkpoints (`0x10 +` index,
    /// disjoint from the model-artifact kind codes).
    pub fn code(self) -> u8 {
        0x10 + self as u8
    }

    /// Telemetry span name for this stage (`stage/<name>`).
    pub fn span_name(self) -> &'static str {
        match self {
            Stage::Synth => "stage/synth",
            Stage::Place => "stage/place",
            Stage::Route => "stage/route",
            Stage::Drc => "stage/drc",
            Stage::Extract => "stage/extract",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A restorable snapshot of the pipeline RNG ([`ChaCha8Rng`]), captured at
/// each stage boundary. The 128-bit word position is stored as two `u64`
/// halves because JSON has no 128-bit integer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngSnapshot {
    seed: [u8; 32],
    stream: u64,
    word_pos_hi: u64,
    word_pos_lo: u64,
}

impl RngSnapshot {
    fn capture(rng: &ChaCha8Rng) -> Self {
        let word_pos = rng.get_word_pos();
        Self {
            seed: rng.get_seed(),
            stream: rng.get_stream(),
            word_pos_hi: (word_pos >> 64) as u64,
            word_pos_lo: word_pos as u64,
        }
    }

    fn restore(&self) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::from_seed(self.seed);
        rng.set_stream(self.stream);
        rng.set_word_pos((u128::from(self.word_pos_hi) << 64) | u128::from(self.word_pos_lo));
        rng
    }
}

/// The output of one completed stage, as persisted in its checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum StagePayload {
    /// Synth and Place checkpoints both store the (partially built) design.
    Design(Box<Design>),
    /// Route checkpoint: the routing outcome.
    Route(Box<RouteOutcome>),
    /// DRC checkpoint: the labelling report.
    Drc(Box<DrcReport>),
    /// Extract checkpoint: the feature matrix.
    Extract(Box<FeatureMatrix>),
}

impl StagePayload {
    fn matches(&self, stage: Stage) -> bool {
        matches!(
            (self, stage),
            (StagePayload::Design(_), Stage::Synth | Stage::Place)
                | (StagePayload::Route(_), Stage::Route)
                | (StagePayload::Drc(_), Stage::Drc)
                | (StagePayload::Extract(_), Stage::Extract)
        )
    }
}

/// One stage checkpoint: the stage's output, the RNG state *after* the
/// stage, and whether the stage finished degraded.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Checkpoint {
    rng: RngSnapshot,
    degraded: bool,
    payload: StagePayload,
}

/// Per-design progress record in the run manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignRecord {
    /// Design name (scaled spec name equals the suite name).
    pub name: String,
    /// Stage names checkpointed so far, in execution order.
    pub completed_stages: Vec<String>,
    /// `pending`, `completed`, `cancelled` or `failed: <message>`.
    pub status: String,
}

/// The run manifest: configuration identity plus per-design progress,
/// rewritten atomically after every stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Linear design scale the run was started with.
    pub scale: f64,
    /// [`PipelineConfig::fingerprint`] of the run's configuration.
    pub config_fingerprint: u64,
    /// One record per design in the run.
    pub designs: Vec<DesignRecord>,
}

/// Reads and validates the manifest of an existing run directory.
///
/// # Errors
///
/// [`DrcshapError::Io`] when the file cannot be read;
/// [`PipelineError::ManifestMismatch`] when it does not parse or was
/// written by an incompatible manifest version.
pub fn read_manifest(run_dir: &Path) -> Result<RunManifest, DrcshapError> {
    let path = run_dir.join("manifest.json");
    let bytes =
        std::fs::read(&path).map_err(|e| DrcshapError::io(path.display().to_string(), e))?;
    let manifest: RunManifest = serde_json::from_slice(&bytes).map_err(|e| {
        DrcshapError::from(PipelineError::ManifestMismatch {
            detail: format!("{} does not parse: {e}", path.display()),
        })
    })?;
    if manifest.version != MANIFEST_VERSION {
        return Err(PipelineError::ManifestMismatch {
            detail: format!(
                "manifest version {} (this build reads {MANIFEST_VERSION})",
                manifest.version
            ),
        }
        .into());
    }
    Ok(manifest)
}

/// Configuration of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The pipeline parameters (scale, router, DRC oracle).
    pub pipeline: PipelineConfig,
    /// Directory holding the manifest and per-design checkpoints.
    pub run_dir: PathBuf,
    /// Optional per-stage wall-clock deadline. Expiry degrades the stage
    /// (it still completes); it never fails the run.
    pub stage_deadline: Option<Duration>,
    /// Attempts per design (first try + retries). The second attempt
    /// derates routing capacity by 0.5×. Minimum 1.
    pub max_attempts: usize,
    /// Deterministic fault injection for tests; `None` in production.
    pub fault: Option<StageFault>,
}

impl SupervisorConfig {
    /// A supervisor over `pipeline` writing to `run_dir`, with no stage
    /// deadline, one retry, and no fault injection.
    pub fn new(pipeline: PipelineConfig, run_dir: impl Into<PathBuf>) -> Self {
        Self {
            pipeline,
            run_dir: run_dir.into(),
            stage_deadline: None,
            max_attempts: 2,
            fault: None,
        }
    }
}

/// Terminal status of one design in a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignStatus {
    /// All five stages checkpointed; a bundle was produced.
    Completed,
    /// Every attempt failed; the rest of the suite continued.
    Failed {
        /// Rendered [`PipelineError::DesignFailed`] message.
        message: String,
    },
    /// The run's cancel token fired during this design.
    Cancelled,
}

/// Per-design outcome of a supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignOutcome {
    /// Design name.
    pub name: String,
    /// Terminal status.
    pub status: DesignStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: usize,
    /// Stages actually executed (all attempts combined).
    pub stages_run: usize,
    /// Stages restored from checkpoints instead of executed.
    pub stages_resumed: usize,
    /// Corrupt checkpoints detected and recomputed.
    pub recovered_checkpoints: usize,
    /// Stages that finished degraded (deadline expiry).
    pub degraded_stages: Vec<Stage>,
}

/// The outcome of [`run_supervised`]: per-design bundles (where produced)
/// and outcomes, in spec order.
#[derive(Debug)]
pub struct SuiteReport {
    /// One entry per requested spec; `None` for failed/cancelled designs.
    pub bundles: Vec<Option<DesignBundle>>,
    /// One outcome per requested spec, same order.
    pub designs: Vec<DesignOutcome>,
    /// Whether the run's cancel token fired.
    pub cancelled: bool,
}

impl SuiteReport {
    /// Number of designs that completed.
    pub fn completed(&self) -> usize {
        self.designs.iter().filter(|d| d.status == DesignStatus::Completed).count()
    }

    /// Renders a per-design status table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<14} {:>9} {:>8} {:>8} {:>9} {:>9}  status\n",
            "design", "attempts", "run", "resumed", "recovered", "degraded"
        );
        for d in &self.designs {
            let status = match &d.status {
                DesignStatus::Completed => "completed".to_string(),
                DesignStatus::Failed { message } => format!("failed: {message}"),
                DesignStatus::Cancelled => "cancelled".to_string(),
            };
            out.push_str(&format!(
                "{:<14} {:>9} {:>8} {:>8} {:>9} {:>9}  {}\n",
                d.name,
                d.attempts,
                d.stages_run,
                d.stages_resumed,
                d.recovered_checkpoints,
                d.degraded_stages.len(),
                status
            ));
        }
        out.push_str(&format!(
            "{}/{} designs completed{}\n",
            self.completed(),
            self.designs.len(),
            if self.cancelled { " (run cancelled)" } else { "" }
        ));
        out
    }
}

/// In-memory state threaded through one design's stages.
#[derive(Default)]
struct StageState {
    design: Option<Design>,
    route: Option<RouteOutcome>,
    report: Option<DrcReport>,
    features: Option<FeatureMatrix>,
}

/// Writes `bytes` to `path` with the workspace-wide crash-atomic publish
/// discipline (temp file, fsync, rename, parent-dir fsync), so a kill at
/// any point never leaves a half-written checkpoint or manifest.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DrcshapError> {
    crate::artifact::write_atomic(path, bytes)
}

/// Applies `update` to the shared manifest and rewrites it atomically.
/// Tolerates a poisoned lock: the manifest is plain data, and a panicked
/// sibling design must not take the rest of the suite down with it.
fn update_manifest(
    manifest: &Mutex<RunManifest>,
    path: &Path,
    update: impl FnOnce(&mut RunManifest),
) -> Result<(), DrcshapError> {
    let mut guard = manifest.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    update(&mut guard);
    let json = serde_json::to_vec_pretty(&*guard).expect("manifest serializes");
    write_atomic(path, &json)
}

/// Loads one stage checkpoint. `Ok(None)` means "no checkpoint" (run the
/// stage); `Err(detail)` means the file exists but is unusable (corrupt,
/// wrong kind, wrong fingerprint) and must be recomputed.
fn load_checkpoint(
    path: &Path,
    stage: Stage,
    fingerprint: u64,
) -> Result<Option<Checkpoint>, String> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.to_string()),
    };
    let (kind, payload) = decode_container(&bytes, fingerprint).map_err(|e| e.to_string())?;
    if kind != stage.code() {
        return Err(format!("kind byte {kind:#04x} is not a {stage} checkpoint"));
    }
    let checkpoint: Checkpoint = serde_json::from_slice(payload).map_err(|e| e.to_string())?;
    if !checkpoint.payload.matches(stage) {
        return Err(format!("payload variant does not match stage {stage}"));
    }
    Ok(Some(checkpoint))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes one stage body against `state`, returning whether it finished
/// degraded. Cancellation surfaces as [`PipelineError::Cancelled`].
#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn execute_stage(
    stage: Stage,
    spec: &DesignSpec,
    route_cfg: &RouteConfig,
    pipeline: &PipelineConfig,
    state: &mut StageState,
    rng: &mut ChaCha8Rng,
    budget: &StageBudget,
    inject_panic: bool,
) -> Result<bool, PipelineError> {
    if inject_panic {
        panic!("injected fault at {}/{}", spec.name, stage);
    }
    let _stage_span = telemetry::span_with(stage.span_name(), || spec.name.clone());
    let cancelled =
        || PipelineError::Cancelled { design: spec.name.clone(), stage: stage.name().to_string() };
    if budget.check() == BudgetState::Cancelled {
        return Err(cancelled());
    }
    match stage {
        Stage::Synth => {
            let mut design = Design::new(spec.clone());
            *rng = ChaCha8Rng::seed_from_u64(spec.seed());
            synth::generate_cells(&mut design, rng);
            state.design = Some(design);
            Ok(false)
        }
        Stage::Place => {
            let design = state.design.as_mut().expect("synth stage ran");
            let summary = place_budgeted(design, rng, budget).map_err(|_| cancelled())?;
            synth::generate_nets(design, rng);
            Ok(summary.deadline_degraded)
        }
        Stage::Route => {
            let design = state.design.as_ref().expect("place stage ran");
            let outcome =
                route_design_budgeted(design, route_cfg, rng, budget).map_err(|_| cancelled())?;
            let degraded = outcome.status.is_degraded();
            state.route = Some(outcome);
            Ok(degraded)
        }
        Stage::Drc => {
            let design = state.design.as_ref().expect("place stage ran");
            let route = state.route.as_ref().expect("route stage ran");
            state.report = Some(run_drc(design, route, &pipeline.drc, rng));
            Ok(false)
        }
        Stage::Extract => {
            let design = state.design.as_ref().expect("place stage ran");
            let route = state.route.as_ref().expect("route stage ran");
            state.features = Some(extract_design(design, route));
            Ok(false)
        }
    }
}

/// Counters accumulated across one design's attempts.
#[derive(Default)]
struct DesignStats {
    stages_run: usize,
    stages_resumed: usize,
    recovered: usize,
    degraded: Vec<Stage>,
}

/// One attempt at one design: walk the stages, resuming from the longest
/// contiguous prefix of valid checkpoints, executing (and checkpointing)
/// the rest.
#[allow(clippy::too_many_arguments)] // internal plumbing, not public API
fn run_design_attempt(
    spec: &DesignSpec,
    route_cfg: &RouteConfig,
    sup: &SupervisorConfig,
    cancel: &CancelToken,
    fault_armed: &AtomicBool,
    manifest: &Mutex<RunManifest>,
    manifest_path: &Path,
    stats: &mut DesignStats,
) -> Result<DesignBundle, DrcshapError> {
    let dir = sup.run_dir.join(&spec.name);
    std::fs::create_dir_all(&dir).map_err(|e| DrcshapError::io(dir.display().to_string(), e))?;
    let fingerprint = sup.pipeline.fingerprint();
    let mut state = StageState::default();
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed());
    // True while walking the contiguous prefix of reusable checkpoints;
    // flips to false at the first missing or corrupt one.
    let mut resuming = true;

    for stage in Stage::ALL {
        let path = dir.join(format!("{}.ckpt", stage.name()));
        if resuming {
            match load_checkpoint(&path, stage, fingerprint) {
                Ok(Some(checkpoint)) => {
                    rng = checkpoint.rng.restore();
                    if checkpoint.degraded {
                        stats.degraded.push(stage);
                    }
                    match checkpoint.payload {
                        StagePayload::Design(d) => state.design = Some(*d),
                        StagePayload::Route(r) => state.route = Some(*r),
                        StagePayload::Drc(r) => state.report = Some(*r),
                        StagePayload::Extract(f) => state.features = Some(*f),
                    }
                    stats.stages_resumed += 1;
                    telemetry::counter("supervisor/stages_resumed", 1);
                    continue;
                }
                Ok(None) => resuming = false,
                Err(_detail) => {
                    // Corrupt checkpoint: recompute from here on. The CRC
                    // caught it; recovery is recomputation, never a panic.
                    stats.recovered += 1;
                    telemetry::counter("supervisor/checkpoints_recovered", 1);
                    resuming = false;
                }
            }
        }

        // Deterministic fault injection (tests only). The armed flag makes
        // each fault one-shot so a retry or resume proceeds cleanly.
        let mut inject_panic = false;
        let mut corrupt_after = false;
        if let Some(fault) = &sup.fault {
            if fault.design == spec.name
                && fault.stage == stage
                && fault_armed.swap(false, Ordering::SeqCst)
            {
                match fault.kind {
                    StageFaultKind::Cancel => cancel.cancel(),
                    StageFaultKind::Panic => inject_panic = true,
                    StageFaultKind::CorruptCheckpoint => corrupt_after = true,
                }
            }
        }

        let budget =
            StageBudget::unlimited().deadline_in(sup.stage_deadline).cancelled_by(cancel.clone());
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute_stage(
                stage,
                spec,
                route_cfg,
                &sup.pipeline,
                &mut state,
                &mut rng,
                &budget,
                inject_panic,
            )
        }));
        let degraded = match result {
            Ok(Ok(degraded)) => degraded,
            Ok(Err(e)) => return Err(e.into()),
            Err(payload) => {
                return Err(PipelineError::StagePanicked {
                    design: spec.name.clone(),
                    stage: stage.name().to_string(),
                    message: panic_message(payload),
                }
                .into())
            }
        };
        stats.stages_run += 1;
        telemetry::counter("supervisor/stages_run", 1);
        if degraded {
            stats.degraded.push(stage);
        }

        let payload = match stage {
            Stage::Synth | Stage::Place => {
                StagePayload::Design(Box::new(state.design.clone().expect("stage ran")))
            }
            Stage::Route => StagePayload::Route(Box::new(state.route.clone().expect("stage ran"))),
            Stage::Drc => StagePayload::Drc(Box::new(state.report.clone().expect("stage ran"))),
            Stage::Extract => {
                StagePayload::Extract(Box::new(state.features.clone().expect("stage ran")))
            }
        };
        let checkpoint = Checkpoint { rng: RngSnapshot::capture(&rng), degraded, payload };
        let json = serde_json::to_vec(&checkpoint).expect("checkpoint serializes");
        write_atomic(&path, &encode_container(stage.code(), fingerprint, &json))?;
        if corrupt_after {
            let mut bytes = std::fs::read(&path)
                .map_err(|e| DrcshapError::io(path.display().to_string(), e))?;
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            std::fs::write(&path, bytes)
                .map_err(|e| DrcshapError::io(path.display().to_string(), e))?;
        }

        update_manifest(manifest, manifest_path, |m| {
            if let Some(record) = m.designs.iter_mut().find(|d| d.name == spec.name) {
                let name = stage.name().to_string();
                if !record.completed_stages.contains(&name) {
                    record.completed_stages.push(name);
                }
            }
        })?;
    }

    Ok(DesignBundle {
        design: state.design.expect("synth stage ran"),
        route: state.route.expect("route stage ran"),
        report: state.report.expect("drc stage ran"),
        features: state.features.expect("extract stage ran"),
    })
}

/// Supervises one design: up to `max_attempts` attempts, the retry with
/// derated routing capacity. Cancellation is terminal (no retry).
fn supervise_design(
    spec: &DesignSpec,
    sup: &SupervisorConfig,
    cancel: &CancelToken,
    fault_armed: &AtomicBool,
    manifest: &Mutex<RunManifest>,
    manifest_path: &Path,
) -> (Option<DesignBundle>, DesignOutcome) {
    let _design_span = telemetry::span_with("supervisor/design", || spec.name.clone());
    let mut stats = DesignStats::default();
    let max_attempts = sup.max_attempts.max(1);
    let mut attempts = 0;
    let mut last_error = String::new();
    let mut cancelled = false;

    while attempts < max_attempts && !cancelled {
        attempts += 1;
        let route_cfg = if attempts == 1 {
            sup.pipeline.route_for(spec)
        } else {
            sup.pipeline.route_for(spec).derated(RETRY_DERATE)
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_design_attempt(
                spec,
                &route_cfg,
                sup,
                cancel,
                fault_armed,
                manifest,
                manifest_path,
                &mut stats,
            )
        }));
        match result {
            Ok(Ok(bundle)) => {
                let _ = update_manifest(manifest, manifest_path, |m| {
                    if let Some(r) = m.designs.iter_mut().find(|d| d.name == spec.name) {
                        r.status = "completed".to_string();
                    }
                });
                let outcome = DesignOutcome {
                    name: spec.name.clone(),
                    status: DesignStatus::Completed,
                    attempts,
                    stages_run: stats.stages_run,
                    stages_resumed: stats.stages_resumed,
                    recovered_checkpoints: stats.recovered,
                    degraded_stages: stats.degraded,
                };
                return (Some(bundle), outcome);
            }
            Ok(Err(e)) => {
                cancelled = matches!(&e, DrcshapError::Pipeline(PipelineError::Cancelled { .. }))
                    || cancel.is_cancelled();
                last_error = e.to_string();
            }
            Err(payload) => {
                // A panic outside the stage sandbox (checkpoint IO, manifest
                // bookkeeping) still only costs this design its attempt.
                last_error = panic_message(payload);
            }
        }
    }

    let status = if cancelled {
        DesignStatus::Cancelled
    } else {
        DesignStatus::Failed {
            message: PipelineError::DesignFailed {
                design: spec.name.clone(),
                attempts,
                last_error: last_error.clone(),
            }
            .to_string(),
        }
    };
    let manifest_status = match &status {
        DesignStatus::Cancelled => "cancelled".to_string(),
        DesignStatus::Failed { message } => format!("failed: {message}"),
        DesignStatus::Completed => unreachable!("completed returns above"),
    };
    let _ = update_manifest(manifest, manifest_path, |m| {
        if let Some(r) = m.designs.iter_mut().find(|d| d.name == spec.name) {
            r.status = manifest_status.clone();
        }
    });
    let outcome = DesignOutcome {
        name: spec.name.clone(),
        status,
        attempts,
        stages_run: stats.stages_run,
        stages_resumed: stats.stages_resumed,
        recovered_checkpoints: stats.recovered,
        degraded_stages: stats.degraded,
    };
    (None, outcome)
}

/// Runs the suite under supervision: per-design checkpoints and retries,
/// per-stage deadlines, cooperative cancellation, and a persistent run
/// manifest. Safe to call again on the same `run_dir` after a crash, kill
/// or cancellation — completed stages are resumed from their checkpoints
/// and the result is bit-identical to an uninterrupted run.
///
/// Designs run in parallel; a failed design never takes the suite down.
///
/// # Errors
///
/// [`InputError::InvalidScale`](drcshap_ml::InputError) for an invalid
/// pipeline config; [`DrcshapError::Io`] when the run directory is
/// unusable; [`PipelineError::ManifestMismatch`] when `run_dir` holds a
/// manifest from a different configuration. Per-design failures are *not*
/// errors — they are reported in the [`SuiteReport`].
pub fn run_supervised(
    specs: &[DesignSpec],
    sup: &SupervisorConfig,
    cancel: &CancelToken,
) -> Result<SuiteReport, DrcshapError> {
    sup.pipeline.validate()?;
    std::fs::create_dir_all(&sup.run_dir)
        .map_err(|e| DrcshapError::io(sup.run_dir.display().to_string(), e))?;
    let fingerprint = sup.pipeline.fingerprint();
    let manifest_path = sup.run_dir.join("manifest.json");

    let mut manifest = if manifest_path.exists() {
        let m = read_manifest(&sup.run_dir)?;
        if m.config_fingerprint != fingerprint {
            return Err(PipelineError::ManifestMismatch {
                detail: format!(
                    "run directory {} was created with config fingerprint {:#018x}, \
                     the current config is {:#018x}",
                    sup.run_dir.display(),
                    m.config_fingerprint,
                    fingerprint
                ),
            }
            .into());
        }
        m
    } else {
        RunManifest {
            version: MANIFEST_VERSION,
            scale: sup.pipeline.scale,
            config_fingerprint: fingerprint,
            designs: Vec::new(),
        }
    };
    for spec in specs {
        if !manifest.designs.iter().any(|d| d.name == spec.name) {
            manifest.designs.push(DesignRecord {
                name: spec.name.clone(),
                completed_stages: Vec::new(),
                status: "pending".to_string(),
            });
        }
    }
    let json = serde_json::to_vec_pretty(&manifest).expect("manifest serializes");
    write_atomic(&manifest_path, &json)?;

    let manifest = Mutex::new(manifest);
    let fault_armed = AtomicBool::new(true);
    let scaled: Vec<DesignSpec> = specs.iter().map(|s| s.scaled(sup.pipeline.scale)).collect();
    let results: Vec<(Option<DesignBundle>, DesignOutcome)> = scaled
        .par_iter()
        .map(|spec| supervise_design(spec, sup, cancel, &fault_armed, &manifest, &manifest_path))
        .collect();

    let mut bundles = Vec::with_capacity(results.len());
    let mut designs = Vec::with_capacity(results.len());
    for (bundle, outcome) in results {
        bundles.push(bundle);
        designs.push(outcome);
    }
    Ok(SuiteReport { bundles, designs, cancelled: cancel.is_cancelled() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_netlist::suite;

    fn specs() -> Vec<DesignSpec> {
        vec![suite::spec("fft_1").unwrap()]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("drcshap-supervisor-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn rng_snapshot_round_trips_mid_stream() {
        use rand::RngCore;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        rng.set_stream(7);
        for _ in 0..13 {
            rng.next_u32();
        }
        let snap = RngSnapshot::capture(&rng);
        let mut restored = snap.restore();
        for _ in 0..32 {
            assert_eq!(rng.next_u32(), restored.next_u32());
        }
    }

    #[test]
    fn stage_codes_are_stable_and_disjoint() {
        let codes: Vec<u8> = Stage::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec![0x10, 0x11, 0x12, 0x13, 0x14]);
        assert_eq!(Stage::Route.to_string(), "route");
    }

    #[test]
    fn supervised_run_matches_unsupervised_build() {
        let dir = tmp_dir("match");
        let pipeline = PipelineConfig { scale: 0.15, ..Default::default() };
        let sup = SupervisorConfig::new(pipeline.clone(), &dir);
        let report = run_supervised(&specs(), &sup, &CancelToken::new()).unwrap();
        assert_eq!(report.completed(), 1);
        let supervised = report.bundles[0].as_ref().unwrap();
        let direct = crate::pipeline::build_design(&specs()[0], &pipeline);
        assert_eq!(supervised.report.labels, direct.report.labels);
        assert_eq!(supervised.features.row(3), direct.features.row(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_run_resumes_every_stage_from_checkpoints() {
        let dir = tmp_dir("resume");
        let pipeline = PipelineConfig { scale: 0.15, ..Default::default() };
        let sup = SupervisorConfig::new(pipeline, &dir);
        let first = run_supervised(&specs(), &sup, &CancelToken::new()).unwrap();
        assert_eq!(first.designs[0].stages_run, 5);
        let second = run_supervised(&specs(), &sup, &CancelToken::new()).unwrap();
        assert_eq!(second.designs[0].stages_resumed, 5);
        assert_eq!(second.designs[0].stages_run, 0);
        let a = first.bundles[0].as_ref().unwrap();
        let b = second.bundles[0].as_ref().unwrap();
        assert_eq!(a.features.row(0), b.features.row(0));
        assert_eq!(a.report.labels, b.report.labels);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_config_is_rejected_on_resume() {
        let dir = tmp_dir("mismatch");
        let sup = SupervisorConfig::new(PipelineConfig { scale: 0.15, ..Default::default() }, &dir);
        run_supervised(&specs(), &sup, &CancelToken::new()).unwrap();
        let other =
            SupervisorConfig::new(PipelineConfig { scale: 0.12, ..Default::default() }, &dir);
        let err = run_supervised(&specs(), &other, &CancelToken::new()).unwrap_err();
        assert!(
            matches!(err, DrcshapError::Pipeline(PipelineError::ManifestMismatch { .. })),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_stage_is_retried_and_the_design_completes() {
        let dir = tmp_dir("panic");
        let mut sup =
            SupervisorConfig::new(PipelineConfig { scale: 0.15, ..Default::default() }, &dir);
        sup.fault = Some(StageFault {
            design: "fft_1".to_string(),
            stage: Stage::Route,
            kind: StageFaultKind::Panic,
        });
        let report = run_supervised(&specs(), &sup, &CancelToken::new()).unwrap();
        let outcome = &report.designs[0];
        assert_eq!(outcome.status, DesignStatus::Completed);
        assert_eq!(outcome.attempts, 2);
        // The retry resumed synth and place from their checkpoints.
        assert!(outcome.stages_resumed >= 2, "{outcome:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

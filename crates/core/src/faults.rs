//! Fault-injection harness for the serving path.
//!
//! Exercises two corruption surfaces — feature vectors fed to
//! [`Classifier::score_checked`] and
//! artifact bytes fed to [`decode_model`] —
//! and asserts a single contract: **every corruption yields either a typed
//! error or a defined degraded result; nothing panics.** Each probe runs
//! under `catch_unwind`, so a regression that reintroduces a panic shows up
//! as a counted failure in the [`FaultReport`], not a crashed process.
//!
//! [`Classifier::score_checked`]: drcshap_ml::Classifier::score_checked
//! [`decode_model`]: crate::artifact::decode_model

use std::panic::{catch_unwind, AssertUnwindSafe};

use drcshap_ml::{Classifier, DrcshapError, NanPolicy};

use crate::artifact::{decode_model, SavedModel};

/// A corruption applied to a feature vector before scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorFault {
    /// Overwrite the element at `index % len` with NaN.
    InjectNan {
        /// Position to corrupt, wrapped into the vector length.
        index: usize,
    },
    /// Overwrite the element at `index % len` with +∞ or −∞.
    InjectInf {
        /// Position to corrupt, wrapped into the vector length.
        index: usize,
        /// Inject −∞ instead of +∞.
        negative: bool,
    },
    /// Drop the last `count` elements.
    Truncate {
        /// How many trailing elements to drop.
        count: usize,
    },
    /// Append `count` zero elements.
    Extend {
        /// How many zero elements to append.
        count: usize,
    },
}

impl VectorFault {
    /// Applies this fault to a copy of `x`.
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        match *self {
            VectorFault::InjectNan { index } => {
                if !v.is_empty() {
                    let i = index % v.len();
                    v[i] = f32::NAN;
                }
            }
            VectorFault::InjectInf { index, negative } => {
                if !v.is_empty() {
                    let i = index % v.len();
                    v[i] = if negative { f32::NEG_INFINITY } else { f32::INFINITY };
                }
            }
            VectorFault::Truncate { count } => {
                let keep = v.len().saturating_sub(count);
                v.truncate(keep);
            }
            VectorFault::Extend { count } => {
                v.resize(v.len() + count, 0.0);
            }
        }
        v
    }

    /// A standard battery of vector faults for an `n`-element vector.
    pub fn battery(n: usize) -> Vec<VectorFault> {
        let mut faults = vec![
            VectorFault::InjectNan { index: 0 },
            VectorFault::InjectNan { index: n / 2 },
            VectorFault::InjectNan { index: n.saturating_sub(1) },
            VectorFault::InjectInf { index: 0, negative: false },
            VectorFault::InjectInf { index: n / 2, negative: true },
            VectorFault::Truncate { count: 1 },
            VectorFault::Truncate { count: n },
            VectorFault::Extend { count: 1 },
            VectorFault::Extend { count: 64 },
        ];
        faults.dedup();
        faults
    }
}

/// A corruption applied to serialized artifact bytes before decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArtifactFault {
    /// XOR the byte at `offset` with `mask` (single- or multi-bit flip).
    FlipBits {
        /// Byte position, wrapped into the artifact length.
        offset: usize,
        /// XOR mask (zero is a deliberate no-op fault).
        mask: u8,
    },
    /// Keep only the first `keep` bytes.
    Truncate {
        /// How many leading bytes survive.
        keep: usize,
    },
    /// Append `count` bytes of `fill`.
    Extend {
        /// How many bytes to append.
        count: usize,
        /// The byte value appended.
        fill: u8,
    },
    /// Overwrite one header byte at `offset` (< 32) with `value`.
    TamperHeader {
        /// Header byte position (silently skipped when past the end).
        offset: usize,
        /// The value written over it.
        value: u8,
    },
}

impl ArtifactFault {
    /// Applies this fault to a copy of `bytes`.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        let mut b = bytes.to_vec();
        match *self {
            ArtifactFault::FlipBits { offset, mask } => {
                if !b.is_empty() {
                    let i = offset % b.len();
                    b[i] ^= mask;
                }
            }
            ArtifactFault::Truncate { keep } => b.truncate(keep),
            ArtifactFault::Extend { count, fill } => {
                b.resize(b.len() + count, fill);
            }
            ArtifactFault::TamperHeader { offset, value } => {
                if offset < b.len() {
                    b[offset] = value;
                }
            }
        }
        b
    }

    /// A standard battery for an artifact of `len` bytes: every header byte
    /// flipped (XOR, so never a no-op), a spread of payload bit-flips, and
    /// size faults.
    pub fn battery(len: usize) -> Vec<ArtifactFault> {
        let mut faults = Vec::new();
        for offset in 0..32.min(len) {
            faults.push(ArtifactFault::FlipBits { offset, mask: 0xff });
        }
        // Bit-flips spread across the whole artifact, one per ~64 bytes.
        let step = (len / 64).max(1);
        for offset in (0..len).step_by(step) {
            faults.push(ArtifactFault::FlipBits { offset, mask: 1 << (offset % 8) });
        }
        for keep in [0, 1, 16, 31, 32, len.saturating_sub(1)] {
            if keep < len {
                faults.push(ArtifactFault::Truncate { keep });
            }
        }
        faults.push(ArtifactFault::Extend { count: 1, fill: 0 });
        faults.push(ArtifactFault::Extend { count: 7, fill: 0xaa });
        faults
    }
}

/// A deterministic fault injected at a stage boundary of a supervised run
/// ([`crate::supervisor::run_supervised`]). Fires exactly once per run —
/// the supervisor disarms it after the first match — so retry and resume
/// paths proceed cleanly and the test can assert recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageFault {
    /// Name of the design to fault.
    pub design: String,
    /// Stage at whose boundary the fault fires.
    pub stage: crate::supervisor::Stage,
    /// What the fault does.
    pub kind: StageFaultKind,
}

/// The kinds of stage-boundary faults the supervisor can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageFaultKind {
    /// Fire the run's cancel token just before the stage executes —
    /// simulates an operator kill mid-run.
    Cancel,
    /// Panic inside the stage body — exercises panic isolation and retry.
    Panic,
    /// Flip a byte in the stage's checkpoint after writing it — exercises
    /// CRC detection and recompute-on-resume.
    CorruptCheckpoint,
}

/// Outcome tally from a fault suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults that produced a typed error.
    pub rejected: usize,
    /// Faults that produced a defined (finite, in-range) degraded result.
    pub degraded: usize,
    /// Faults that panicked — must be zero.
    pub panicked: usize,
    /// Faults that slipped through with an out-of-contract result
    /// (non-finite score, or corrupted artifact decoded successfully).
    pub undetected: usize,
    /// Human-readable descriptions of every panic or undetected fault.
    pub failures: Vec<String>,
}

impl FaultReport {
    /// True when every fault was either rejected or handled as a defined
    /// degraded result.
    pub fn all_handled(&self) -> bool {
        self.panicked == 0 && self.undetected == 0
    }

    /// Total number of faults exercised.
    pub fn total(&self) -> usize {
        self.rejected + self.degraded + self.panicked + self.undetected
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} faults: {} rejected, {} degraded, {} panicked, {} undetected",
            self.total(),
            self.rejected,
            self.degraded,
            self.panicked,
            self.undetected
        )
    }
}

/// Runs every fault in `faults` against `model.score_checked` under
/// `policy`, starting from the clean vector `x`.
///
/// Contract per fault: a typed error counts as rejected; an `Ok` score
/// counts as degraded only if it is finite (lenient policies define the
/// degraded result); a non-finite score or a panic is a failure.
pub fn run_vector_faults(
    model: &dyn Classifier,
    x: &[f32],
    policy: NanPolicy,
    faults: &[VectorFault],
) -> FaultReport {
    let mut report = FaultReport::default();
    for fault in faults {
        let corrupted = fault.apply(x);
        let outcome = catch_unwind(AssertUnwindSafe(|| model.score_checked(&corrupted, policy)));
        match outcome {
            Err(_) => {
                report.panicked += 1;
                report.failures.push(format!("panic on {fault:?}"));
            }
            Ok(Err(_)) => report.rejected += 1,
            Ok(Ok(score)) if score.is_finite() => report.degraded += 1,
            Ok(Ok(score)) => {
                report.undetected += 1;
                report.failures.push(format!("non-finite score {score} on {fault:?}"));
            }
        }
    }
    report
}

/// Runs every fault in `faults` against [`decode_model`], starting from the
/// clean artifact `bytes`.
///
/// Contract per fault: the corrupted bytes must fail to decode with a typed
/// error — a successful decode of corrupted bytes or a panic is a failure.
/// (Faults that happen to leave the bytes unchanged, e.g. a zero-mask flip,
/// are counted as degraded when the decode still matches the clean model.)
pub fn run_artifact_faults(
    bytes: &[u8],
    expected_fingerprint: u64,
    faults: &[ArtifactFault],
) -> FaultReport {
    let mut report = FaultReport::default();
    let clean: Option<SavedModel> = decode_model(bytes, expected_fingerprint).ok();
    for fault in faults {
        let corrupted = fault.apply(bytes);
        let unchanged = corrupted == bytes;
        let outcome: Result<Result<SavedModel, DrcshapError>, _> =
            catch_unwind(AssertUnwindSafe(|| decode_model(&corrupted, expected_fingerprint)));
        match outcome {
            Err(_) => {
                report.panicked += 1;
                report.failures.push(format!("panic on {fault:?}"));
            }
            Ok(Err(_)) => report.rejected += 1,
            Ok(Ok(decoded)) if unchanged && Some(&decoded) == clean.as_ref() => {
                report.degraded += 1;
            }
            Ok(Ok(_)) => {
                report.undetected += 1;
                report.failures.push(format!("corrupted artifact decoded on {fault:?}"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode_model;
    use drcshap_forest::RandomForestTrainer;
    use drcshap_ml::{Dataset, Trainer};

    fn tiny_model() -> SavedModel {
        let x: Vec<f32> = (0..40).flat_map(|i| vec![(i % 2) as f32, 0.5, 0.25]).collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect();
        let data = Dataset::from_parts(x, y, vec![0; 40], 3);
        SavedModel::Rf(RandomForestTrainer { n_trees: 4, ..Default::default() }.fit(&data, 11))
    }

    #[test]
    fn vector_battery_reject_policy_never_panics() {
        let model = tiny_model();
        let x = vec![0.5f32, 0.5, 0.5];
        let faults = VectorFault::battery(x.len());
        let report = run_vector_faults(model.as_classifier(), &x, NanPolicy::Reject, &faults);
        assert!(report.all_handled(), "{report}: {:?}", report.failures);
        // Reject must refuse every NaN/Inf/length fault outright.
        assert_eq!(report.degraded, 0, "{report}");
    }

    #[test]
    fn vector_battery_nan_aware_degrades_nan_faults() {
        let model = tiny_model();
        let x = vec![0.5f32, 0.5, 0.5];
        let faults = VectorFault::battery(x.len());
        let report = run_vector_faults(model.as_classifier(), &x, NanPolicy::NanAware, &faults);
        assert!(report.all_handled(), "{report}: {:?}", report.failures);
        // NaN/Inf faults keep the right length and must score (degraded);
        // length faults must still be rejected.
        assert!(report.degraded >= 5, "{report}");
        assert!(report.rejected >= 4, "{report}");
    }

    #[test]
    fn artifact_battery_detects_every_corruption() {
        let model = tiny_model();
        let bytes = encode_model(&model, 99).expect("encode");
        let faults = ArtifactFault::battery(bytes.len());
        let report = run_artifact_faults(&bytes, 99, &faults);
        assert!(report.all_handled(), "{report}: {:?}", report.failures);
        assert_eq!(report.degraded, 0, "no fault in the battery is a no-op: {report}");
        assert_eq!(report.rejected, report.total());
    }

    #[test]
    fn noop_fault_counts_as_degraded_not_undetected() {
        let model = tiny_model();
        let bytes = encode_model(&model, 99).expect("encode");
        let faults = [ArtifactFault::FlipBits { offset: 40, mask: 0 }];
        let report = run_artifact_faults(&bytes, 99, &faults);
        assert_eq!(report.degraded, 1, "{report}");
        assert!(report.all_handled());
    }

    #[test]
    fn fault_application_is_deterministic() {
        let x = vec![1.0f32, 2.0, 3.0];
        let f = VectorFault::InjectNan { index: 7 };
        let a = f.apply(&x);
        let b = f.apply(&x);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(a[7 % 3].is_nan());
    }
}

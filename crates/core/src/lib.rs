#![warn(missing_docs)]
//! The paper's workflow (Fig. 1), end to end: synthetic design generation →
//! placement → global routing → DRC labels → 387-feature extraction →
//! grouped training/tuning → per-design evaluation → per-hotspot SHAP
//! explanations.
//!
//! - [`pipeline`] — data acquisition: one [`pipeline::DesignBundle`] per
//!   suite design, convertible to a labelled [`drcshap_ml::Dataset`];
//! - [`zoo`] — the five model families of Table II with the paper's
//!   hyperparameter anchors and tuning grids;
//! - [`eval`] — the Table II protocol: leave-the-test-group-out training,
//!   4-pass grouped grid search on AUPRC, retrain, evaluate
//!   `TPR*`/`Prec*`/`A_prc` per design;
//! - [`explain`] — the explanation service: train RF, pick example hotspots
//!   by dominant cause (the paper's Fig. 3 (a)/(b)/(c) archetypes), render
//!   Fig. 4-style force plots, validate explanations against the oracle's
//!   injected causes, and triage whole designs by archetype;
//! - [`flow`] — the closed loop the paper motivates: predict, rip up and
//!   reroute the traffic over the worst predictions, re-extract, re-predict;
//! - [`artifact`] — versioned, checksummed on-disk model artifacts with
//!   strict validation on load;
//! - [`faults`] — a fault-injection harness proving that corrupted inputs
//!   and artifacts produce typed errors, never panics;
//! - [`supervisor`] — supervised, resumable suite builds: per-stage
//!   checkpoints, a run manifest, per-stage deadlines with degraded-mode
//!   completion, cooperative cancellation, and panic-isolated retries;
//! - [`telemetry`] — workspace-wide spans and counters (re-export of
//!   `drcshap-telemetry`): enable with [`telemetry::enable`], export a
//!   JSON summary or Chrome trace from [`telemetry::hub`].
//!
//! # Example
//!
//! ```no_run
//! use drcshap_core::pipeline::{build_design, PipelineConfig};
//! use drcshap_netlist::suite;
//!
//! let config = PipelineConfig { scale: 0.2, ..PipelineConfig::default() };
//! let bundle = build_design(&suite::spec("fft_1").unwrap(), &config);
//! println!(
//!     "{}: {} g-cells, {} hotspots",
//!     bundle.design.spec.name,
//!     bundle.design.grid.num_cells(),
//!     bundle.report.num_hotspots()
//! );
//! ```

pub mod artifact;
pub mod eval;
pub mod explain;
pub mod faults;
pub mod flow;
pub mod pipeline;
pub mod supervisor;
pub mod zoo;

pub use drcshap_telemetry as telemetry;

pub use artifact::{decode_model, encode_model, load_model, save_model, ModelKind, SavedModel};
pub use eval::{evaluate_models, DesignMetrics, EvalConfig, Table2};
pub use explain::{CaseArchetype, Explainer, ExplanationCase, TriageReport, TriageRow};
pub use faults::{
    run_artifact_faults, run_vector_faults, ArtifactFault, FaultReport, StageFault, StageFaultKind,
    VectorFault,
};
pub use flow::{run_fix_loop, FixIteration, FixLoopReport};
pub use pipeline::{
    build_design, build_suite, try_build_design, try_build_suite, DesignBundle, PipelineConfig,
};
pub use supervisor::{
    read_manifest, run_supervised, DesignOutcome, DesignStatus, RunManifest, Stage, SuiteReport,
    SupervisorConfig,
};
pub use zoo::{ModelFamily, TrainedModel};

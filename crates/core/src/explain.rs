//! The explanation service: train the RF, pick example hotspots by archetype
//! (the paper's Fig. 3 (a) edge congestion / (b) via congestion / (c) near a
//! macro), explain them with the SHAP tree explainer, render Fig. 4-style
//! force plots, and validate explanations against the oracle's ground truth.
//!
//! The RF here is trained on *raw* (unscaled) features: trees are invariant
//! to monotone feature scaling, and raw values make the rendered
//! explanations read like the paper's (`edM5_7H = -4` means "capacity is 4
//! tracks short of the load").

use drcshap_features::{CongestionQuantity, FeatureDesc, FeatureSchema, PlacementQuantity};
use drcshap_forest::{RandomForest, RandomForestTrainer};
use drcshap_geom::GcellId;
use drcshap_ml::{Dataset, Trainer};
use drcshap_route::MetalLayer;
use drcshap_shap::{
    explain_forest, forest_shap_interactions, render_force, Explanation, ForceOptions,
    InteractionValues,
};
use serde::{Deserialize, Serialize};

use crate::pipeline::DesignBundle;

/// The three hotspot archetypes of the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseArchetype {
    /// Dominated by GR edge congestion (Fig. 3(a)).
    EdgeCongestion,
    /// Dominated by via congestion (Fig. 3(b)).
    ViaCongestion,
    /// Adjacent to a macro/blockage (Fig. 3(c)).
    MacroProximity,
}

impl std::fmt::Display for CaseArchetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CaseArchetype::EdgeCongestion => "edge congestion",
            CaseArchetype::ViaCongestion => "via congestion",
            CaseArchetype::MacroProximity => "macro proximity",
        })
    }
}

/// One explained hotspot: the sample, its SHAP decomposition and context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplanationCase {
    /// Design the hotspot belongs to.
    pub design: String,
    /// The central g-cell.
    pub gcell: GcellId,
    /// Raw feature values of the sample.
    pub feature_values: Vec<f32>,
    /// SHAP explanation of the RF prediction.
    pub explanation: Explanation,
    /// Whether the g-cell is an actual DRC hotspot.
    pub actual_hotspot: bool,
    /// The detected archetype.
    pub archetype: CaseArchetype,
}

impl ExplanationCase {
    /// The metal layers implicated by the top `k` edge-congestion features.
    pub fn implicated_metal_layers(&self, schema: &FeatureSchema, k: usize) -> Vec<MetalLayer> {
        let mut layers = Vec::new();
        for (i, _) in self.explanation.top(k) {
            if let FeatureDesc::Edge { layer, .. } = schema.desc(i) {
                if !layers.contains(layer) {
                    layers.push(*layer);
                }
            }
        }
        layers
    }
}

/// One archetype bucket of a [`TriageReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageRow {
    /// The hotspot archetype of this bucket.
    pub archetype: CaseArchetype,
    /// Predicted hotspots in the bucket.
    pub count: usize,
    /// How many are actual DRC hotspots (diagnostic; unknown at prediction
    /// time in production).
    pub actual_hotspots: usize,
    /// Mean predicted probability over the bucket.
    pub mean_probability: f64,
    /// Metal layers implicated by the bucket's explanations, with counts,
    /// descending.
    pub layer_counts: Vec<(MetalLayer, usize)>,
}

/// A design-level triage of predicted hotspots, grouped by archetype.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageReport {
    /// Design name.
    pub design: String,
    /// Probability threshold used to select predictions.
    pub threshold: f64,
    /// Buckets, largest first.
    pub rows: Vec<TriageRow>,
}

impl TriageReport {
    /// Total predicted hotspots across buckets.
    pub fn total(&self) -> usize {
        self.rows.iter().map(|r| r.count).sum()
    }

    /// Renders the triage as a small table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "hotspot triage for {} (threshold {:.2}): {} predicted hotspots\n",
            self.design,
            self.threshold,
            self.total()
        );
        for row in &self.rows {
            let layers: Vec<String> =
                row.layer_counts.iter().take(3).map(|(l, c)| format!("{l}x{c}")).collect();
            out.push_str(&format!(
                "  {:<18} {:>4} predicted ({} actual), mean p = {:.2}, layers: {}\n",
                row.archetype.to_string(),
                row.count,
                row.actual_hotspots,
                row.mean_probability,
                layers.join(" ")
            ));
        }
        out
    }
}

/// A trained RF plus everything needed to explain individual g-cells.
pub struct Explainer {
    forest: RandomForest,
    schema: FeatureSchema,
}

impl Explainer {
    /// Trains the RF on the given bundles (raw features) and wraps it.
    pub fn train(bundles: &[DesignBundle], trainer: &RandomForestTrainer, seed: u64) -> Self {
        let mut train = Dataset::empty(387);
        for b in bundles {
            train.append(&b.to_dataset());
        }
        let forest = trainer.fit(&train, seed);
        Self { forest, schema: FeatureSchema::paper_387() }
    }

    /// Wraps an already-trained forest.
    pub fn from_forest(forest: RandomForest) -> Self {
        Self { forest, schema: FeatureSchema::paper_387() }
    }

    /// Serializes the trained model to JSON (trees, covers, leaf values —
    /// everything prediction and SHAP need), so a tuned model can be reused
    /// across flow iterations without retraining.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] if serialization fails (practically
    /// impossible for in-memory forests).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.forest)
    }

    /// Restores an explainer from [`Explainer::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        Ok(Self::from_forest(serde_json::from_str(json)?))
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// The feature schema used for naming.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// Explains the g-cell at sample `index` of `bundle`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn explain_gcell(&self, bundle: &DesignBundle, index: usize) -> ExplanationCase {
        let row = bundle.features.row(index);
        let explanation = explain_forest(&self.forest, row);
        let archetype = self.classify(&explanation, row);
        ExplanationCase {
            design: bundle.design.spec.name.clone(),
            gcell: bundle.design.grid.cell_at_index(index),
            feature_values: row.to_vec(),
            actual_hotspot: bundle.report.labels[index],
            explanation,
            archetype,
        }
    }

    /// SHAP interaction values for a case (one conditional-TreeSHAP pass per
    /// used feature per tree; noticeably slower than a plain explanation).
    pub fn interactions(&self, case: &ExplanationCase) -> InteractionValues {
        forest_shap_interactions(&self.forest, &case.feature_values)
    }

    /// Renders the `k` strongest pairwise interactions of a case, by name —
    /// e.g. "how much of the M4 overflow's credit only exists together with
    /// the neighbouring via crowding".
    pub fn render_interactions(&self, case: &ExplanationCase, k: usize) -> String {
        let inter = self.interactions(case);
        let mut out =
            format!("top feature interactions for hotspot {} in {}\n", case.gcell, case.design);
        let pairs = inter.top_pairs(k);
        if pairs.is_empty() {
            out.push_str("  (no interactions: additive prediction)\n");
            return out;
        }
        let max = pairs[0].2.abs().max(1e-12);
        for (i, j, v) in pairs {
            let bar = "█".repeat(((v.abs() / max) * 20.0).round() as usize);
            out.push_str(&format!(
                "  {:<12} x {:<12} {:+.4}  {}\n",
                self.schema.name(i),
                self.schema.name(j),
                v,
                bar
            ));
        }
        out
    }

    /// Renders a case as a Fig. 4-style force plot with feature names.
    pub fn render(&self, case: &ExplanationCase, options: &ForceOptions) -> String {
        let mut out = format!(
            "hotspot {} in {} ({} archetype, actual DRC hotspot: {})\n",
            case.gcell, case.design, case.archetype, case.actual_hotspot
        );
        out.push_str(&render_force(
            &case.explanation,
            self.schema.names(),
            &case.feature_values,
            options,
        ));
        out
    }

    /// Selects up to `k` example hotspots from `bundle`: the top-predicted
    /// true hotspots, diversified across archetypes when possible (the
    /// paper's three examples span all three).
    pub fn select_cases(&self, bundle: &DesignBundle, k: usize) -> Vec<ExplanationCase> {
        // Rank all true hotspots by predicted probability.
        let mut ranked: Vec<(usize, f64)> = (0..bundle.features.n_samples())
            .filter(|&i| bundle.report.labels[i])
            .map(|i| (i, self.forest.predict_proba(bundle.features.row(i))))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

        let mut cases: Vec<ExplanationCase> = Vec::new();
        let mut seen: std::collections::HashSet<CaseArchetype> = Default::default();
        // First pass: one case per archetype.
        for &(i, _) in &ranked {
            if cases.len() >= k {
                break;
            }
            let case = self.explain_gcell(bundle, i);
            if seen.insert(case.archetype) {
                cases.push(case);
            }
        }
        // Second pass: fill with the strongest remaining predictions.
        for &(i, _) in &ranked {
            if cases.len() >= k {
                break;
            }
            if !cases.iter().any(|c| c.gcell == bundle.design.grid.cell_at_index(i)) {
                cases.push(self.explain_gcell(bundle, i));
            }
        }
        cases
    }

    /// Triages all predicted hotspots of a design: explains the samples
    /// scoring at or above `threshold` (capped at the `max_cases` highest),
    /// groups them by archetype, and tallies the implicated metal layers —
    /// the design-level view a routability-fix loop starts from.
    pub fn triage(&self, bundle: &DesignBundle, threshold: f64, max_cases: usize) -> TriageReport {
        let mut predicted: Vec<(usize, f64)> = (0..bundle.features.n_samples())
            .map(|i| (i, self.forest.predict_proba(bundle.features.row(i))))
            .filter(|&(_, p)| p >= threshold)
            .collect();
        predicted.sort_by(|a, b| b.1.total_cmp(&a.1));
        predicted.truncate(max_cases);

        let mut rows: std::collections::HashMap<CaseArchetype, TriageRow> = Default::default();
        for &(i, p) in &predicted {
            let case = self.explain_gcell(bundle, i);
            let row = rows.entry(case.archetype).or_insert_with(|| TriageRow {
                archetype: case.archetype,
                count: 0,
                actual_hotspots: 0,
                mean_probability: 0.0,
                layer_counts: Vec::new(),
            });
            row.count += 1;
            row.actual_hotspots += case.actual_hotspot as usize;
            row.mean_probability += p;
            for layer in case.implicated_metal_layers(&self.schema, 6) {
                match row.layer_counts.iter_mut().find(|(l, _)| *l == layer) {
                    Some((_, c)) => *c += 1,
                    None => row.layer_counts.push((layer, 1)),
                }
            }
        }
        let mut rows: Vec<TriageRow> = rows.into_values().collect();
        for row in &mut rows {
            row.mean_probability /= row.count.max(1) as f64;
            row.layer_counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        }
        rows.sort_by_key(|r| std::cmp::Reverse(r.count));
        TriageReport { design: bundle.design.spec.name.clone(), threshold, rows }
    }

    /// Checks an explanation against the oracle ground truth: at least one
    /// of the layers implicated by the top features must carry an actual
    /// violation in the g-cell (the validation the paper does by visual
    /// comparison with the routed layout, §IV-B).
    pub fn validate_case(&self, case: &ExplanationCase, bundle: &DesignBundle) -> bool {
        if !case.actual_hotspot {
            return false;
        }
        let violations = bundle.report.violations_in(&bundle.design.grid, case.gcell);
        if violations.is_empty() {
            return false;
        }
        let actual_layers: Vec<MetalLayer> = violations.iter().map(|v| v.layer).collect();
        // Implicated layers: metal layers of top edge features, plus the
        // metals sandwiching top via features.
        let mut implicated: Vec<MetalLayer> = Vec::new();
        for (i, phi) in case.explanation.top(8) {
            if phi <= 0.0 {
                continue;
            }
            match self.schema.desc(i) {
                FeatureDesc::Edge { layer, .. } => implicated.push(*layer),
                FeatureDesc::Via { layer, .. } => {
                    implicated.push(layer.lower_metal());
                    implicated.push(layer.upper_metal());
                }
                FeatureDesc::Placement { .. } => {
                    // Pin/density causes express as low-metal violations.
                    implicated.push(MetalLayer::M1);
                    implicated.push(MetalLayer::M2);
                }
            }
        }
        actual_layers.iter().any(|l| implicated.contains(l))
    }

    /// Classifies the archetype from the SHAP decomposition and the raw
    /// window features.
    fn classify(&self, explanation: &Explanation, row: &[f32]) -> CaseArchetype {
        // Macro proximity: substantial blockage anywhere in the window.
        let max_blk = self
            .schema
            .iter()
            .filter(|(_, d)| {
                matches!(
                    d,
                    FeatureDesc::Placement { quantity: PlacementQuantity::BlockageArea, .. }
                )
            })
            .map(|(i, _)| row[i])
            .fold(0.0f32, f32::max);
        if max_blk > 0.25 {
            return CaseArchetype::MacroProximity;
        }
        // Otherwise: compare positive SHAP mass of edge vs via features.
        let (mut edge, mut via) = (0.0f64, 0.0f64);
        for (i, &phi) in explanation.contributions.iter().enumerate() {
            if phi <= 0.0 {
                continue;
            }
            match self.schema.desc(i) {
                FeatureDesc::Edge { quantity, .. } => {
                    if *quantity != CongestionQuantity::Capacity {
                        edge += phi;
                    }
                }
                FeatureDesc::Via { quantity, .. } => {
                    if *quantity != CongestionQuantity::Capacity {
                        via += phi;
                    }
                }
                FeatureDesc::Placement { .. } => {}
            }
        }
        if via > edge {
            CaseArchetype::ViaCongestion
        } else {
            CaseArchetype::EdgeCongestion
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_design, PipelineConfig};
    use drcshap_netlist::suite;

    fn trained_on(design: &str) -> (Explainer, DesignBundle) {
        let config = PipelineConfig { scale: 0.25, ..Default::default() };
        let bundle = build_design(&suite::spec(design).unwrap(), &config);
        let trainer = RandomForestTrainer { n_trees: 40, ..Default::default() };
        // Self-training is fine here: the explainer tests care about SHAP
        // mechanics, not generalization.
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 7);
        (explainer, bundle)
    }

    #[test]
    fn explanations_are_locally_accurate() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let cases = explainer.select_cases(&bundle, 3);
        assert!(!cases.is_empty());
        for case in &cases {
            assert!(case.explanation.local_accuracy_gap() < 1e-9);
            assert!(case.actual_hotspot);
        }
    }

    #[test]
    fn hotspot_predictions_exceed_base_value() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let cases = explainer.select_cases(&bundle, 3);
        for case in &cases {
            assert!(
                case.explanation.prediction > case.explanation.base_value,
                "selected hotspot not above average"
            );
        }
    }

    #[test]
    fn render_mentions_feature_names() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let cases = explainer.select_cases(&bundle, 1);
        let s = explainer.render(&cases[0], &ForceOptions::default());
        assert!(s.contains("prediction ="));
        assert!(s.contains("archetype"));
        // At least one paper-style feature name appears.
        let has_name = explainer.schema().names().iter().any(|n| s.contains(n.as_str()));
        assert!(has_name, "no feature names in: {s}");
    }

    #[test]
    fn triage_groups_predictions_by_archetype() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let report = explainer.triage(&bundle, 0.3, 50);
        assert!(report.total() > 0, "no predictions above threshold");
        assert!(report.total() <= 50);
        // Buckets sorted by size, probabilities above the threshold.
        let mut prev = usize::MAX;
        for row in &report.rows {
            assert!(row.count <= prev);
            prev = row.count;
            assert!(row.mean_probability >= 0.3);
            assert!(row.actual_hotspots <= row.count);
        }
        let rendered = report.render();
        assert!(rendered.contains("hotspot triage for des_perf_1"));
    }

    #[test]
    fn explainer_round_trips_through_json() {
        let (explainer, bundle) = trained_on("fft_1");
        let json = explainer.to_json().expect("serialize");
        let restored = Explainer::from_json(&json).expect("deserialize");
        // Identical predictions and identical explanations.
        let i = bundle.features.n_samples() / 2;
        let a = explainer.explain_gcell(&bundle, i);
        let b = restored.explain_gcell(&bundle, i);
        assert_eq!(a.explanation.prediction, b.explanation.prediction);
        assert_eq!(a.explanation.contributions, b.explanation.contributions);
    }

    #[test]
    fn interactions_row_sums_recover_shap_values() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let case = &explainer.select_cases(&bundle, 1)[0];
        let inter = explainer.interactions(case);
        for (j, &phi) in case.explanation.contributions.iter().enumerate() {
            let row_sum: f64 = inter.row(j).iter().sum();
            assert!((row_sum - phi).abs() < 1e-8, "feature {j}: row sum {row_sum} vs phi {phi}");
        }
        let rendered = explainer.render_interactions(case, 5);
        assert!(rendered.contains("interactions"));
    }

    #[test]
    fn most_selected_cases_validate_against_oracle() {
        let (explainer, bundle) = trained_on("des_perf_1");
        let cases = explainer.select_cases(&bundle, 3);
        let ok = cases.iter().filter(|c| explainer.validate_case(c, &bundle)).count();
        assert!(
            ok * 2 >= cases.len(),
            "only {ok}/{} explanations consistent with oracle",
            cases.len()
        );
    }
}

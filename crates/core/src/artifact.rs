//! Versioned, checksummed model artifacts: the on-disk format that lets a
//! trained model move between flow iterations, machines, and tool versions
//! without silently serving garbage.
//!
//! # Format (version 1)
//!
//! A fixed 32-byte header followed by a `serde_json` payload:
//!
//! ```text
//! offset  size  field
//!      0     8  magic bytes  b"DRCSHAP\0"
//!      8     2  format version, u16 LE (currently 1)
//!     10     1  model kind    (0 = RF, 1 = RUSBoost, 2 = SVM-RBF, 3 = NN)
//!     11     1  reserved, must be 0
//!     12     8  feature-schema fingerprint, u64 LE
//!     20     8  payload length in bytes, u64 LE
//!     28     4  CRC32 (IEEE) over the payload, u32 LE
//!     32     —  serde_json payload of the model
//! ```
//!
//! Decoding validates strictly in this order — truncated header, magic,
//! version, model kind, reserved byte, schema fingerprint, payload length
//! (both truncation and trailing bytes), checksum, JSON payload — and every
//! rejection is a precise [`ArtifactError`] / [`SchemaError`] variant, so a
//! corrupted or mismatched artifact can never panic the serving path. See
//! `core::faults` for the harness that proves it byte-by-byte.
//!
//! Compatibility rule: readers accept only `version <= FORMAT_VERSION` that
//! they know how to decode (currently exactly 1); bumping the payload layout
//! bumps the version, and old readers reject new artifacts with
//! [`ArtifactError::UnsupportedVersion`] instead of misparsing them.

use std::path::Path;

use drcshap_features::FeatureSchema;
use drcshap_forest::{RandomForest, RusBoost};
use drcshap_ml::{ArtifactError, Classifier, DrcshapError, SchemaError};
use drcshap_nn::NeuralNet;
use drcshap_svm::Svm;

/// The artifact magic bytes.
pub const MAGIC: [u8; 8] = *b"DRCSHAP\0";
/// The current (and highest readable) format version.
pub const FORMAT_VERSION: u16 = 1;
/// Size of the fixed header.
pub const HEADER_LEN: usize = 32;

/// The model family stored in an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Random Forest (the paper's model).
    Rf,
    /// RUSBoost ensemble.
    RusBoost,
    /// SVM with RBF kernel.
    Svm,
    /// Feedforward neural net.
    Nn,
}

impl ModelKind {
    /// The header byte for this kind.
    pub fn code(self) -> u8 {
        match self {
            ModelKind::Rf => 0,
            ModelKind::RusBoost => 1,
            ModelKind::Svm => 2,
            ModelKind::Nn => 3,
        }
    }

    /// Decodes a header byte.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ModelKind::Rf),
            1 => Some(ModelKind::RusBoost),
            2 => Some(ModelKind::Svm),
            3 => Some(ModelKind::Nn),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::Rf => "RF",
            ModelKind::RusBoost => "RUSBoost",
            ModelKind::Svm => "SVM-RBF",
            ModelKind::Nn => "NN",
        })
    }
}

/// A trained model of any of the four serializable families, as stored in
/// (and restored from) an artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum SavedModel {
    /// Random Forest.
    Rf(RandomForest),
    /// RUSBoost ensemble.
    RusBoost(RusBoost),
    /// SVM-RBF.
    Svm(Svm),
    /// Feedforward neural net.
    Nn(NeuralNet),
}

impl SavedModel {
    /// Which family this model belongs to.
    pub fn kind(&self) -> ModelKind {
        match self {
            SavedModel::Rf(_) => ModelKind::Rf,
            SavedModel::RusBoost(_) => ModelKind::RusBoost,
            SavedModel::Svm(_) => ModelKind::Svm,
            SavedModel::Nn(_) => ModelKind::Nn,
        }
    }

    /// The feature count the model was trained on.
    pub fn n_features(&self) -> usize {
        match self {
            SavedModel::Rf(m) => m.n_features(),
            SavedModel::RusBoost(m) => m.n_features(),
            SavedModel::Svm(m) => m.n_features(),
            SavedModel::Nn(m) => m.n_features(),
        }
    }

    /// The model as a [`Classifier`] for scoring (including the validated
    /// `score_checked` boundary).
    pub fn as_classifier(&self) -> &dyn Classifier {
        match self {
            SavedModel::Rf(m) => m,
            SavedModel::RusBoost(m) => m,
            SavedModel::Svm(m) => m,
            SavedModel::Nn(m) => m,
        }
    }

    fn to_payload(&self) -> Result<Vec<u8>, DrcshapError> {
        let json = match self {
            SavedModel::Rf(m) => serde_json::to_vec(m),
            SavedModel::RusBoost(m) => serde_json::to_vec(m),
            SavedModel::Svm(m) => serde_json::to_vec(m),
            SavedModel::Nn(m) => serde_json::to_vec(m),
        };
        json.map_err(|e| ArtifactError::Payload(e.to_string()).into())
    }

    fn from_payload(kind: ModelKind, payload: &[u8]) -> Result<Self, DrcshapError> {
        let bad = |e: serde_json::Error| DrcshapError::from(ArtifactError::Payload(e.to_string()));
        Ok(match kind {
            ModelKind::Rf => SavedModel::Rf(serde_json::from_slice(payload).map_err(bad)?),
            ModelKind::RusBoost => {
                SavedModel::RusBoost(serde_json::from_slice(payload).map_err(bad)?)
            }
            ModelKind::Svm => SavedModel::Svm(serde_json::from_slice(payload).map_err(bad)?),
            ModelKind::Nn => SavedModel::Nn(serde_json::from_slice(payload).map_err(bad)?),
        })
    }
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3, reflected) of `data` — the checksum guarding the
/// artifact payload. Table-driven, table built at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finalize()
}

/// A streaming [`crc32`]: feed chunks with [`Crc32::update`] and close with
/// [`Crc32::finalize`]. Digesting incrementally is what lets callers (the
/// CLI's streaming score path, the serve smoke check) checksum unbounded
/// streams without buffering them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh digest; equivalent to having hashed zero bytes.
    pub fn new() -> Self {
        Self { state: !0u32 }
    }

    /// Feeds `data` into the digest.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state =
                (self.state >> 8) ^ CRC32_TABLE[((self.state ^ u32::from(b)) & 0xff) as usize];
        }
    }

    /// The CRC32 of everything fed so far. Does not consume the digest:
    /// further [`Crc32::update`] calls continue the same stream.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Assembles a versioned, checksummed container around `payload`.
///
/// The container is the generic carrier behind both model artifacts
/// ([`encode_model`], kind = a [`ModelKind`] code) and the supervisor's
/// stage checkpoints (`core::supervisor`, kind = a stage code). The `kind`
/// byte and `fingerprint` are *not* interpreted here; callers define their
/// own code spaces and bind the fingerprint to whatever identity matters
/// (feature schema, pipeline config).
pub fn encode_container(kind: u8, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out.push(0); // reserved
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a container's framing (magic, version, reserved byte,
/// fingerprint, payload length, CRC32) and returns the kind byte and the
/// payload slice. The kind byte is returned, not validated — its code space
/// belongs to the caller.
///
/// # Errors
///
/// A precise [`ArtifactError`] variant for each corruption class, or
/// [`SchemaError::FingerprintMismatch`] when the container was stamped with
/// a different fingerprint than `expected_fingerprint`.
pub fn decode_container(
    bytes: &[u8],
    expected_fingerprint: u64,
) -> Result<(u8, &[u8]), DrcshapError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::TooShort { needed: HEADER_LEN, found: bytes.len() }.into());
    }
    let magic: [u8; 8] = bytes[0..8].try_into().expect("8-byte slice");
    if magic != MAGIC {
        return Err(ArtifactError::BadMagic { found: magic }.into());
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2-byte slice"));
    if version == 0 || version > FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        }
        .into());
    }
    if bytes[11] != 0 {
        return Err(ArtifactError::ReservedNonZero { offset: 11 }.into());
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    if fingerprint != expected_fingerprint {
        return Err(SchemaError::FingerprintMismatch {
            expected: expected_fingerprint,
            found: fingerprint,
        }
        .into());
    }
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8-byte slice")) as usize;
    let found = bytes.len() - HEADER_LEN;
    if found < payload_len {
        return Err(ArtifactError::PayloadTruncated { expected: payload_len, found }.into());
    }
    if found > payload_len {
        return Err(ArtifactError::TrailingBytes {
            expected: HEADER_LEN + payload_len,
            found: bytes.len(),
        }
        .into());
    }
    let payload = &bytes[HEADER_LEN..];
    let stored = u32::from_le_bytes(bytes[28..32].try_into().expect("4-byte slice"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed }.into());
    }
    Ok((bytes[10], payload))
}

/// Serializes `model` into artifact bytes, stamping `schema_fingerprint`.
///
/// # Errors
///
/// [`ArtifactError::Payload`] if JSON serialization fails (practically
/// impossible for in-memory models).
pub fn encode_model(model: &SavedModel, schema_fingerprint: u64) -> Result<Vec<u8>, DrcshapError> {
    let payload = model.to_payload()?;
    Ok(encode_container(model.kind().code(), schema_fingerprint, &payload))
}

/// Decodes artifact bytes, validating the full container framing and the
/// model kind before touching the payload.
///
/// # Errors
///
/// Every [`decode_container`] rejection, plus
/// [`ArtifactError::UnknownModelKind`] for a kind byte outside the
/// [`ModelKind`] code space.
pub fn decode_model(bytes: &[u8], expected_fingerprint: u64) -> Result<SavedModel, DrcshapError> {
    let (code, payload) = decode_container(bytes, expected_fingerprint)?;
    let kind = ModelKind::from_code(code).ok_or(ArtifactError::UnknownModelKind(code))?;
    SavedModel::from_payload(kind, payload)
}

/// Checks that `model` and `schema` agree on the feature count.
fn check_feature_count(model: &SavedModel, schema: &FeatureSchema) -> Result<(), DrcshapError> {
    if model.n_features() != schema.len() {
        return Err(SchemaError::FeatureCountMismatch {
            expected: schema.len(),
            found: model.n_features(),
        }
        .into());
    }
    Ok(())
}

/// Saves `model` to `path` as a versioned, checksummed artifact bound to
/// `schema`.
///
/// # Errors
///
/// [`SchemaError::FeatureCountMismatch`] if the model does not fit the
/// schema; [`DrcshapError::Io`] on filesystem failure.
pub fn save_model(
    path: impl AsRef<Path>,
    model: &SavedModel,
    schema: &FeatureSchema,
) -> Result<(), DrcshapError> {
    let path = path.as_ref();
    check_feature_count(model, schema)?;
    let bytes = encode_model(model, schema.fingerprint())?;
    write_atomic(path, &bytes)
}

/// Publishes `bytes` at `path` with full crash-atomic discipline: write to
/// a `*.tmp` sibling, fsync the file, rename over `path`, fsync the parent
/// directory. After a crash at any point, `path` holds either the complete
/// old content or the complete new content — never a torn mix.
///
/// # Errors
///
/// [`DrcshapError::Io`] naming the path of the failing step.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), DrcshapError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let io = |p: &Path| {
        let p = p.display().to_string();
        move |e: std::io::Error| DrcshapError::io(p.clone(), e)
    };
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp).map_err(io(&tmp))?;
        file.write_all(bytes).map_err(io(&tmp))?;
        file.sync_all().map_err(io(&tmp))?;
    }
    std::fs::rename(&tmp, path).map_err(io(path))?;
    // Make the rename itself durable: without the directory fsync a crash
    // can still roll the directory entry back to the old file.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let dir = std::fs::File::open(parent).map_err(io(parent))?;
        dir.sync_all().map_err(io(parent))?;
    }
    Ok(())
}

/// Loads and fully validates a model artifact from `path` against `schema`.
///
/// # Errors
///
/// [`DrcshapError::Io`] if the file cannot be read; otherwise every
/// [`decode_model`] rejection, plus [`SchemaError::FeatureCountMismatch`]
/// if the decoded model disagrees with `schema` on the feature count.
pub fn load_model(
    path: impl AsRef<Path>,
    schema: &FeatureSchema,
) -> Result<SavedModel, DrcshapError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| DrcshapError::io(path.display().to_string(), e))?;
    let model = decode_model(&bytes, schema.fingerprint())?;
    check_feature_count(&model, schema)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_forest::RandomForestTrainer;
    use drcshap_ml::{Dataset, Trainer};

    fn tiny_forest() -> RandomForest {
        let x: Vec<f32> = (0..40).flat_map(|i| vec![(i % 2) as f32, 0.5]).collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect();
        let data = Dataset::from_parts(x, y, vec![0; 40], 2);
        RandomForestTrainer { n_trees: 5, ..Default::default() }.fit(&data, 7)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips_any_kind_byte() {
        let payload = br#"{"stage":"route"}"#;
        let bytes = encode_container(0x13, 77, payload);
        let (kind, body) = decode_container(&bytes, 77).expect("decode");
        assert_eq!(kind, 0x13);
        assert_eq!(body, payload.as_slice());
        // Wrong fingerprint is rejected before the payload is touched.
        assert!(matches!(
            decode_container(&bytes, 78),
            Err(DrcshapError::Schema(SchemaError::FingerprintMismatch { expected: 78, found: 77 }))
        ));
        // A payload bit-flip is caught by the checksum.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 3] ^= 0x20;
        assert!(matches!(
            decode_container(&flipped, 77),
            Err(DrcshapError::Artifact(ArtifactError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn encode_decode_round_trips_bit_exact() {
        let rf = tiny_forest();
        let model = SavedModel::Rf(rf.clone());
        let bytes = encode_model(&model, 42).expect("encode");
        assert_eq!(&bytes[..8], &MAGIC);
        let restored = decode_model(&bytes, 42).expect("decode");
        let SavedModel::Rf(back) = &restored else { panic!("wrong kind") };
        assert_eq!(back, &rf);
        // Identical scores, bit for bit.
        for x in [[0.0f32, 0.5], [1.0, 0.5], [0.3, 0.1]] {
            assert_eq!(back.predict_proba(&x).to_bits(), rf.predict_proba(&x).to_bits());
        }
    }

    #[test]
    fn every_header_field_is_validated() {
        let model = SavedModel::Rf(tiny_forest());
        let good = encode_model(&model, 7).expect("encode");

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_model(&bad, 7),
            Err(DrcshapError::Artifact(ArtifactError::BadMagic { .. }))
        ));

        let mut bad = good.clone();
        bad[8] = 0xff; // version 0xff01 or similar
        assert!(matches!(
            decode_model(&bad, 7),
            Err(DrcshapError::Artifact(ArtifactError::UnsupportedVersion { .. }))
        ));

        let mut bad = good.clone();
        bad[10] = 9;
        assert!(matches!(
            decode_model(&bad, 7),
            Err(DrcshapError::Artifact(ArtifactError::UnknownModelKind(9)))
        ));

        let mut bad = good.clone();
        bad[11] = 1;
        assert!(matches!(
            decode_model(&bad, 7),
            Err(DrcshapError::Artifact(ArtifactError::ReservedNonZero { offset: 11 }))
        ));

        let mut bad = good.clone();
        bad[12] ^= 0x01; // fingerprint
        assert!(matches!(
            decode_model(&bad, 7),
            Err(DrcshapError::Schema(SchemaError::FingerprintMismatch { .. }))
        ));

        // Wrong expected fingerprint on a pristine artifact.
        assert!(matches!(
            decode_model(&good, 8),
            Err(DrcshapError::Schema(SchemaError::FingerprintMismatch { expected: 8, found: 7 }))
        ));
    }

    #[test]
    fn truncation_extension_and_bitrot_are_rejected() {
        let model = SavedModel::Rf(tiny_forest());
        let good = encode_model(&model, 7).expect("encode");

        assert!(matches!(
            decode_model(&good[..10], 7),
            Err(DrcshapError::Artifact(ArtifactError::TooShort { needed: 32, found: 10 }))
        ));
        assert!(matches!(
            decode_model(&good[..good.len() - 1], 7),
            Err(DrcshapError::Artifact(ArtifactError::PayloadTruncated { .. }))
        ));
        let mut extended = good.clone();
        extended.push(0);
        assert!(matches!(
            decode_model(&extended, 7),
            Err(DrcshapError::Artifact(ArtifactError::TrailingBytes { .. }))
        ));
        let mut flipped = good.clone();
        let mid = HEADER_LEN + (good.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            decode_model(&flipped, 7),
            Err(DrcshapError::Artifact(ArtifactError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn kind_payload_mismatch_fails_to_decode() {
        // Forge the kind byte from RF to RUSBoost: CRC still matches, so the
        // rejection must come from the payload decoder.
        let model = SavedModel::Rf(tiny_forest());
        let mut bytes = encode_model(&model, 7).expect("encode");
        bytes[10] = ModelKind::RusBoost.code();
        assert!(matches!(
            decode_model(&bytes, 7),
            Err(DrcshapError::Artifact(ArtifactError::Payload(_)))
        ));
    }

    #[test]
    fn save_load_checks_schema_feature_count() {
        // A 2-feature forest cannot be bound to the 387-feature schema.
        let schema = FeatureSchema::paper_387();
        let model = SavedModel::Rf(tiny_forest());
        let dir = std::env::temp_dir().join("drcshap_artifact_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("two_feature.model");
        let e = save_model(&path, &model, &schema).unwrap_err();
        assert!(matches!(
            e,
            DrcshapError::Schema(SchemaError::FeatureCountMismatch { expected: 387, found: 2 })
        ));
    }

    #[test]
    fn load_reports_missing_file_as_io() {
        let schema = FeatureSchema::paper_387();
        let e = load_model("/nonexistent/nowhere.model", &schema).unwrap_err();
        assert!(matches!(e, DrcshapError::Io { .. }), "{e}");
        assert!(e.to_string().contains("nowhere.model"));
    }

    #[test]
    fn model_kind_codes_round_trip() {
        for kind in [ModelKind::Rf, ModelKind::RusBoost, ModelKind::Svm, ModelKind::Nn] {
            assert_eq!(ModelKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ModelKind::from_code(4), None);
    }

    #[test]
    fn streaming_crc32_matches_one_shot() {
        let data: Vec<u8> = (0u16..2048).map(|i| (i % 251) as u8).collect();
        let reference = crc32(&data);
        // Feed in ragged chunks, including empty ones.
        let mut digest = Crc32::new();
        for chunk in [&data[..1], &data[1..1], &data[1..700], &data[700..2048]] {
            digest.update(chunk);
        }
        assert_eq!(digest.finalize(), reference);
        // The known-answer vector for IEEE CRC32.
        let mut check = Crc32::new();
        check.update(b"123456789");
        assert_eq!(check.finalize(), 0xcbf4_3926);
        assert_eq!(Crc32::default().finalize(), crc32(&[]));
    }
}

//! The routability fix loop the paper's introduction motivates: predict DRC
//! hotspots at the global-routing stage, pick the worst offenders, rip up
//! and reroute the traffic crossing them ([`drcshap_route::reroute_around`]),
//! re-extract features, and re-predict — all without detailed routing.
//!
//! Each iteration produces a real (legal) new global-routing state, so the
//! recorded risk trajectory reflects what the router can actually deliver,
//! not a synthetic congestion edit.

use drcshap_features::extract_design;
use drcshap_geom::budget::{BudgetState, Interrupted, StageBudget};
use drcshap_geom::GcellId;
use drcshap_route::{reroute_around_budgeted, RouteConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::explain::Explainer;
use crate::pipeline::DesignBundle;

/// Per-iteration record of the fix loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixIteration {
    /// Cells predicted at or above the threshold *before* this iteration's
    /// reroute.
    pub predicted_hotspots: usize,
    /// Mean predicted probability over those cells.
    pub mean_risk: f64,
    /// Connections ripped up and rerouted.
    pub rerouted_conns: usize,
    /// Total edge overflow after the reroute.
    pub edge_overflow: f64,
}

/// The outcome of a [`run_fix_loop`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixLoopReport {
    /// One record per executed iteration.
    pub iterations: Vec<FixIteration>,
    /// Predicted hotspots remaining after the final reroute.
    pub remaining_hotspots: usize,
    /// Mean predicted probability over the remaining hotspots (0 if none).
    pub remaining_mean_risk: f64,
    /// True when the loop stopped with hotspots still predicted — because a
    /// round rerouted nothing, the wall-clock budget ran out, or the
    /// iteration budget was exhausted. False when the loop converged (no
    /// cell scores at or above the threshold any more).
    #[serde(default)]
    pub stalled: bool,
}

impl FixLoopReport {
    /// Renders the risk trajectory as a small table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>5} {:>12} {:>10} {:>10} {:>12}\n",
            "iter", "predicted", "mean p", "rerouted", "overflow"
        );
        for (k, it) in self.iterations.iter().enumerate() {
            out.push_str(&format!(
                "{:>5} {:>12} {:>10.3} {:>10} {:>12.1}\n",
                k, it.predicted_hotspots, it.mean_risk, it.rerouted_conns, it.edge_overflow
            ));
        }
        out.push_str(&format!(
            "final {:>12} {:>10.3}\n",
            self.remaining_hotspots, self.remaining_mean_risk
        ));
        out
    }
}

/// Predicted hotspots of the bundle's current state: `(grid index, p)` for
/// every cell scoring at or above `threshold`, strongest first.
fn predicted_hotspots(
    explainer: &Explainer,
    bundle: &DesignBundle,
    threshold: f64,
) -> Vec<(usize, f64)> {
    let mut hits: Vec<(usize, f64)> = (0..bundle.features.n_samples())
        .map(|i| (i, explainer.forest().predict_proba(bundle.features.row(i))))
        .filter(|&(_, p)| p >= threshold)
        .collect();
    hits.sort_by(|a, b| b.1.total_cmp(&a.1));
    hits
}

/// Runs up to `max_iterations` predict→reroute rounds on `bundle`, mutating
/// its route and features in place. Stops early when nothing scores at or
/// above `threshold`, a round reroutes nothing, or `budget` runs out —
/// whichever comes first; the report's `stalled` flag says whether hotspots
/// were still predicted when the loop stopped.
///
/// `targets_per_iter` caps how many hotspots each round attacks (the
/// strongest predictions first). On cancellation mid-reroute the round's
/// partial work is discarded and the bundle keeps its previous route.
#[allow(clippy::too_many_arguments)] // established call signature + budget
pub fn run_fix_loop(
    explainer: &Explainer,
    bundle: &mut DesignBundle,
    config: &RouteConfig,
    threshold: f64,
    targets_per_iter: usize,
    max_iterations: usize,
    seed: u64,
    budget: &StageBudget,
) -> FixLoopReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut iterations = Vec::new();
    for _ in 0..max_iterations {
        if budget.check() != BudgetState::Within {
            break;
        }
        let hits = predicted_hotspots(explainer, bundle, threshold);
        if hits.is_empty() {
            break;
        }
        let mean_risk = hits.iter().map(|&(_, p)| p).sum::<f64>() / hits.len() as f64;
        let targets: Vec<GcellId> = hits
            .iter()
            .take(targets_per_iter)
            .map(|&(i, _)| bundle.design.grid.cell_at_index(i))
            .collect();
        let (new_route, rerouted) = match reroute_around_budgeted(
            &bundle.design,
            &bundle.route,
            &targets,
            config,
            &mut rng,
            budget,
        ) {
            Ok(result) => result,
            Err(Interrupted) => break,
        };
        let no_progress = rerouted == 0;
        iterations.push(FixIteration {
            predicted_hotspots: hits.len(),
            mean_risk,
            rerouted_conns: rerouted,
            edge_overflow: new_route.edge_overflow,
        });
        bundle.route = new_route;
        bundle.features = extract_design(&bundle.design, &bundle.route);
        if no_progress {
            break;
        }
    }
    let remaining = predicted_hotspots(explainer, bundle, threshold);
    let remaining_mean_risk = if remaining.is_empty() {
        0.0
    } else {
        remaining.iter().map(|&(_, p)| p).sum::<f64>() / remaining.len() as f64
    };
    FixLoopReport {
        iterations,
        remaining_hotspots: remaining.len(),
        remaining_mean_risk,
        stalled: !remaining.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_design, PipelineConfig};
    use drcshap_forest::RandomForestTrainer;
    use drcshap_netlist::suite;

    #[test]
    fn fix_loop_reduces_predicted_hotspots() {
        let pconfig = PipelineConfig { scale: 0.25, ..Default::default() };
        let mut bundle = build_design(&suite::spec("des_perf_1").unwrap(), &pconfig);
        // Self-trained model: the loop mechanics are what is under test.
        let trainer = RandomForestTrainer { n_trees: 30, ..Default::default() };
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 7);
        let route_config = pconfig.route_for(&bundle.design.spec);

        let hits = predicted_hotspots(&explainer, &bundle, 0.3);
        assert!(!hits.is_empty(), "no predicted hotspots to fix");
        // Track the cells the first round will attack: rerouting must cut
        // *their* risk (displaced congestion may raise neighbours — the
        // whack-a-mole a real routability loop also faces).
        let targets: Vec<usize> = hits.iter().take(10).map(|&(i, _)| i).collect();
        let risk_of = |b: &DesignBundle| {
            targets
                .iter()
                .map(|&i| explainer.forest().predict_proba(b.features.row(i)))
                .sum::<f64>()
                / targets.len() as f64
        };
        let before = risk_of(&bundle);
        let report = run_fix_loop(
            &explainer,
            &mut bundle,
            &route_config,
            0.3,
            10,
            3,
            11,
            &StageBudget::unlimited(),
        );
        assert!(!report.iterations.is_empty());
        assert!(report.iterations[0].rerouted_conns > 0, "nothing rerouted");
        let after = risk_of(&bundle);
        assert!(
            after < before,
            "risk at the attacked cells did not drop: {before:.3} -> {after:.3}"
        );
        let rendered = report.render();
        assert!(rendered.contains("rerouted"));
    }

    #[test]
    fn fix_loop_halts_when_nothing_scores_above_threshold() {
        let pconfig = PipelineConfig { scale: 0.2, ..Default::default() };
        let mut bundle = build_design(&suite::spec("des_perf_b").unwrap(), &pconfig);
        let trainer = RandomForestTrainer { n_trees: 5, ..Default::default() };
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 1);
        let route_config = pconfig.route_for(&bundle.design.spec);
        // des_perf_b is DRC-clean: the self-trained model scores ~0 everywhere.
        let report = run_fix_loop(
            &explainer,
            &mut bundle,
            &route_config,
            0.5,
            5,
            3,
            1,
            &StageBudget::unlimited(),
        );
        assert!(report.iterations.is_empty());
        assert_eq!(report.remaining_hotspots, 0);
        assert!(!report.stalled, "a converged loop is not stalled");
    }

    #[test]
    fn fix_loop_expired_budget_stops_early_and_reports_stall() {
        let pconfig = PipelineConfig { scale: 0.25, ..Default::default() };
        let mut bundle = build_design(&suite::spec("des_perf_1").unwrap(), &pconfig);
        let trainer = RandomForestTrainer { n_trees: 10, ..Default::default() };
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 7);
        let route_config = pconfig.route_for(&bundle.design.spec);
        assert!(
            !predicted_hotspots(&explainer, &bundle, 0.3).is_empty(),
            "no predicted hotspots to stall on"
        );
        let budget = StageBudget::with_deadline(std::time::Duration::ZERO);
        let report = run_fix_loop(&explainer, &mut bundle, &route_config, 0.3, 10, 3, 11, &budget);
        assert!(report.iterations.is_empty(), "expired budget must stop before any round");
        assert!(report.stalled, "hotspots remain, so the loop stalled");
        assert!(report.remaining_hotspots > 0);
    }
}

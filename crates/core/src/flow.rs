//! The routability fix loop the paper's introduction motivates: predict DRC
//! hotspots at the global-routing stage, pick the worst offenders, rip up
//! and reroute the traffic crossing them ([`drcshap_route::reroute_around`]),
//! re-extract features, and re-predict — all without detailed routing.
//!
//! Each iteration produces a real (legal) new global-routing state, so the
//! recorded risk trajectory reflects what the router can actually deliver,
//! not a synthetic congestion edit.

use drcshap_features::extract_design;
use drcshap_geom::GcellId;
use drcshap_route::{reroute_around, RouteConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::explain::Explainer;
use crate::pipeline::DesignBundle;

/// Per-iteration record of the fix loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixIteration {
    /// Cells predicted at or above the threshold *before* this iteration's
    /// reroute.
    pub predicted_hotspots: usize,
    /// Mean predicted probability over those cells.
    pub mean_risk: f64,
    /// Connections ripped up and rerouted.
    pub rerouted_conns: usize,
    /// Total edge overflow after the reroute.
    pub edge_overflow: f64,
}

/// The outcome of a [`run_fix_loop`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixLoopReport {
    /// One record per executed iteration.
    pub iterations: Vec<FixIteration>,
    /// Predicted hotspots remaining after the final reroute.
    pub remaining_hotspots: usize,
    /// Mean predicted probability over the remaining hotspots (0 if none).
    pub remaining_mean_risk: f64,
}

impl FixLoopReport {
    /// Renders the risk trajectory as a small table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:>5} {:>12} {:>10} {:>10} {:>12}\n",
            "iter", "predicted", "mean p", "rerouted", "overflow"
        );
        for (k, it) in self.iterations.iter().enumerate() {
            out.push_str(&format!(
                "{:>5} {:>12} {:>10.3} {:>10} {:>12.1}\n",
                k, it.predicted_hotspots, it.mean_risk, it.rerouted_conns, it.edge_overflow
            ));
        }
        out.push_str(&format!(
            "final {:>12} {:>10.3}\n",
            self.remaining_hotspots, self.remaining_mean_risk
        ));
        out
    }
}

/// Predicted hotspots of the bundle's current state: `(grid index, p)` for
/// every cell scoring at or above `threshold`, strongest first.
fn predicted_hotspots(
    explainer: &Explainer,
    bundle: &DesignBundle,
    threshold: f64,
) -> Vec<(usize, f64)> {
    let mut hits: Vec<(usize, f64)> = (0..bundle.features.n_samples())
        .map(|i| (i, explainer.forest().predict_proba(bundle.features.row(i))))
        .filter(|&(_, p)| p >= threshold)
        .collect();
    hits.sort_by(|a, b| b.1.total_cmp(&a.1));
    hits
}

/// Runs up to `max_iterations` predict→reroute rounds on `bundle`, mutating
/// its route and features in place. Stops early when nothing scores at or
/// above `threshold` or a round reroutes nothing.
///
/// `targets_per_iter` caps how many hotspots each round attacks (the
/// strongest predictions first).
pub fn run_fix_loop(
    explainer: &Explainer,
    bundle: &mut DesignBundle,
    config: &RouteConfig,
    threshold: f64,
    targets_per_iter: usize,
    max_iterations: usize,
    seed: u64,
) -> FixLoopReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut iterations = Vec::new();
    for _ in 0..max_iterations {
        let hits = predicted_hotspots(explainer, bundle, threshold);
        if hits.is_empty() {
            break;
        }
        let mean_risk = hits.iter().map(|&(_, p)| p).sum::<f64>() / hits.len() as f64;
        let targets: Vec<GcellId> = hits
            .iter()
            .take(targets_per_iter)
            .map(|&(i, _)| bundle.design.grid.cell_at_index(i))
            .collect();
        let (new_route, rerouted) =
            reroute_around(&bundle.design, &bundle.route, &targets, config, &mut rng);
        let stalled = rerouted == 0;
        iterations.push(FixIteration {
            predicted_hotspots: hits.len(),
            mean_risk,
            rerouted_conns: rerouted,
            edge_overflow: new_route.edge_overflow,
        });
        bundle.route = new_route;
        bundle.features = extract_design(&bundle.design, &bundle.route);
        if stalled {
            break;
        }
    }
    let remaining = predicted_hotspots(explainer, bundle, threshold);
    let remaining_mean_risk = if remaining.is_empty() {
        0.0
    } else {
        remaining.iter().map(|&(_, p)| p).sum::<f64>() / remaining.len() as f64
    };
    FixLoopReport { iterations, remaining_hotspots: remaining.len(), remaining_mean_risk }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{build_design, PipelineConfig};
    use drcshap_forest::RandomForestTrainer;
    use drcshap_netlist::suite;

    #[test]
    fn fix_loop_reduces_predicted_hotspots() {
        let pconfig = PipelineConfig { scale: 0.25, ..Default::default() };
        let mut bundle = build_design(&suite::spec("des_perf_1").unwrap(), &pconfig);
        // Self-trained model: the loop mechanics are what is under test.
        let trainer = RandomForestTrainer { n_trees: 30, ..Default::default() };
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 7);
        let route_config = pconfig.route_for(&bundle.design.spec);

        let hits = predicted_hotspots(&explainer, &bundle, 0.3);
        assert!(!hits.is_empty(), "no predicted hotspots to fix");
        // Track the cells the first round will attack: rerouting must cut
        // *their* risk (displaced congestion may raise neighbours — the
        // whack-a-mole a real routability loop also faces).
        let targets: Vec<usize> = hits.iter().take(10).map(|&(i, _)| i).collect();
        let risk_of = |b: &DesignBundle| {
            targets
                .iter()
                .map(|&i| explainer.forest().predict_proba(b.features.row(i)))
                .sum::<f64>()
                / targets.len() as f64
        };
        let before = risk_of(&bundle);
        let report = run_fix_loop(&explainer, &mut bundle, &route_config, 0.3, 10, 3, 11);
        assert!(!report.iterations.is_empty());
        assert!(report.iterations[0].rerouted_conns > 0, "nothing rerouted");
        let after = risk_of(&bundle);
        assert!(
            after < before,
            "risk at the attacked cells did not drop: {before:.3} -> {after:.3}"
        );
        let rendered = report.render();
        assert!(rendered.contains("rerouted"));
    }

    #[test]
    fn fix_loop_halts_when_nothing_scores_above_threshold() {
        let pconfig = PipelineConfig { scale: 0.2, ..Default::default() };
        let mut bundle = build_design(&suite::spec("des_perf_b").unwrap(), &pconfig);
        let trainer = RandomForestTrainer { n_trees: 5, ..Default::default() };
        let explainer = Explainer::train(std::slice::from_ref(&bundle), &trainer, 1);
        let route_config = pconfig.route_for(&bundle.design.spec);
        // des_perf_b is DRC-clean: the self-trained model scores ~0 everywhere.
        let report = run_fix_loop(&explainer, &mut bundle, &route_config, 0.5, 5, 3, 1);
        assert!(report.iterations.is_empty());
        assert_eq!(report.remaining_hotspots, 0);
    }
}

//! The model zoo: the five families compared in Table II, with the paper's
//! hyperparameter anchors (RF: 500 unpruned trees; RUSBoost: 100 rounds;
//! NN-1: 1×40 ReLU; NN-2: 40+10) and tuning grids for grouped grid search.

use std::time::Instant;

use drcshap_forest::{RandomForestTrainer, RusBoostTrainer};
use drcshap_ml::tune::SelectionMetric;
use drcshap_ml::{grid_search, Classifier, Dataset, DrcshapError, GridSearchOutcome, Trainer};
use drcshap_nn::NnTrainer;
use drcshap_svm::SvmTrainer;
use serde::{Deserialize, Serialize};

/// The five model families of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// SVM with RBF kernel (Chan et al., Chen et al.).
    SvmRbf,
    /// RUSBoost (Tabrizi et al. 2017).
    RusBoost,
    /// Feedforward NN, one hidden layer of 40 (Tabrizi et al. 2018).
    Nn1,
    /// Feedforward NN, hidden layers 40 + 10.
    Nn2,
    /// Random Forest — the paper's proposed model.
    Rf,
}

impl ModelFamily {
    /// All families, in Table II column order.
    pub const ALL: [ModelFamily; 5] = [
        ModelFamily::SvmRbf,
        ModelFamily::RusBoost,
        ModelFamily::Nn1,
        ModelFamily::Nn2,
        ModelFamily::Rf,
    ];

    /// The Table II column header.
    pub fn display_name(self) -> &'static str {
        match self {
            ModelFamily::SvmRbf => "SVM-RBF",
            ModelFamily::RusBoost => "RUSBoost",
            ModelFamily::Nn1 => "NN-1",
            ModelFamily::Nn2 => "NN-2",
            ModelFamily::Rf => "RF (this work)",
        }
    }

    /// Grid-searches this family on `train` (grouped CV on AUPRC, per the
    /// paper) and retrains the winner on all of `train`.
    ///
    /// # Panics
    ///
    /// Panics if `train` has fewer than two distinct design groups; use
    /// [`ModelFamily::try_tune_and_fit`] on paths that must not panic.
    pub fn tune_and_fit(self, train: &Dataset, budget: ModelBudget, seed: u64) -> TrainedModel {
        self.try_tune_and_fit(train, budget, seed)
            .expect("training data must span at least two design groups")
    }

    /// Validated variant of [`ModelFamily::tune_and_fit`].
    ///
    /// # Errors
    ///
    /// [`drcshap_ml::InputError::DegenerateGroups`] when `train` has fewer
    /// than two distinct design groups (grouped CV cannot form a fold).
    pub fn try_tune_and_fit(
        self,
        train: &Dataset,
        budget: ModelBudget,
        seed: u64,
    ) -> Result<TrainedModel, DrcshapError> {
        match self {
            ModelFamily::Rf => tune_family(self, &budget.rf_grid(), train, seed),
            ModelFamily::SvmRbf => tune_family(self, &budget.svm_grid(), train, seed),
            ModelFamily::RusBoost => tune_family(self, &budget.rus_grid(), train, seed),
            ModelFamily::Nn1 => tune_family(self, &budget.nn_grid(false), train, seed),
            ModelFamily::Nn2 => tune_family(self, &budget.nn_grid(true), train, seed),
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Compute budget for training: `Quick` keeps tests and default harness runs
/// fast at reduced dataset scale; `Paper` uses the paper's settings
/// (500-tree RF, 100-round RUSBoost, full NN epochs, bigger grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelBudget {
    /// Reduced grids and iteration counts.
    Quick,
    /// The paper's settings.
    Paper,
}

impl ModelBudget {
    fn rf_grid(self) -> Vec<RandomForestTrainer> {
        match self {
            ModelBudget::Quick => vec![
                RandomForestTrainer { n_trees: 60, ..Default::default() },
                RandomForestTrainer { n_trees: 60, min_samples_leaf: 4.0, ..Default::default() },
            ],
            ModelBudget::Paper => vec![
                RandomForestTrainer { n_trees: 500, ..Default::default() },
                RandomForestTrainer { n_trees: 500, min_samples_leaf: 4.0, ..Default::default() },
                RandomForestTrainer { n_trees: 300, ..Default::default() },
            ],
        }
    }

    fn svm_grid(self) -> Vec<SvmTrainer> {
        match self {
            ModelBudget::Quick => vec![
                SvmTrainer {
                    c: 1.0,
                    max_samples: Some(1500),
                    max_sweeps: 25,
                    ..Default::default()
                },
                SvmTrainer {
                    c: 10.0,
                    positive_weight: 4.0,
                    max_samples: Some(1500),
                    max_sweeps: 25,
                    ..Default::default()
                },
            ],
            ModelBudget::Paper => vec![
                SvmTrainer { c: 1.0, max_samples: Some(8000), ..Default::default() },
                SvmTrainer { c: 10.0, max_samples: Some(8000), ..Default::default() },
                SvmTrainer {
                    c: 10.0,
                    positive_weight: 4.0,
                    max_samples: Some(8000),
                    ..Default::default()
                },
                SvmTrainer {
                    c: 100.0,
                    positive_weight: 4.0,
                    max_samples: Some(8000),
                    ..Default::default()
                },
            ],
        }
    }

    fn rus_grid(self) -> Vec<RusBoostTrainer> {
        match self {
            ModelBudget::Quick => vec![
                RusBoostTrainer { n_iterations: 40, ..Default::default() },
                RusBoostTrainer { n_iterations: 40, weak_depth: 6, ..Default::default() },
            ],
            ModelBudget::Paper => vec![
                RusBoostTrainer { n_iterations: 100, ..Default::default() },
                RusBoostTrainer { n_iterations: 100, weak_depth: 6, ..Default::default() },
                RusBoostTrainer { n_iterations: 100, target_ratio: 2.0, ..Default::default() },
            ],
        }
    }

    fn nn_grid(self, two_layers: bool) -> Vec<NnTrainer> {
        let hidden = if two_layers { vec![40, 10] } else { vec![40] };
        match self {
            ModelBudget::Quick => vec![
                NnTrainer { hidden: hidden.clone(), epochs: 25, ..Default::default() },
                NnTrainer { hidden, epochs: 25, positive_weight: 4.0, ..Default::default() },
            ],
            ModelBudget::Paper => vec![
                NnTrainer { hidden: hidden.clone(), epochs: 120, ..Default::default() },
                NnTrainer {
                    hidden: hidden.clone(),
                    epochs: 120,
                    positive_weight: 4.0,
                    ..Default::default()
                },
                NnTrainer {
                    hidden,
                    epochs: 120,
                    learning_rate: 3e-3,
                    positive_weight: 4.0,
                    ..Default::default()
                },
            ],
        }
    }
}

/// A tuned-and-retrained model with its tuning record and timings.
pub struct TrainedModel {
    /// The fitted winner.
    pub model: Box<dyn Classifier>,
    /// Which family this is.
    pub family: ModelFamily,
    /// The grid-search record (fold scores per candidate).
    pub tune: GridSearchOutcome,
    /// Wall-clock seconds spent in grid-search CV.
    pub tune_seconds: f64,
    /// Wall-clock seconds spent fitting the final model.
    pub fit_seconds: f64,
}

fn tune_family<T>(
    family: ModelFamily,
    grid: &[T],
    train: &Dataset,
    seed: u64,
) -> Result<TrainedModel, DrcshapError>
where
    T: Trainer,
    T::Model: 'static,
{
    let t0 = Instant::now();
    let tune = grid_search(grid, train, SelectionMetric::Auprc, seed)?;
    let tune_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let model = grid[tune.best_index].fit(train, seed);
    let fit_seconds = t1.elapsed().as_secs_f64();
    Ok(TrainedModel { model: Box::new(model), family, tune, tune_seconds, fit_seconds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Imbalanced learnable data across 4 groups.
    fn grouped_data(seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut g = Vec::new();
        for group in 1..=4u32 {
            for _ in 0..60 {
                let label = rng.gen_bool(0.15);
                let v: f32 = if label { rng.gen_range(0.5..1.0) } else { rng.gen_range(0.0..0.6) };
                x.push(v);
                x.push(rng.gen_range(0.0..1.0));
                y.push(label);
                g.push(group);
            }
        }
        Dataset::from_parts(x, y, g, 2)
    }

    #[test]
    fn every_family_tunes_and_fits() {
        let train = grouped_data(1);
        for family in ModelFamily::ALL {
            let trained = family.tune_and_fit(&train, ModelBudget::Quick, 3);
            assert_eq!(trained.family, family);
            assert!(!trained.tune.results.is_empty());
            assert!(trained.fit_seconds >= 0.0);
            // The fitted model produces finite scores.
            let s = trained.model.score(&[0.8, 0.2]);
            assert!(s.is_finite());
        }
    }

    #[test]
    fn rf_ranks_positives_above_negatives() {
        let train = grouped_data(2);
        let trained = ModelFamily::Rf.tune_and_fit(&train, ModelBudget::Quick, 5);
        assert!(trained.model.score(&[0.9, 0.5]) > trained.model.score(&[0.1, 0.5]));
    }

    #[test]
    fn display_names_match_table2_headers() {
        assert_eq!(ModelFamily::Rf.display_name(), "RF (this work)");
        assert_eq!(ModelFamily::SvmRbf.to_string(), "SVM-RBF");
        assert_eq!(ModelFamily::ALL.len(), 5);
    }

    #[test]
    fn paper_budget_trains_end_to_end_on_small_data() {
        // The Paper grids must be runnable, not just well-formed — on a
        // small dataset they finish quickly (500 bagged trees of ~200
        // samples are shallow; SVM/NN caps don't bite).
        let train = grouped_data(3);
        for family in [ModelFamily::Rf, ModelFamily::RusBoost] {
            let trained = family.tune_and_fit(&train, ModelBudget::Paper, 1);
            assert!(trained.model.score(&[0.9, 0.1]).is_finite());
        }
    }

    #[test]
    fn paper_budget_uses_paper_anchors() {
        let rf = ModelBudget::Paper.rf_grid();
        assert!(rf.iter().any(|t| t.n_trees == 500 && t.max_depth.is_none()));
        let rus = ModelBudget::Paper.rus_grid();
        assert!(rus.iter().all(|t| t.n_iterations == 100));
        let nn1 = ModelBudget::Paper.nn_grid(false);
        assert!(nn1.iter().all(|t| t.hidden == vec![40]));
        let nn2 = ModelBudget::Paper.nn_grid(true);
        assert!(nn2.iter().all(|t| t.hidden == vec![40, 10]));
    }
}

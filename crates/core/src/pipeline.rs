//! The data-acquisition pipeline of the paper's Fig. 1, applied to the
//! synthetic suite: generate → place → connect → globally route → label →
//! extract features.

use drcshap_drc::{run_drc, DrcConfig, DrcReport};
use drcshap_features::{extract_design, FeatureMatrix};
use drcshap_ml::{Dataset, DrcshapError, InputError};
use drcshap_netlist::{suite::DesignSpec, synth, Design};
use drcshap_place::place;
use drcshap_route::{route_design, RouteConfig, RouteOutcome};
use drcshap_telemetry as telemetry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Pipeline parameters: dataset scale and the substrate configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Linear design scale (1.0 = paper scale; the default 0.25 yields
    /// roughly 1/16 of the paper's ~146k samples).
    pub scale: f64,
    /// Base router configuration (capacity is derated per design below).
    pub route: RouteConfig,
    /// DRC oracle configuration.
    pub drc: DrcConfig,
    /// How strongly design stress derates routing capacity:
    /// `capacity_scale = 1 − derate_slope · (stress − 0.25)`.
    pub derate_slope: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            scale: 0.25,
            route: RouteConfig::default(),
            drc: DrcConfig::default(),
            derate_slope: 0.4,
        }
    }
}

impl PipelineConfig {
    /// Reads the scale from the environment: `DRCSHAP_FULL=1` selects paper
    /// scale, otherwise `DRCSHAP_SCALE` (a float in `(0, 1]`), otherwise the
    /// default 0.25.
    ///
    /// # Errors
    ///
    /// [`InputError::Usage`] when `DRCSHAP_SCALE` is set but not a number
    /// (a silently ignored typo would run the wrong experiment);
    /// [`InputError::InvalidScale`] when it parses but lies outside `(0, 1]`.
    pub fn from_env() -> Result<Self, DrcshapError> {
        let mut config = Self::default();
        if std::env::var("DRCSHAP_FULL").is_ok_and(|v| v == "1") {
            config.scale = 1.0;
        } else if let Ok(raw) = std::env::var("DRCSHAP_SCALE") {
            config.scale = raw.parse::<f64>().map_err(|_| {
                DrcshapError::usage(format!("DRCSHAP_SCALE is not a number: {raw:?}"))
            })?;
            config.validate()?;
        }
        Ok(config)
    }

    /// A stable fingerprint of this configuration: CRC32 of its canonical
    /// JSON, widened to `u64`. Stage checkpoints and run manifests are
    /// stamped with it, so resuming a run under a different configuration is
    /// rejected instead of silently mixing incompatible intermediate state.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_vec(self).expect("pipeline config serializes");
        u64::from(crate::artifact::crc32(&json))
    }

    /// Checks the configuration is usable: `scale` must be a finite value
    /// in `(0, 1]` (1.0 is paper scale; larger or non-positive scales would
    /// silently distort every downstream statistic).
    ///
    /// # Errors
    ///
    /// [`InputError::InvalidScale`] when `scale` is non-finite, `<= 0`, or
    /// `> 1`.
    pub fn validate(&self) -> Result<(), DrcshapError> {
        if !self.scale.is_finite() || self.scale <= 0.0 || self.scale > 1.0 {
            return Err(InputError::InvalidScale { value: self.scale }.into());
        }
        Ok(())
    }

    /// The router config for one design, with stress-derated capacity.
    pub fn route_for(&self, spec: &DesignSpec) -> RouteConfig {
        let factor = (1.0 - self.derate_slope * (spec.stress() - 0.25)).clamp(0.05, 1.0);
        self.route.clone().derated(factor)
    }
}

/// Everything the pipeline produces for one design.
#[derive(Debug, Clone)]
pub struct DesignBundle {
    /// The placed design.
    pub design: Design,
    /// Global-routing outcome (congestion map, routes).
    pub route: RouteOutcome,
    /// DRC oracle report (violations, hotspot labels).
    pub report: DrcReport,
    /// The 387-feature matrix, one row per g-cell.
    pub features: FeatureMatrix,
}

impl DesignBundle {
    /// Converts the bundle into a labelled dataset. Every sample carries the
    /// design's Table I *group* as its group tag, so grouped CV folds form
    /// directly.
    pub fn to_dataset(&self) -> Dataset {
        let (_, n, data) = self.features.clone().into_parts();
        let labels = self.report.labels.clone();
        let groups = vec![self.design.spec.group as u32; n];
        Dataset::from_parts(data, labels, groups, 387)
    }
}

/// Runs the full pipeline for one design spec (scaled by the config).
///
/// Deterministic: all randomness derives from the spec's name-based seed.
///
/// # Panics
///
/// Panics if the config is invalid; use [`try_build_design`] on paths that
/// must not panic (the CLI serving path does).
pub fn build_design(spec: &DesignSpec, config: &PipelineConfig) -> DesignBundle {
    try_build_design(spec, config).expect("invalid pipeline config")
}

/// Validated variant of [`build_design`]: checks the config before doing
/// any work.
///
/// # Errors
///
/// [`InputError::InvalidScale`] when the config's scale is out of range.
pub fn try_build_design(
    spec: &DesignSpec,
    config: &PipelineConfig,
) -> Result<DesignBundle, DrcshapError> {
    config.validate()?;
    let spec = spec.scaled(config.scale);
    let _design_span = telemetry::span_with("pipeline/design", || spec.name.clone());
    let mut design = Design::new(spec.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed());
    {
        let _s = telemetry::span("stage/synth");
        synth::generate_cells(&mut design, &mut rng);
    }
    {
        let _s = telemetry::span("stage/place");
        place(&mut design, &mut rng);
        synth::generate_nets(&mut design, &mut rng);
    }
    let route = {
        let _s = telemetry::span("stage/route");
        route_design(&design, &config.route_for(&spec), &mut rng)
    };
    let report = {
        let _s = telemetry::span("stage/drc");
        run_drc(&design, &route, &config.drc, &mut rng)
    };
    let features = {
        let _s = telemetry::span("stage/extract");
        extract_design(&design, &route)
    };
    Ok(DesignBundle { design, route, report, features })
}

/// Builds bundles for many specs in parallel (order preserved).
///
/// # Panics
///
/// Panics if the config is invalid; see [`try_build_suite`].
pub fn build_suite(specs: &[DesignSpec], config: &PipelineConfig) -> Vec<DesignBundle> {
    try_build_suite(specs, config).expect("invalid pipeline config")
}

/// Validated variant of [`build_suite`]: checks the config once up front,
/// then builds in parallel.
///
/// # Errors
///
/// [`InputError::InvalidScale`] when the config's scale is out of range.
pub fn try_build_suite(
    specs: &[DesignSpec],
    config: &PipelineConfig,
) -> Result<Vec<DesignBundle>, DrcshapError> {
    config.validate()?;
    Ok(specs.par_iter().map(|s| build_design(s, config)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_netlist::suite;

    fn tiny() -> PipelineConfig {
        PipelineConfig { scale: 0.2, ..Default::default() }
    }

    #[test]
    fn bundle_is_internally_consistent() {
        let bundle = build_design(&suite::spec("fft_1").unwrap(), &tiny());
        let n = bundle.design.grid.num_cells();
        assert_eq!(bundle.features.n_samples(), n);
        assert_eq!(bundle.report.labels.len(), n);
        assert_eq!(bundle.features.n_features(), 387);
    }

    #[test]
    fn dataset_tags_samples_with_table_group() {
        let bundle = build_design(&suite::spec("des_perf_1").unwrap(), &tiny());
        let data = bundle.to_dataset();
        assert_eq!(data.n_samples(), bundle.design.grid.num_cells());
        assert!(data.groups().iter().all(|&g| g == 4)); // des_perf_1 is group 4
        assert_eq!(data.num_positives(), bundle.report.num_hotspots());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let a = build_design(&suite::spec("fft_2").unwrap(), &tiny());
        let b = build_design(&suite::spec("fft_2").unwrap(), &tiny());
        assert_eq!(a.report.num_hotspots(), b.report.num_hotspots());
        assert_eq!(a.features.row(5), b.features.row(5));
    }

    #[test]
    fn stressed_designs_get_derated_capacity() {
        let config = tiny();
        let hot = config.route_for(&suite::spec("des_perf_1").unwrap());
        let cool = config.route_for(&suite::spec("des_perf_b").unwrap());
        assert!(hot.capacity_scale < cool.capacity_scale);
    }

    #[test]
    fn invalid_scales_are_rejected_with_typed_error() {
        for scale in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let config = PipelineConfig { scale, ..Default::default() };
            let e = config.validate().unwrap_err();
            assert!(
                matches!(e, DrcshapError::Input(InputError::InvalidScale { .. })),
                "scale {scale}: {e}"
            );
            assert!(try_build_design(&suite::spec("fft_1").unwrap(), &config).is_err());
            assert!(try_build_suite(&[], &config).is_err());
        }
    }

    #[test]
    fn valid_scales_pass_validation() {
        for scale in [0.05, 0.25, 1.0] {
            assert!(PipelineConfig { scale, ..Default::default() }.validate().is_ok());
        }
    }

    #[test]
    fn from_env_rejects_malformed_and_out_of_range_scales() {
        // Serialize access to the process environment within this test only;
        // no other test reads DRCSHAP_SCALE at test time.
        std::env::remove_var("DRCSHAP_FULL");

        std::env::set_var("DRCSHAP_SCALE", "0.4");
        let c = PipelineConfig::from_env().expect("valid scale");
        assert_eq!(c.scale, 0.4);

        std::env::set_var("DRCSHAP_SCALE", "not-a-number");
        let e = PipelineConfig::from_env().unwrap_err();
        assert!(matches!(&e, DrcshapError::Input(InputError::Usage(_))), "{e}");
        assert!(e.to_string().contains("not-a-number"), "{e}");

        std::env::set_var("DRCSHAP_SCALE", "3.0");
        let e = PipelineConfig::from_env().unwrap_err();
        assert!(matches!(e, DrcshapError::Input(InputError::InvalidScale { .. })), "{e}");

        std::env::remove_var("DRCSHAP_SCALE");
        assert_eq!(PipelineConfig::from_env().expect("default").scale, 0.25);
    }

    #[test]
    fn config_fingerprint_tracks_parameters() {
        let a = PipelineConfig::default();
        let b = PipelineConfig { scale: 0.2, ..Default::default() };
        assert_eq!(a.fingerprint(), PipelineConfig::default().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn build_suite_preserves_order() {
        let specs: Vec<_> = ["fft_1", "fft_2"].iter().map(|n| suite::spec(n).unwrap()).collect();
        let bundles = build_suite(&specs, &tiny());
        assert_eq!(bundles[0].design.spec.name, "fft_1");
        assert_eq!(bundles[1].design.spec.name, "fft_2");
    }
}

//! End-to-end telemetry coverage: a supervised pipeline run with recording
//! enabled must emit spans for every supervisor stage, the router, the
//! placer's legalization, and feature extraction — and export a valid,
//! deterministic Chrome trace.
//!
//! The whole file is one `#[test]` because telemetry state is global:
//! splitting the assertions into separate tests would race on the shared
//! hub under the parallel test runner.

use drcshap_core::supervisor::{run_supervised, SupervisorConfig};
use drcshap_core::telemetry;
use drcshap_core::PipelineConfig;
use drcshap_geom::CancelToken;
use drcshap_netlist::suite;

#[test]
fn supervised_run_emits_spans_for_every_stage() {
    let run_dir =
        std::env::temp_dir().join(format!("drcshap-telemetry-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&run_dir);

    telemetry::hub().reset();
    telemetry::enable();
    let specs = vec![suite::spec("fft_1").expect("fft_1 in suite")];
    let sup = SupervisorConfig::new(
        PipelineConfig { scale: 0.05, ..Default::default() },
        run_dir.clone(),
    );
    let report =
        run_supervised(&specs, &sup, &CancelToken::new()).expect("supervised run succeeds");
    telemetry::disable();
    assert_eq!(report.completed(), 1, "{}", report.render());

    let summary = telemetry::hub().summary();
    for stage in ["stage/synth", "stage/place", "stage/route", "stage/drc", "stage/extract"] {
        let stats = summary
            .spans
            .get(stage)
            .unwrap_or_else(|| panic!("no {stage} span; got {:?}", summary.spans.keys()));
        assert!(stats.count >= 1, "{stage} recorded {} times", stats.count);
        assert!(stats.total_ms >= 0.0 && stats.p99_us >= stats.p50_us);
    }
    for span in [
        "supervisor/design",
        "route/design",
        "route/initial_pass",
        "route/finalize",
        "place/legalize",
        "extract/design",
    ] {
        assert!(summary.spans.contains_key(span), "no {span} span: {:?}", summary.spans.keys());
    }
    assert!(
        summary.counters.get("supervisor/stages_run").copied().unwrap_or(0) >= 5,
        "counters: {:?}",
        summary.counters
    );
    assert!(summary.counters.get("extract/gcells").copied().unwrap_or(0) > 0);

    // The Chrome trace is valid JSON, carries the required keys, and two
    // consecutive exports of the same recording are byte-identical.
    let trace = telemetry::hub().chrome_trace();
    assert_eq!(trace, telemetry::hub().chrome_trace(), "export is not deterministic");
    let parsed: serde_json::Value = serde_json::from_str(&trace).expect("trace parses");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    for e in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e}");
        }
    }

    // Disabled again: nothing new is recorded.
    telemetry::hub().reset();
    {
        let _s = telemetry::span("stage/synth");
        telemetry::counter("supervisor/stages_run", 1);
    }
    let after = telemetry::hub().summary();
    assert!(after.spans.is_empty(), "disabled mode recorded spans: {:?}", after.spans.keys());

    let _ = std::fs::remove_dir_all(&run_dir);
}

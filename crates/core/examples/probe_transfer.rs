use drcshap_core::pipeline::{build_suite, PipelineConfig};
use drcshap_core::zoo::{ModelBudget, ModelFamily};
use drcshap_ml::{average_precision, Dataset, StandardScaler};
use drcshap_netlist::suite;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let specs: Vec<_> = ["mult_2", "fft_b", "bridge32_a", "des_perf_1"]
        .iter()
        .map(|n| suite::spec(n).unwrap())
        .collect();
    let bundles = build_suite(&specs, &PipelineConfig { scale, ..Default::default() });
    for b in &bundles {
        println!(
            "{}: {} cells, {} hotspots",
            b.design.spec.name,
            b.design.grid.num_cells(),
            b.report.num_hotspots()
        );
    }
    // leave-one-out: test des_perf_1
    for test_i in 0..bundles.len() {
        let mut train = Dataset::empty(387);
        for (i, b) in bundles.iter().enumerate() {
            if i != test_i {
                train.append(&b.to_dataset());
            }
        }
        let test = bundles[test_i].to_dataset();
        if test.num_positives() == 0 {
            continue;
        }
        let scaler = StandardScaler::fit(&train);
        let (train_s, test_s) = (scaler.transform(&train), scaler.transform(&test));
        let trained = ModelFamily::Rf.tune_and_fit(&train_s, ModelBudget::Quick, 1);
        let scores = trained.model.score_dataset(&test_s);
        let ap = average_precision(&scores, test_s.labels());
        // risk-oracle ceiling: AUPRC of the true risk field itself
        let risk: Vec<f64> = bundles[test_i].report.risk.clone();
        let ap_risk = average_precision(&risk, test_s.labels());
        println!(
            "test {}: base={:.3} AP(RF)={:.3} AP(risk)={:.3}",
            bundles[test_i].design.spec.name,
            test.positive_rate(),
            ap,
            ap_risk
        );
    }
}

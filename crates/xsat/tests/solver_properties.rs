//! Differential property tests: the CDCL solver against the brute-force
//! enumeration oracle on random CNF instances of up to 20 variables — plain
//! satisfiability, satisfiability under assumptions, and the Sinz
//! cardinality encodings. Whenever the solver answers SAT, the model it
//! produced is checked against every clause; whenever it answers UNSAT, the
//! enumerator must agree that no model exists.

use drcshap_xsat::{brute_force, Cnf, Lit, SolveBudget, SolveOutcome, Solver};
use proptest::prelude::*;

const MAX_VARS: usize = 20;

/// Builds a CNF over `n_vars` variables from raw `(var, negated)` pairs,
/// mapping variable indices into range. Empty clauses are legal input.
fn build_cnf(n_vars: usize, raw_clauses: &[Vec<(u32, bool)>]) -> Cnf {
    let mut cnf = Cnf::new();
    for _ in 0..n_vars {
        cnf.new_var();
    }
    for raw in raw_clauses {
        let lits: Vec<Lit> =
            raw.iter().map(|&(v, neg)| Lit::with_sign(v % n_vars as u32, !neg)).collect();
        cnf.add_clause(&lits);
    }
    cnf
}

fn check_against_oracle(cnf: &Cnf, assumptions: &[Lit]) -> Result<(), TestCaseError> {
    let mut solver = Solver::from_cnf(cnf);
    let verdict = solver.solve(assumptions, &SolveBudget::unlimited());
    let oracle = brute_force(cnf, assumptions);
    match verdict {
        SolveOutcome::Sat => {
            prop_assert!(oracle.is_some(), "solver says SAT, enumerator finds no model");
            for &a in assumptions {
                prop_assert!(a.eval(solver.value(a.var())), "assumption {a} violated in model");
            }
            for clause in cnf.clauses() {
                prop_assert!(
                    clause.iter().any(|l| l.eval(solver.value(l.var()))),
                    "model does not satisfy clause"
                );
            }
        }
        SolveOutcome::Unsat => {
            prop_assert!(oracle.is_none(), "solver says UNSAT, enumerator found a model");
        }
        SolveOutcome::BudgetExhausted => {
            prop_assert!(false, "unlimited budget cannot exhaust");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random CNF, no assumptions: verdicts agree with full enumeration and
    /// SAT models actually satisfy the formula.
    #[test]
    fn solver_matches_brute_force(
        n_vars in 1usize..=MAX_VARS,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..MAX_VARS as u32, any::<bool>()), 1..4),
            0..40,
        ),
    ) {
        let cnf = build_cnf(n_vars, &raw);
        check_against_oracle(&cnf, &[])?;
    }

    /// Random CNF under random assumptions — the mode the abductive
    /// deletion loop exercises hundreds of times per explanation.
    #[test]
    fn solver_matches_brute_force_under_assumptions(
        n_vars in 1usize..=12,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..12u32, any::<bool>()), 1..4),
            0..32,
        ),
        raw_assumptions in prop::collection::vec((0u32..12u32, any::<bool>()), 0..6),
    ) {
        let cnf = build_cnf(n_vars, &raw);
        // Assumptions may repeat or contradict each other — both are legal.
        let assumptions: Vec<Lit> = raw_assumptions
            .iter()
            .map(|&(v, neg)| Lit::with_sign(v % n_vars as u32, !neg))
            .collect();
        check_against_oracle(&cnf, &assumptions)?;
    }

    /// Learned clauses from earlier calls must never change later verdicts:
    /// solve the same instance twice under the same assumptions, and
    /// interleave with an assumption-free call.
    #[test]
    fn incremental_calls_are_verdict_stable(
        n_vars in 1usize..=10,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..10u32, any::<bool>()), 1..4),
            0..24,
        ),
        raw_assumptions in prop::collection::vec((0u32..10u32, any::<bool>()), 0..4),
    ) {
        let cnf = build_cnf(n_vars, &raw);
        let assumptions: Vec<Lit> = raw_assumptions
            .iter()
            .map(|&(v, neg)| Lit::with_sign(v % n_vars as u32, !neg))
            .collect();
        let mut solver = Solver::from_cnf(&cnf);
        let first = solver.solve(&assumptions, &SolveBudget::unlimited());
        let free = solver.solve(&[], &SolveBudget::unlimited());
        let second = solver.solve(&assumptions, &SolveBudget::unlimited());
        prop_assert_eq!(first, second, "verdict drifted across incremental calls");
        if first == SolveOutcome::Sat {
            prop_assert_eq!(free, SolveOutcome::Sat, "relaxing assumptions cannot lose SAT");
        }
    }

    /// The Sinz cardinality encodings count correctly: with all inputs
    /// fixed by assumptions, at-most-k is satisfiable iff the popcount
    /// obeys the bound (auxiliary variables are free for the solver).
    #[test]
    fn cardinality_encodings_count(
        n in 1usize..=8,
        k in 0usize..=9,
        bits in 0u32..256,
        guarded in any::<bool>(),
    ) {
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..n).map(|_| Lit::pos(cnf.new_var())).collect();
        let guard = if guarded { Some(Lit::pos(cnf.new_var())) } else { None };
        cnf.add_at_most_k(&xs, k, guard);
        let count = (0..n).filter(|&i| bits >> i & 1 == 1).count();
        let mut assumptions: Vec<Lit> =
            (0..n).map(|i| Lit::with_sign(xs[i].var(), bits >> i & 1 == 1)).collect();
        if let Some(g) = guard {
            // Unguarded by assumption: any popcount is fine.
            let mut solver = Solver::from_cnf(&cnf);
            prop_assert_eq!(
                solver.solve(&assumptions, &SolveBudget::unlimited()),
                SolveOutcome::Sat,
                "inactive guard must not constrain"
            );
            assumptions.push(g);
        }
        let mut solver = Solver::from_cnf(&cnf);
        let verdict = solver.solve(&assumptions, &SolveBudget::unlimited());
        let want = if count <= k { SolveOutcome::Sat } else { SolveOutcome::Unsat };
        prop_assert_eq!(verdict, want, "n={} k={} count={}", n, k, count);
    }
}

//! Propositional literals, clauses, and a CNF builder.
//!
//! Variables are dense `u32` indices starting at 0; a [`Lit`] packs the
//! variable and its sign into one word (`var << 1 | negated`), the layout
//! every CDCL solver uses so a literal doubles as an index into per-literal
//! watch lists.
//!
//! [`Cnf`] is the formula under construction: the encoder appends clauses
//! and allocates fresh variables, the solver consumes the finished formula.
//! Cardinality constraints (`at_most_k` / `at_least_k`) use the Sinz
//! sequential-counter encoding, optionally *guarded* by a selector literal
//! so two mutually exclusive constraints (flip-to-hotspot vs
//! flip-to-non-hotspot) can share one formula and be switched per SAT call
//! through assumptions.

use std::fmt;

/// A propositional literal: variable `var()` with sign `is_neg()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit((var << 1) | 1)
    }

    /// A literal of `var` with the given polarity (`true` = positive).
    pub fn with_sign(var: u32, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// True when this is the negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether `assignment[var]` satisfies this literal.
    pub fn eval(self, value: bool) -> bool {
        value != self.is_neg()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var() + 1)
        } else {
            write!(f, "{}", self.var() + 1)
        }
    }
}

/// A CNF formula under construction.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    n_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula with no variables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    /// Variables allocated so far.
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Appends one clause (a disjunction of literals). An empty clause makes
    /// the formula trivially unsatisfiable — allowed, the solver handles it.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert!(lits.iter().all(|l| l.var() < self.n_vars), "literal out of range");
        self.clauses.push(lits.to_vec());
    }

    /// Encodes "at most `k` of `lits` are true" with the Sinz sequential
    /// counter (O(n·k) auxiliary variables and clauses). When `guard` is
    /// given, every clause is weakened with `¬guard`, so the constraint is
    /// only active under the assumption `guard = true`.
    pub fn add_at_most_k(&mut self, lits: &[Lit], k: usize, guard: Option<Lit>) {
        let n = lits.len();
        if k >= n {
            return; // vacuously true
        }
        if k == 0 {
            for &l in lits {
                let mut clause = vec![l.negate()];
                if let Some(g) = guard {
                    clause.push(g.negate());
                }
                self.clauses.push(clause);
            }
            return;
        }
        // reg[i][j] (0-based i over the first n-1 inputs, 0-based j < k):
        // "at least j+1 of lits[..=i] are true".
        let mut reg: Vec<Vec<u32>> = Vec::with_capacity(n - 1);
        for _ in 0..n - 1 {
            reg.push((0..k).map(|_| self.new_var()).collect());
        }
        let mut emit = |mut clause: Vec<Lit>| {
            if let Some(g) = guard {
                clause.push(g.negate());
            }
            self.clauses.push(clause);
        };
        emit(vec![lits[0].negate(), Lit::pos(reg[0][0])]);
        for &v in reg[0].iter().skip(1) {
            emit(vec![Lit::neg(v)]);
        }
        for i in 1..n - 1 {
            emit(vec![lits[i].negate(), Lit::pos(reg[i][0])]);
            emit(vec![Lit::neg(reg[i - 1][0]), Lit::pos(reg[i][0])]);
            for j in 1..k {
                emit(vec![lits[i].negate(), Lit::neg(reg[i - 1][j - 1]), Lit::pos(reg[i][j])]);
                emit(vec![Lit::neg(reg[i - 1][j]), Lit::pos(reg[i][j])]);
            }
            emit(vec![lits[i].negate(), Lit::neg(reg[i - 1][k - 1])]);
        }
        emit(vec![lits[n - 1].negate(), Lit::neg(reg[n - 2][k - 1])]);
    }

    /// Encodes "at least `k` of `lits` are true" as at-most-`n-k` of the
    /// negations, with the same optional selector guard.
    pub fn add_at_least_k(&mut self, lits: &[Lit], k: usize, guard: Option<Lit>) {
        if k == 0 {
            return;
        }
        if k > lits.len() {
            // Unsatisfiable demand: under the guard, the formula must fail.
            match guard {
                Some(g) => self.clauses.push(vec![g.negate()]),
                None => self.clauses.push(Vec::new()),
            }
            return;
        }
        let negated: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
        self.add_at_most_k(&negated, lits.len() - k, guard);
    }
}

/// Brute-force satisfiability by full enumeration — the reference oracle
/// the CDCL solver is differential-tested against. Only feasible for small
/// variable counts (the proptests stay ≤ 20). Returns a satisfying
/// assignment (indexed by variable) or `None` when unsatisfiable under
/// `assumptions`.
pub fn brute_force(cnf: &Cnf, assumptions: &[Lit]) -> Option<Vec<bool>> {
    let n = cnf.n_vars() as usize;
    assert!(n <= 24, "brute_force is exponential; got {n} variables");
    'outer: for bits in 0u64..(1u64 << n) {
        let value = |v: u32| bits >> v & 1 == 1;
        for &a in assumptions {
            if !a.eval(value(a.var())) {
                continue 'outer;
            }
        }
        for clause in cnf.clauses() {
            if !clause.iter().any(|l| l.eval(value(l.var()))) {
                continue 'outer;
            }
        }
        return Some((0..n as u32).map(value).collect());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_models(cnf: &Cnf) -> usize {
        let n = cnf.n_vars() as usize;
        (0u64..1 << n)
            .filter(|bits| {
                cnf.clauses().iter().all(|c| c.iter().any(|l| l.eval(bits >> l.var() & 1 == 1)))
            })
            .count()
    }

    #[test]
    fn literal_packing_round_trips() {
        let l = Lit::neg(7);
        assert_eq!(l.var(), 7);
        assert!(l.is_neg());
        assert_eq!(l.negate(), Lit::pos(7));
        assert_eq!(l.index(), 15);
        assert!(l.eval(false) && !l.eval(true));
        assert_eq!(l.to_string(), "-8");
        assert_eq!(Lit::with_sign(3, true), Lit::pos(3));
        assert_eq!(Lit::with_sign(3, false), Lit::neg(3));
    }

    #[test]
    fn at_most_k_counts_exactly() {
        // Over 4 free variables, at-most-2 has C(4,0)+C(4,1)+C(4,2) = 11
        // models when projected onto the inputs. Count by enumerating input
        // assignments and checking the auxiliary variables can be extended.
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..4).map(|_| Lit::pos(cnf.new_var())).collect();
        cnf.add_at_most_k(&xs, 2, None);
        for bits in 0u32..16 {
            let want = bits.count_ones() <= 2;
            let assumptions: Vec<Lit> =
                (0..4).map(|v| Lit::with_sign(v, bits >> v & 1 == 1)).collect();
            assert_eq!(brute_force(&cnf, &assumptions).is_some(), want, "bits {bits:04b}");
        }
    }

    #[test]
    fn at_least_k_counts_exactly() {
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..5).map(|_| Lit::pos(cnf.new_var())).collect();
        cnf.add_at_least_k(&xs, 3, None);
        for bits in 0u32..32 {
            let want = bits.count_ones() >= 3;
            let assumptions: Vec<Lit> =
                (0..5).map(|v| Lit::with_sign(v, bits >> v & 1 == 1)).collect();
            assert_eq!(brute_force(&cnf, &assumptions).is_some(), want, "bits {bits:05b}");
        }
    }

    #[test]
    fn guarded_cardinality_only_bites_under_its_selector() {
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..3).map(|_| Lit::pos(cnf.new_var())).collect();
        let guard = Lit::pos(cnf.new_var());
        cnf.add_at_most_k(&xs, 0, Some(guard));
        // All three true violates at-most-0, but only when the guard holds.
        let all_true: Vec<Lit> = (0..3).map(Lit::pos).collect();
        let mut with_guard = all_true.clone();
        with_guard.push(guard);
        assert!(brute_force(&cnf, &all_true).is_some());
        assert!(brute_force(&cnf, &with_guard).is_none());
    }

    #[test]
    fn degenerate_cardinalities() {
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..2).map(|_| Lit::pos(cnf.new_var())).collect();
        cnf.add_at_most_k(&xs, 5, None); // vacuous
        cnf.add_at_least_k(&xs, 0, None); // vacuous
        assert_eq!(cnf.clauses().len(), 0);
        assert_eq!(count_models(&cnf), 4);
        // Demanding more trues than literals is unsatisfiable.
        let mut cnf = Cnf::new();
        let xs: Vec<Lit> = (0..2).map(|_| Lit::pos(cnf.new_var())).collect();
        cnf.add_at_least_k(&xs, 3, None);
        assert!(brute_force(&cnf, &[]).is_none());
    }
}

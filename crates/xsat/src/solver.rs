//! A small, self-contained CDCL SAT solver.
//!
//! The classic architecture, no external dependencies:
//!
//! - **Two-watched-literal propagation**: each clause watches two of its
//!   literals; only when a watched literal becomes false is the clause
//!   visited, so propagation cost tracks the number of clauses that can
//!   actually produce a unit or a conflict.
//! - **1UIP clause learning**: every conflict is analyzed back to the first
//!   unique implication point of the current decision level; the learned
//!   clause is asserting after backjumping to its second-highest level.
//! - **VSIDS-style activity**: variables touched by conflict analysis are
//!   bumped and decay exponentially; decisions pick the highest-activity
//!   unassigned variable from an indexed max-heap with index-order
//!   tie-breaking, so runs are fully deterministic.
//! - **Luby restarts** with phase saving, so restarts reorder the search
//!   without forgetting polarities.
//! - **Solving under assumptions**: assumptions are planted as the first
//!   decisions; an assumption that propagates to false proves UNSAT under
//!   those assumptions without touching the clause database. This is what
//!   the abductive engine's deletion loop leans on — one shared formula,
//!   hundreds of cheap incremental calls.
//!
//! Every `solve` call honours a [`SolveBudget`] (conflict cap and optional
//! wall-clock deadline) and returns [`SolveOutcome::BudgetExhausted`]
//! instead of stalling, which upper layers surface as the typed
//! `DrcshapError::ExplanationTimeout`.

use std::time::Instant;

use drcshap_telemetry as telemetry;

use crate::cnf::{Cnf, Lit};

/// Resource limits for one `solve` call.
#[derive(Debug, Clone, Copy)]
pub struct SolveBudget {
    /// Conflicts allowed in this call (`u64::MAX` = unlimited).
    pub max_conflicts: u64,
    /// Wall-clock cutoff; checked every conflict and decision. `None` keeps
    /// the call fully deterministic (CLI path).
    pub deadline: Option<Instant>,
}

impl SolveBudget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self { max_conflicts: u64::MAX, deadline: None }
    }

    /// A deterministic conflict-count budget.
    pub fn conflicts(max_conflicts: u64) -> Self {
        Self { max_conflicts, deadline: None }
    }
}

/// What a `solve` call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment exists (readable via [`Solver::value`]).
    Sat,
    /// No satisfying assignment under the given assumptions.
    Unsat,
    /// The budget ran out before a verdict.
    BudgetExhausted,
}

/// Cumulative search statistics across every `solve` call on this solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Conflicts analyzed.
    pub conflicts: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learnt: u64,
}

const UNASSIGNED: i8 = 0;
const NO_REASON: u32 = u32::MAX;

/// Indexed binary max-heap over variables ordered by activity, ties broken
/// toward lower variable indices — the deterministic VSIDS order.
#[derive(Debug, Clone, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// Variable -> position in `heap`, or `u32::MAX` when absent.
    pos: Vec<u32>,
}

impl VarOrder {
    fn new(n_vars: u32) -> Self {
        let heap: Vec<u32> = (0..n_vars).collect();
        let pos: Vec<u32> = (0..n_vars).collect();
        Self { heap, pos }
    }

    fn before(activity: &[f64], a: u32, b: u32) -> bool {
        activity[a as usize] > activity[b as usize]
            || (activity[a as usize] == activity[b as usize] && a < b)
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != u32::MAX
    }

    fn percolate_up(&mut self, activity: &[f64], mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::before(activity, v, self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.pos[self.heap[i] as usize] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn percolate_down(&mut self, activity: &[f64], mut i: usize) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && Self::before(activity, self.heap[right], self.heap[left])
            {
                right
            } else {
                left
            };
            if Self::before(activity, self.heap[child], v) {
                self.heap[i] = self.heap[child];
                self.pos[self.heap[i] as usize] = i as u32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as u32;
    }

    fn push(&mut self, activity: &[f64], v: u32) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.pos[v as usize] = (self.heap.len() - 1) as u32;
        self.percolate_up(activity, self.heap.len() - 1);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = u32::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.percolate_down(activity, 0);
        }
        Some(top)
    }

    fn bumped(&mut self, activity: &[f64], v: u32) {
        let p = self.pos[v as usize];
        if p != u32::MAX {
            self.percolate_up(activity, p as usize);
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver. Build one per formula with [`Solver::from_cnf`] (or
/// [`Solver::new`] + [`Solver::add_clause`]), then call [`Solver::solve`]
/// any number of times under different assumption sets — learned clauses
/// persist across calls and keep later calls cheaper.
#[derive(Debug, Clone)]
pub struct Solver {
    n_vars: u32,
    clauses: Vec<Clause>,
    /// Per-literal watch lists: indices into `clauses`.
    watches: Vec<Vec<u32>>,
    /// Per-variable assignment: +1 true, -1 false, 0 unassigned.
    assign: Vec<i8>,
    /// Per-variable decision level (valid when assigned).
    level: Vec<u32>,
    /// Per-variable implying clause index, or `NO_REASON` for decisions.
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    /// Saved phase per variable, kept across restarts.
    phase: Vec<bool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// False once an empty clause or a level-0 conflict is derived.
    ok: bool,
    /// Pending top-level units not yet propagated.
    pending_units: Vec<Lit>,
    stats: SolverStats,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;
const LUBY_UNIT: u64 = 128;

/// The Luby restart sequence 1,1,2,1,1,2,4,... (Luby, Sinclair, Zuckerman).
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i (length 2^seq − 1),
    // then descend into it.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1 << seq
}

impl Solver {
    /// An empty solver over `n_vars` variables.
    pub fn new(n_vars: u32) -> Self {
        Self {
            n_vars,
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n_vars as usize],
            assign: vec![UNASSIGNED; n_vars as usize],
            level: vec![0; n_vars as usize],
            reason: vec![NO_REASON; n_vars as usize],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; n_vars as usize],
            var_inc: 1.0,
            order: VarOrder::new(n_vars),
            phase: vec![false; n_vars as usize],
            seen: vec![false; n_vars as usize],
            ok: true,
            pending_units: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// A solver loaded with every clause of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut solver = Self::new(cnf.n_vars());
        for clause in cnf.clauses() {
            solver.add_clause(clause);
        }
        solver
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Variables this solver was created over.
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// The value of `var` in the last satisfying assignment. Only
    /// meaningful immediately after a [`SolveOutcome::Sat`] return.
    pub fn value(&self, var: u32) -> bool {
        self.assign[var as usize] > 0
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var() as usize];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause, normalizing out duplicate literals and tautologies.
    /// Unit clauses are queued for top-level propagation at the next
    /// `solve`; the empty clause makes the solver permanently UNSAT.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at the top level");
        let mut lits = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology: contains l and ¬l
        }
        match lits.len() {
            0 => self.ok = false,
            1 => self.pending_units.push(lits[0]),
            _ => self.attach(Clause { lits }),
        }
    }

    fn attach(&mut self, clause: Clause) {
        let idx = self.clauses.len() as u32;
        self.watches[clause.lits[0].index()].push(idx);
        self.watches[clause.lits[1].index()].push(idx);
        self.clauses.push(clause);
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var() as usize;
                self.assign[v] = if l.is_neg() { -1 } else { 1 };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = !l.is_neg();
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagates everything on the trail; returns the index of a
    /// conflicting clause, or `None` when a fixpoint is reached.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            'clauses: while i < ws.len() {
                let ci = ws[i];
                // Make sure the false literal is at position 1.
                if self.clauses[ci as usize].lits[0] == false_lit {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue; // clause already satisfied; keep the watch
                }
                // Look for a non-false literal to watch instead.
                for k in 2..self.clauses[ci as usize].lits.len() {
                    if self.lit_value(self.clauses[ci as usize].lits[k]) != -1 {
                        self.clauses[ci as usize].lits.swap(1, k);
                        let new_watch = self.clauses[ci as usize].lits[1];
                        self.watches[new_watch.index()].push(ci);
                        ws.swap_remove(i);
                        continue 'clauses;
                    }
                }
                // Clause is unit (or conflicting) under the assignment.
                i += 1;
                if !self.enqueue(first, ci) {
                    self.watches[false_lit.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
            }
            self.watches[false_lit.index()] = ws;
        }
        None
    }

    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a /= ACTIVITY_RESCALE;
            }
            self.var_inc /= ACTIVITY_RESCALE;
        }
        self.order.bumped(&self.activity, v);
    }

    /// 1UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current = self.decision_level();
        loop {
            let clause = &self.clauses[confl as usize];
            let start = usize::from(p.is_some()); // skip the implied literal of a reason clause
            let lits: Vec<Lit> = clause.lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v as usize] && self.level[v as usize] > 0 {
                    self.seen[v as usize] = true;
                    self.bump(v);
                    if self.level[v as usize] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.negate();
                break;
            }
            confl = self.reason[pl.var() as usize];
            debug_assert_ne!(confl, NO_REASON, "non-decision literal must have a reason");
            p = Some(pl);
        }
        for l in &learnt[1..] {
            self.seen[l.var() as usize] = false;
        }
        // Backjump to the second-highest level in the learned clause.
        let mut back = 0u32;
        let mut at = 1usize;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var() as usize];
            if lv > back {
                back = lv;
                at = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, at);
        }
        (learnt, back)
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assign[v as usize] = UNASSIGNED;
            self.reason[v as usize] = NO_REASON;
            self.order.push(&self.activity, v);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn pick_branch_var(&mut self) -> Option<u32> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v as usize] == UNASSIGNED {
                return Some(v);
            }
        }
        None
    }

    /// Solves under `assumptions` within `budget`.
    ///
    /// [`SolveOutcome::Unsat`] means unsatisfiable *under the assumptions*
    /// (the formula itself may still be satisfiable); learned clauses carry
    /// over to later calls either way.
    pub fn solve(&mut self, assumptions: &[Lit], budget: &SolveBudget) -> SolveOutcome {
        let _span = telemetry::span("xsat/solve");
        self.cancel_until(0);
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        // Flush queued top-level units first.
        let pending = std::mem::take(&mut self.pending_units);
        for unit in pending {
            if !self.enqueue(unit, NO_REASON) {
                self.ok = false;
                return SolveOutcome::Unsat;
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveOutcome::Unsat;
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart_num = 0u64;
        let mut restart_limit = LUBY_UNIT * luby(restart_num);
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                telemetry::counter("xsat/conflicts", 1);
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                let (learnt, back) = self.analyze(confl);
                self.cancel_until(back);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if !self.enqueue(asserting, NO_REASON) {
                        self.ok = false;
                        return SolveOutcome::Unsat;
                    }
                } else {
                    let idx = self.clauses.len() as u32;
                    self.attach(Clause { lits: learnt });
                    self.stats.learnt += 1;
                    let ok = self.enqueue(asserting, idx);
                    debug_assert!(ok, "a learned clause is asserting after backjumping");
                }
                self.var_inc *= VAR_DECAY;
                if self.stats.conflicts - start_conflicts >= budget.max_conflicts {
                    return SolveOutcome::BudgetExhausted;
                }
                if let Some(deadline) = budget.deadline {
                    if Instant::now() >= deadline {
                        return SolveOutcome::BudgetExhausted;
                    }
                }
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_num += 1;
                    restart_limit = LUBY_UNIT * luby(restart_num);
                    conflicts_since_restart = 0;
                    self.cancel_until(0);
                }
            } else {
                // Plant the next pending assumption, or branch.
                let level = self.decision_level() as usize;
                if level < assumptions.len() {
                    let a = assumptions[level];
                    match self.lit_value(a) {
                        1 => self.new_decision_level(), // already holds; empty level keeps indexing aligned
                        -1 => {
                            self.cancel_until(0);
                            return SolveOutcome::Unsat;
                        }
                        _ => {
                            self.new_decision_level();
                            let ok = self.enqueue(a, NO_REASON);
                            debug_assert!(ok);
                        }
                    }
                } else {
                    match self.pick_branch_var() {
                        None => return SolveOutcome::Sat,
                        Some(v) => {
                            self.stats.decisions += 1;
                            if let Some(deadline) = budget.deadline {
                                if Instant::now() >= deadline {
                                    return SolveOutcome::BudgetExhausted;
                                }
                            }
                            self.new_decision_level();
                            let ok =
                                self.enqueue(Lit::with_sign(v, self.phase[v as usize]), NO_REASON);
                            debug_assert!(ok);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::brute_force;

    fn lit(i: i32) -> Lit {
        if i > 0 {
            Lit::pos((i - 1) as u32)
        } else {
            Lit::neg((-i - 1) as u32)
        }
    }

    fn cnf_of(n_vars: u32, clauses: &[&[i32]]) -> Cnf {
        let mut cnf = Cnf::new();
        for _ in 0..n_vars {
            cnf.new_var();
        }
        for c in clauses {
            let lits: Vec<Lit> = c.iter().map(|&i| lit(i)).collect();
            cnf.add_clause(&lits);
        }
        cnf
    }

    fn model_satisfies(solver: &Solver, cnf: &Cnf, assumptions: &[Lit]) -> bool {
        assumptions.iter().all(|a| a.eval(solver.value(a.var())))
            && cnf.clauses().iter().all(|c| c.iter().any(|l| l.eval(solver.value(l.var()))))
    }

    #[test]
    fn trivial_formulas() {
        let cnf = cnf_of(2, &[&[1], &[-2]]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Sat);
        assert!(s.value(0) && !s.value(1));

        let cnf = cnf_of(1, &[&[1], &[-1]]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Unsat);
        // Once globally UNSAT, it stays UNSAT.
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new(1);
        s.add_clause(&[]);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new(1);
        s.add_clause(&[lit(1), lit(-1)]);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Every pigeon somewhere; no hole
        // holds two pigeons. Classic small UNSAT instance that actually
        // exercises clause learning.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Lit>> =
            (0..3).map(|_| (0..2).map(|_| Lit::pos(cnf.new_var())).collect()).collect();
        for i in 0..3 {
            cnf.add_clause(&[p[i][0], p[i][1]]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    cnf.add_clause(&[p[a][j].negate(), p[b][j].negate()]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_flip_the_verdict_incrementally() {
        // (a ∨ b) ∧ (¬a ∨ c): satisfiable; under {¬b, ¬c} forced a ∧ ¬c → UNSAT.
        let cnf = cnf_of(3, &[&[1, 2], &[-1, 3]]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Sat);
        assert_eq!(s.solve(&[lit(-2), lit(-3)], &SolveBudget::unlimited()), SolveOutcome::Unsat);
        // The same solver still answers SAT without the assumptions.
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Sat);
        assert!(model_satisfies(&s, &cnf, &[]));
        // Assumptions satisfied in the model when SAT under assumptions.
        let assumptions = [lit(2), lit(3)];
        assert_eq!(s.solve(&assumptions, &SolveBudget::unlimited()), SolveOutcome::Sat);
        assert!(model_satisfies(&s, &cnf, &assumptions));
    }

    #[test]
    fn contradictory_assumptions_are_unsat_without_breaking_the_solver() {
        let cnf = cnf_of(2, &[&[1, 2]]);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[lit(1), lit(-1)], &SolveBudget::unlimited()), SolveOutcome::Unsat);
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Sat);
    }

    #[test]
    fn conflict_budget_yields_budget_exhausted() {
        // Pigeonhole 5-into-4 takes well over one conflict to refute.
        let mut cnf = Cnf::new();
        let p: Vec<Vec<Lit>> =
            (0..5).map(|_| (0..4).map(|_| Lit::pos(cnf.new_var())).collect()).collect();
        for i in 0..5 {
            let row: Vec<Lit> = p[i].clone();
            cnf.add_clause(&row);
        }
        for j in 0..4 {
            for a in 0..5 {
                for b in a + 1..5 {
                    cnf.add_clause(&[p[a][j].negate(), p[b][j].negate()]);
                }
            }
        }
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(&[], &SolveBudget::conflicts(1)), SolveOutcome::BudgetExhausted);
        // With the budget lifted the verdict is reached.
        assert_eq!(s.solve(&[], &SolveBudget::unlimited()), SolveOutcome::Unsat);
    }

    #[test]
    fn agrees_with_brute_force_on_fixed_instances() {
        let instances: Vec<(u32, Vec<Vec<i32>>)> = vec![
            (4, vec![vec![1, 2], vec![-1, 3], vec![-2, -3], vec![2, 3, 4], vec![-4, 1]]),
            (5, vec![vec![1, -2, 3], vec![2, -3, 4], vec![3, -4, 5], vec![-1, -5], vec![-3]]),
            (3, vec![vec![1], vec![-1, 2], vec![-2, 3], vec![-3, -1]]),
            (
                6,
                vec![
                    vec![1, 2, 3],
                    vec![4, 5, 6],
                    vec![-1, -4],
                    vec![-2, -5],
                    vec![-3, -6],
                    vec![1, 5],
                    vec![2, 6],
                    vec![3, 4],
                ],
            ),
        ];
        for (n, clauses) in instances {
            let refs: Vec<&[i32]> = clauses.iter().map(Vec::as_slice).collect();
            let cnf = cnf_of(n, &refs);
            let mut s = Solver::from_cnf(&cnf);
            let got = s.solve(&[], &SolveBudget::unlimited());
            let want = brute_force(&cnf, &[]);
            match (got, &want) {
                (SolveOutcome::Sat, Some(_)) => assert!(model_satisfies(&s, &cnf, &[])),
                (SolveOutcome::Unsat, None) => {}
                other => panic!("solver/brute-force disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let cnf =
            cnf_of(5, &[&[1, -2, 3], &[2, -3, 4], &[3, -4, 5], &[-1, -5], &[1, 4, -5], &[-2, 5]]);
        let run = || {
            let mut s = Solver::from_cnf(&cnf);
            let out = s.solve(&[], &SolveBudget::unlimited());
            let model: Vec<bool> = (0..5).map(|v| s.value(v)).collect();
            (out, model, s.stats().conflicts, s.stats().decisions)
        };
        assert_eq!(run(), run());
    }
}

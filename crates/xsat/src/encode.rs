//! Propositional encoding of a trained [`RandomForest`]'s decision function.
//!
//! The encoding follows the standard interval-abstraction construction for
//! tree ensembles (Izza & Marques-Silva, "On Explaining Random Forests with
//! SAT"):
//!
//! - For each feature `j`, the distinct split thresholds `t_1 < … < t_k`
//!   used anywhere in the forest partition the real line into `k + 1`
//!   intervals. A Boolean *interval literal* `d[j][i]` means `x_j ≤ t_i`;
//!   ordering clauses `d[j][i] → d[j][i+1]` make every assignment of the
//!   `d` variables correspond to exactly one interval — and every interval
//!   to a realizable real value. Two instances in the same cell of this
//!   grid are indistinguishable to the forest, so reasoning over the grid
//!   is exact, not approximate.
//! - For each leaf `L` of each tree, a leaf variable with binary clauses
//!   `L → lit` for every threshold test on the root-to-leaf path, plus one
//!   at-least-one-leaf clause per tree. At-most-one is implied: two leaves
//!   of a tree disagree on the split literal at their lowest common
//!   ancestor.
//! - A vote variable `v_t` per tree (`L → v_t` for hotspot leaves,
//!   `L → ¬v_t` otherwise; a tree votes *hotspot* when its leaf value is
//!   `≥ 0.5`).
//! - Two *guarded* Sinz cardinality constraints over the vote variables
//!   share the formula: under assumption [`ForestEncoding::guard_hotspot`]
//!   the votes must reach a strict majority, under
//!   [`ForestEncoding::guard_not_hotspot`] they must not. The abductive
//!   engine switches the targeted class per SAT call through assumptions
//!   instead of rebuilding the CNF.
//!
//! The classifier being explained is therefore the **majority vote** over
//! trees (ties break to *not hotspot*), exposed as [`forest_vote`] so every
//! consumer — engine, oracle, brute-force verifier — shares one definition.

use drcshap_forest::{DecisionTree, RandomForest, TreeNode};
use drcshap_ml::XsatError;
use drcshap_telemetry as telemetry;

use crate::cnf::{Cnf, Lit};

/// Whether one tree votes *hotspot* for `x` (leaf probability `≥ 0.5`).
pub fn tree_vote(tree: &DecisionTree, x: &[f32]) -> bool {
    tree.predict(x) >= 0.5
}

/// The majority-vote classification of `x`: `true` (*hotspot*) when a
/// strict majority of trees vote hotspot; ties go to *not hotspot*.
pub fn forest_vote(forest: &RandomForest, x: &[f32]) -> bool {
    2 * forest_vote_count(forest, x) > forest.trees().len()
}

/// How many trees vote hotspot for `x`.
pub fn forest_vote_count(forest: &RandomForest, x: &[f32]) -> usize {
    forest.trees().iter().filter(|t| tree_vote(t, x)).count()
}

/// The interval literals of one feature.
#[derive(Debug, Clone, Default)]
struct FeatureVars {
    /// Distinct split thresholds, ascending. Empty when the forest never
    /// splits on this feature (the feature is trivially irrelevant).
    thresholds: Vec<f32>,
    /// `vars[i]` is the variable of `d[j][i]`: "`x_j ≤ thresholds[i]`".
    vars: Vec<u32>,
}

/// A half-open interval `(lower, upper]` of feature values; `None` bounds
/// are infinite. This is the coarsest region around an instance's value
/// that the forest cannot distinguish from it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct FeatureInterval {
    /// Exclusive lower bound (`None` = `-∞`).
    pub lower: Option<f32>,
    /// Inclusive upper bound (`None` = `+∞`).
    pub upper: Option<f32>,
}

/// The CNF image of a forest's majority-vote decision function.
#[derive(Debug, Clone)]
pub struct ForestEncoding {
    cnf: Cnf,
    features: Vec<FeatureVars>,
    guard_hotspot: Lit,
    guard_not_hotspot: Lit,
    n_trees: usize,
}

impl ForestEncoding {
    /// Encodes `forest` into CNF.
    ///
    /// Fails with [`XsatError::UnsupportedModel`] only for shapes the
    /// encoding cannot express (currently: non-finite split thresholds,
    /// which would break the interval abstraction).
    pub fn encode(forest: &RandomForest) -> Result<Self, XsatError> {
        let _span = telemetry::span("xsat/encode");
        let mut cnf = Cnf::new();

        // Pass 1: per-feature sorted, deduplicated split thresholds.
        let mut thresholds: Vec<Vec<f32>> = vec![Vec::new(); forest.n_features()];
        for tree in forest.trees() {
            for node in tree.nodes() {
                if !node.is_leaf() {
                    if !node.threshold.is_finite() {
                        return Err(XsatError::UnsupportedModel {
                            detail: format!(
                                "non-finite split threshold {} on feature {}",
                                node.threshold, node.feature
                            ),
                        });
                    }
                    thresholds[node.feature as usize].push(node.threshold);
                }
            }
        }
        let mut features = Vec::with_capacity(thresholds.len());
        for mut ts in thresholds {
            ts.sort_by(f32::total_cmp);
            ts.dedup();
            let vars: Vec<u32> = ts.iter().map(|_| cnf.new_var()).collect();
            // Ordering: x ≤ t_i implies x ≤ t_{i+1}.
            for w in vars.windows(2) {
                cnf.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
            }
            features.push(FeatureVars { thresholds: ts, vars });
        }

        // Pass 2: leaf and vote variables per tree.
        let mut vote_lits = Vec::with_capacity(forest.trees().len());
        for tree in forest.trees() {
            let vote = Lit::pos(cnf.new_var());
            vote_lits.push(vote);
            let mut leaf_lits = Vec::new();
            let mut path: Vec<Lit> = Vec::new();
            encode_subtree(&mut cnf, &features, tree.nodes(), 0, &mut path, vote, &mut leaf_lits);
            cnf.add_clause(&leaf_lits);
        }

        // Pass 3: the two guarded majority constraints. Strict majority =
        // at least ⌊n/2⌋ + 1 votes; its complement is at most ⌊n/2⌋.
        let guard_hotspot = Lit::pos(cnf.new_var());
        let guard_not_hotspot = Lit::pos(cnf.new_var());
        let n = forest.trees().len();
        cnf.add_at_least_k(&vote_lits, n / 2 + 1, Some(guard_hotspot));
        cnf.add_at_most_k(&vote_lits, n / 2, Some(guard_not_hotspot));

        Ok(Self { cnf, features, guard_hotspot, guard_not_hotspot, n_trees: n })
    }

    /// The finished formula.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Features the encoding covers (the forest's feature count).
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Trees in the encoded forest.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Features the forest actually splits on, ascending. Features outside
    /// this set cannot influence any prediction and are dropped from
    /// explanations up front.
    pub fn used_features(&self) -> Vec<usize> {
        (0..self.features.len()).filter(|&j| !self.features[j].thresholds.is_empty()).collect()
    }

    /// The distinct split thresholds of feature `j`, ascending. The grid
    /// cells `(-∞, t_1], (t_1, t_2], …, (t_k, ∞)` are the forest's
    /// resolution on this feature — the brute-force oracle enumerates one
    /// representative per cell.
    pub fn thresholds(&self, j: usize) -> &[f32] {
        &self.features[j].thresholds
    }

    /// Assumption guard selecting "classified hotspot" (strict majority).
    pub fn guard_hotspot(&self) -> Lit {
        self.guard_hotspot
    }

    /// Assumption guard selecting "classified not-hotspot".
    pub fn guard_not_hotspot(&self) -> Lit {
        self.guard_not_hotspot
    }

    /// Appends to `out` the interval literals that pin feature `j` to the
    /// grid cell containing `value`. A NaN value takes the `(t_k, ∞)` cell
    /// — every comparison `x ≤ t` is false — matching how
    /// [`DecisionTree::predict`] routes NaN (right at every split).
    pub fn fix_feature(&self, j: usize, value: f32, out: &mut Vec<Lit>) {
        let f = &self.features[j];
        for (i, &t) in f.thresholds.iter().enumerate() {
            out.push(Lit::with_sign(f.vars[i], value <= t));
        }
    }

    /// The grid cell of feature `j` containing `value` as explicit bounds.
    pub fn interval_of(&self, j: usize, value: f32) -> FeatureInterval {
        let ts = &self.features[j].thresholds;
        // `is_none_or` keeps NaN (incomparable) in the open top cell,
        // matching the all-intervals-false encoding in `fix_feature`.
        let i = ts.partition_point(|&t| value.partial_cmp(&t).is_none_or(|o| o.is_gt()));
        FeatureInterval {
            lower: if i == 0 { None } else { Some(ts[i - 1]) },
            upper: ts.get(i).copied(),
        }
    }
}

/// Recursive walk adding leaf variables and path-implication clauses.
fn encode_subtree(
    cnf: &mut Cnf,
    features: &[FeatureVars],
    nodes: &[TreeNode],
    idx: usize,
    path: &mut Vec<Lit>,
    vote: Lit,
    leaf_lits: &mut Vec<Lit>,
) {
    let node = &nodes[idx];
    if node.is_leaf() {
        let leaf = Lit::pos(cnf.new_var());
        leaf_lits.push(leaf);
        for &p in path.iter() {
            cnf.add_clause(&[leaf.negate(), p]);
        }
        let v = if node.value >= 0.5 { vote } else { vote.negate() };
        cnf.add_clause(&[leaf.negate(), v]);
        return;
    }
    let f = &features[node.feature as usize];
    let i = f
        .thresholds
        .binary_search_by(|t| t.total_cmp(&node.threshold))
        .expect("split threshold was collected in pass 1");
    let d = Lit::pos(f.vars[i]);
    path.push(d);
    encode_subtree(cnf, features, nodes, node.left as usize, path, vote, leaf_lits);
    path.pop();
    path.push(d.negate());
    encode_subtree(cnf, features, nodes, node.right as usize, path, vote, leaf_lits);
    path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::brute_force;
    use crate::solver::{SolveBudget, SolveOutcome, Solver};
    use drcshap_forest::RandomForestTrainer;
    use drcshap_ml::{Dataset, Trainer};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_forest(seed: u64, n_features: usize, n_trees: usize) -> RandomForest {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 60;
        let mut xs = Vec::with_capacity(n * n_features);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..n_features).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            ys.push(row[0] + 0.5 * row[n_features - 1] > 0.8);
            xs.extend_from_slice(&row);
        }
        let groups: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let data = Dataset::from_parts(xs, ys, groups, n_features);
        RandomForestTrainer { n_trees, max_depth: Some(4), ..Default::default() }
            .fit(&data, seed ^ 0x5EED)
    }

    /// The encoding is *exact*: for every grid cell (one representative
    /// value per interval per feature), the CNF under the cell's
    /// assumptions is satisfiable with exactly the guard matching the
    /// forest's majority vote.
    #[test]
    fn encoding_agrees_with_forest_on_every_grid_cell() {
        for seed in 0..3u64 {
            let forest = tiny_forest(seed, 2, 3);
            let enc = ForestEncoding::encode(&forest).expect("encodable");
            let reps: Vec<Vec<f32>> = (0..2)
                .map(|j| {
                    let ts = enc.thresholds(j);
                    let mut r: Vec<f32> = ts.to_vec();
                    r.push(ts.last().copied().unwrap_or(0.0) + 1.0);
                    r
                })
                .collect();
            let mut solver = Solver::from_cnf(enc.cnf());
            for &a in &reps[0] {
                for &b in &reps[1] {
                    let x = [a, b];
                    let want_hot = forest_vote(&forest, &x);
                    let mut assumptions = Vec::new();
                    enc.fix_feature(0, a, &mut assumptions);
                    enc.fix_feature(1, b, &mut assumptions);
                    assumptions.push(enc.guard_hotspot());
                    let hot = solver.solve(&assumptions, &SolveBudget::unlimited());
                    *assumptions.last_mut().unwrap() = enc.guard_not_hotspot();
                    let cold = solver.solve(&assumptions, &SolveBudget::unlimited());
                    assert_eq!(
                        (hot, cold),
                        if want_hot {
                            (SolveOutcome::Sat, SolveOutcome::Unsat)
                        } else {
                            (SolveOutcome::Unsat, SolveOutcome::Sat)
                        },
                        "seed {seed}, cell ({a}, {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn cdcl_and_brute_force_agree_on_an_encoded_forest() {
        // A deliberately tiny forest so full enumeration stays feasible.
        let forest = tiny_forest(7, 2, 1);
        let enc = ForestEncoding::encode(&forest).expect("encodable");
        if enc.cnf().n_vars() > 24 {
            return; // depth cap keeps this rare; skip rather than blow up
        }
        let mut solver = Solver::from_cnf(enc.cnf());
        for guard in [enc.guard_hotspot(), enc.guard_not_hotspot()] {
            let got = solver.solve(&[guard], &SolveBudget::unlimited());
            let want = brute_force(enc.cnf(), &[guard]);
            assert_eq!(got == SolveOutcome::Sat, want.is_some());
        }
    }

    #[test]
    fn interval_of_brackets_the_value() {
        let forest = tiny_forest(11, 3, 4);
        let enc = ForestEncoding::encode(&forest).expect("encodable");
        for &j in &enc.used_features() {
            let ts = enc.thresholds(j);
            let below = enc.interval_of(j, ts[0] - 1.0);
            assert_eq!(below, FeatureInterval { lower: None, upper: Some(ts[0]) });
            let at = enc.interval_of(j, ts[0]);
            assert_eq!(at.upper, Some(ts[0]), "inclusive upper bound");
            let above = enc.interval_of(j, ts[ts.len() - 1] + 1.0);
            assert_eq!(above, FeatureInterval { lower: Some(ts[ts.len() - 1]), upper: None });
            // NaN routes right at every split: the unbounded top cell.
            let nan = enc.interval_of(j, f32::NAN);
            assert_eq!(nan.upper, None);
        }
    }

    #[test]
    fn nan_assumptions_match_predict_routing() {
        let forest = tiny_forest(3, 2, 3);
        let enc = ForestEncoding::encode(&forest).expect("encodable");
        let x = [f32::NAN, 0.4];
        let want_hot = forest_vote(&forest, &x);
        let mut assumptions = Vec::new();
        enc.fix_feature(0, x[0], &mut assumptions);
        enc.fix_feature(1, x[1], &mut assumptions);
        assumptions.push(if want_hot { enc.guard_hotspot() } else { enc.guard_not_hotspot() });
        let mut solver = Solver::from_cnf(enc.cnf());
        assert_eq!(solver.solve(&assumptions, &SolveBudget::unlimited()), SolveOutcome::Sat);
    }
}

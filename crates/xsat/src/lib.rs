#![warn(missing_docs)]
//! SAT-based abductive explanations for `drcshap` Random Forests.
//!
//! SHAP (the paper's explainer) answers "how much did each feature
//! contribute" with an *attribution* — useful, but heuristic in the sense
//! that it carries no guarantee. This crate computes explanations with a
//! formal guarantee: a **subset-minimal sufficient reason** (abductive
//! explanation / PI-explanation) is a set of features such that fixing them
//! to the instance's values *provably* forces the prediction, for every
//! possible completion of the remaining features — and no proper subset
//! does. The dual **contrastive explanation** is a minimal set of features
//! whose change alone could flip the prediction.
//!
//! Three layers, reusable separately:
//!
//! - [`cnf`] — literals, clauses, Sinz cardinality encodings with selector
//!   guards, and a brute-force enumeration oracle for differential tests;
//! - [`solver`] — a small, deterministic CDCL SAT solver (two-watched
//!   literals, 1UIP learning, VSIDS, Luby restarts, assumptions, conflict
//!   budgets) with no external dependencies;
//! - [`encode`] + [`abduct`] — the interval-grid CNF encoding of a
//!   forest's majority vote and the deletion-based minimization engine.
//!
//! # Example
//!
//! ```
//! use drcshap_forest::{MaxFeatures, RandomForestTrainer};
//! use drcshap_ml::{Dataset, Trainer};
//! use drcshap_xsat::{forest_vote, AbductiveEngine, XsatBudget};
//!
//! // A toy forest: hotspot iff feature 0 is large (feature 1 is constant).
//! let xs: Vec<f32> = (0..40).flat_map(|i| [i as f32 / 40.0, 0.5]).collect();
//! let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
//! let groups: Vec<u32> = (0..40).map(|i| i % 4).collect();
//! let data = Dataset::from_parts(xs, ys, groups, 2);
//! let trainer =
//!     RandomForestTrainer { n_trees: 3, max_features: MaxFeatures::All, ..Default::default() };
//! let forest = trainer.fit(&data, 7);
//!
//! let mut engine = AbductiveEngine::new(&forest).unwrap();
//! let x = [0.9f32, 0.5];
//! let ex = engine.explain(&x, &XsatBudget::default()).unwrap();
//! assert_eq!(ex.predicted_hotspot, forest_vote(&forest, &x));
//! // The sufficient reason provably forces the prediction; feature 1
//! // cannot be required — the label never depended on it.
//! assert!(ex.sufficient.contains(&0));
//! ```

pub mod abduct;
pub mod cnf;
pub mod encode;
pub mod solver;

pub use abduct::{AbductiveEngine, AbductiveExplanation, ExplainedFeature, XsatBudget};
pub use cnf::{brute_force, Cnf, Lit};
pub use encode::{forest_vote, forest_vote_count, tree_vote, FeatureInterval, ForestEncoding};
pub use solver::{SolveBudget, SolveOutcome, Solver, SolverStats};

//! Abductive explanations for Random Forest predictions.
//!
//! A **sufficient reason** (abductive explanation, PI-explanation) for the
//! prediction on an instance `x` is a subset `S` of features such that
//! *every* instance agreeing with `x` on `S` receives the same
//! classification — no matter what the features outside `S` do. We compute
//! a **subset-minimal** one with the classic deletion loop: start from all
//! used features and try to drop each in turn, keeping the drop whenever
//! the SAT solver proves the reduced set still forces the class.
//!
//! Formally, `S` is sufficient iff `CNF ∧ fix(S) ∧ guard(¬class)` is
//! unsatisfiable — there is no way to complete the fixed features into an
//! instance of the *opposite* class. One shared CNF (see
//! [`crate::encode`]) serves every query; only the assumptions change, so
//! clauses learned in one call speed up the next.
//!
//! The **contrastive** dual answers "what would have to change": a
//! subset-minimal set `Y` such that altering *only* the features in `Y`
//! can flip the prediction (`CNF ∧ fix(used ∖ Y) ∧ guard(¬class)`
//! satisfiable). By Reiter-style hitting-set duality, every contrastive
//! set intersects every sufficient reason — a cheap cross-check the
//! testkit oracle exploits.
//!
//! Everything here is deterministic for a given engine state: features are
//! probed in ascending index order and the solver itself is deterministic,
//! which is what makes `drcshap explain` output bit-stable across runs.

use std::time::Instant;

use drcshap_forest::RandomForest;
use drcshap_ml::{DrcshapError, XsatError};
use drcshap_telemetry as telemetry;

use crate::cnf::Lit;
use crate::encode::{forest_vote_count, FeatureInterval, ForestEncoding};
use crate::solver::{SolveBudget, SolveOutcome, Solver, SolverStats};

/// Resource budget for one [`AbductiveEngine::explain`] call.
///
/// The conflict caps keep the call deterministic; the optional deadline is
/// for serving paths where wall-clock latency is the contract. Exceeding
/// either surfaces as [`DrcshapError::ExplanationTimeout`] — never a stall.
#[derive(Debug, Clone, Copy)]
pub struct XsatBudget {
    /// Conflicts any single SAT call may spend.
    pub max_conflicts_per_call: u64,
    /// Conflicts the whole explanation may spend across all SAT calls.
    pub max_total_conflicts: u64,
    /// Optional wall-clock cutoff (serve path; `None` keeps determinism).
    pub deadline: Option<Instant>,
}

impl Default for XsatBudget {
    fn default() -> Self {
        Self { max_conflicts_per_call: 20_000, max_total_conflicts: 200_000, deadline: None }
    }
}

impl XsatBudget {
    /// A deterministic budget of `total` conflicts overall and per call.
    pub fn conflicts(total: u64) -> Self {
        Self { max_conflicts_per_call: total, max_total_conflicts: total, deadline: None }
    }
}

/// One explained prediction: the minimal sufficient reason, its feature
/// intervals, the contrastive dual, and solver accounting.
#[derive(Debug, Clone, serde::Serialize)]
pub struct AbductiveExplanation {
    /// The majority-vote classification being explained.
    pub predicted_hotspot: bool,
    /// Trees voting hotspot.
    pub votes_for: usize,
    /// Trees in the forest.
    pub n_trees: usize,
    /// Subset-minimal sufficient reason: feature indices, ascending. Fixing
    /// these features to the instance's values forces the prediction
    /// regardless of every other feature.
    pub sufficient: Vec<usize>,
    /// For each feature in `sufficient`, the half-open interval `(lo, hi]`
    /// of values indistinguishable from the instance's — the actual
    /// condition the forest is applying.
    pub intervals: Vec<ExplainedFeature>,
    /// Subset-minimal contrastive set: changing only these features can
    /// flip the prediction. Empty when the forest can never produce the
    /// opposite class.
    pub contrastive: Vec<usize>,
    /// SAT calls spent.
    pub sat_calls: u32,
    /// Solver conflicts spent.
    pub conflicts: u64,
    /// Solver propagations spent.
    pub propagations: u64,
}

/// A feature of the sufficient reason with its pinned interval.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExplainedFeature {
    /// Feature index.
    pub feature: usize,
    /// The instance's value for this feature (NaN serializes as null).
    pub value: f32,
    /// The grid cell the value is pinned to.
    pub interval: FeatureInterval,
}

/// The abductive-explanation engine: one encoded forest plus a persistent
/// CDCL solver. Clauses learned while explaining one instance carry over
/// to the next, so batch explanation gets cheaper as it goes.
#[derive(Debug, Clone)]
pub struct AbductiveEngine {
    forest: RandomForest,
    encoding: ForestEncoding,
    solver: Solver,
}

/// Tracks budget consumption across the SAT calls of one explanation.
struct BudgetLedger<'a> {
    budget: &'a XsatBudget,
    start: SolverStats,
    sat_calls: u32,
}

impl<'a> BudgetLedger<'a> {
    fn new(budget: &'a XsatBudget, solver: &Solver) -> Self {
        Self { budget, start: solver.stats(), sat_calls: 0 }
    }

    fn spent_conflicts(&self, solver: &Solver) -> u64 {
        solver.stats().conflicts - self.start.conflicts
    }

    /// Runs one budgeted SAT call, translating exhaustion into the typed
    /// timeout error carrying what was already spent.
    fn solve(
        &mut self,
        solver: &mut Solver,
        assumptions: &[Lit],
    ) -> Result<SolveOutcome, DrcshapError> {
        let remaining =
            self.budget.max_total_conflicts.saturating_sub(self.spent_conflicts(solver));
        let timeout = |ledger: &Self, solver: &Solver| DrcshapError::ExplanationTimeout {
            conflicts: ledger.spent_conflicts(solver),
            sat_calls: ledger.sat_calls,
        };
        if remaining == 0 {
            return Err(timeout(self, solver));
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Err(timeout(self, solver));
            }
        }
        let call = SolveBudget {
            max_conflicts: self.budget.max_conflicts_per_call.min(remaining),
            deadline: self.budget.deadline,
        };
        self.sat_calls += 1;
        match solver.solve(assumptions, &call) {
            SolveOutcome::BudgetExhausted => Err(timeout(self, solver)),
            verdict => Ok(verdict),
        }
    }
}

impl AbductiveEngine {
    /// Encodes `forest` and prepares a solver. The forest is cloned so the
    /// engine can later report vote counts without a live reference.
    pub fn new(forest: &RandomForest) -> Result<Self, XsatError> {
        let encoding = ForestEncoding::encode(forest)?;
        let solver = Solver::from_cnf(encoding.cnf());
        Ok(Self { forest: forest.clone(), encoding, solver })
    }

    /// The underlying encoding (threshold grids, guards).
    pub fn encoding(&self) -> &ForestEncoding {
        &self.encoding
    }

    /// Explains the majority-vote prediction for `x` within `budget`.
    ///
    /// # Errors
    ///
    /// - [`DrcshapError::ExplanationTimeout`] when the budget runs out —
    ///   the caller decides whether to degrade (serve path falls back to
    ///   SHAP-only) or retry with a larger budget.
    /// - [`DrcshapError::Xsat`] with [`XsatError::EncodingInvariant`] if
    ///   fixing *every* used feature fails to force the predicted class —
    ///   an internal contradiction between encoder and forest that must
    ///   never happen; surfaced as a typed error, not a panic.
    pub fn explain(
        &mut self,
        x: &[f32],
        budget: &XsatBudget,
    ) -> Result<AbductiveExplanation, DrcshapError> {
        let _span = telemetry::span_with("xsat/explain", || format!("{} features", x.len()));
        let votes_for = forest_vote_count(&self.forest, x);
        let n_trees = self.forest.trees().len();
        let predicted_hotspot = 2 * votes_for > n_trees;
        // To prove a feature set sufficient we ask for a completion of the
        // *opposite* class and expect UNSAT.
        let flip_guard = if predicted_hotspot {
            self.encoding.guard_not_hotspot()
        } else {
            self.encoding.guard_hotspot()
        };
        let used = self.encoding.used_features();
        let mut ledger = BudgetLedger::new(budget, &self.solver);

        let fix = |enc: &ForestEncoding, features: &[usize], out: &mut Vec<Lit>| {
            out.clear();
            for &j in features {
                enc.fix_feature(j, x[j], out);
            }
            out.push(flip_guard);
        };
        let mut assumptions = Vec::new();

        // Invariant: fixing every used feature pins the whole grid cell, so
        // the opposite class must be impossible. Anything else means the
        // encoding disagrees with the forest.
        fix(&self.encoding, &used, &mut assumptions);
        if ledger.solve(&mut self.solver, &assumptions)? != SolveOutcome::Unsat {
            return Err(XsatError::EncodingInvariant {
                detail: format!(
                    "fixing all {} used features does not force the predicted class \
                     (vote {votes_for}/{n_trees})",
                    used.len()
                ),
            }
            .into());
        }

        // Deletion loop: drop each feature whose removal keeps sufficiency.
        // Ascending order + deterministic solver = deterministic output.
        let mut sufficient = used.clone();
        let mut i = 0;
        while i < sufficient.len() {
            let mut candidate = sufficient.clone();
            candidate.remove(i);
            fix(&self.encoding, &candidate, &mut assumptions);
            if ledger.solve(&mut self.solver, &assumptions)? == SolveOutcome::Unsat {
                sufficient = candidate; // still sufficient without it
            } else {
                i += 1; // necessary; keep it
            }
        }

        // Contrastive dual: a minimal set of features whose change alone
        // can flip the class. Start from "all used free"; if even that is
        // SAT, shrink. If it is UNSAT the forest is constant — no
        // contrastive explanation exists.
        let mut contrastive = Vec::new();
        fix(&self.encoding, &[], &mut assumptions);
        if ledger.solve(&mut self.solver, &assumptions)? == SolveOutcome::Sat {
            let mut free: Vec<usize> = used.clone();
            let mut i = 0;
            while i < free.len() {
                // Try pinning feature free[i] too: fix complement ∪ {free[i]}.
                let mut fixed: Vec<usize> =
                    used.iter().copied().filter(|j| !free.contains(j)).collect();
                fixed.push(free[i]);
                fixed.sort_unstable();
                fix(&self.encoding, &fixed, &mut assumptions);
                if ledger.solve(&mut self.solver, &assumptions)? == SolveOutcome::Sat {
                    free.remove(i); // still flippable without touching it
                } else {
                    i += 1; // must stay free
                }
            }
            contrastive = free;
        }

        let stats = self.solver.stats();
        telemetry::counter("xsat/explanations", 1);
        telemetry::counter("xsat/explanation_features", sufficient.len() as u64);
        Ok(AbductiveExplanation {
            predicted_hotspot,
            votes_for,
            n_trees,
            intervals: sufficient
                .iter()
                .map(|&j| ExplainedFeature {
                    feature: j,
                    value: x[j],
                    interval: self.encoding.interval_of(j, x[j]),
                })
                .collect(),
            sufficient,
            contrastive,
            sat_calls: ledger.sat_calls,
            conflicts: ledger.spent_conflicts(&self.solver),
            propagations: stats.propagations - ledger.start.propagations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::forest_vote;
    use drcshap_forest::RandomForestTrainer;
    use drcshap_ml::{Dataset, Trainer};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_forest(seed: u64, n_features: usize, n_trees: usize) -> RandomForest {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 80;
        let mut xs = Vec::with_capacity(n * n_features);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f32> = (0..n_features).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            ys.push(row[0] + 0.5 * row[n_features - 1] > 0.8);
            xs.extend_from_slice(&row);
        }
        let groups: Vec<u32> = (0..n as u32).map(|i| i % 4).collect();
        let data = Dataset::from_parts(xs, ys, groups, n_features);
        RandomForestTrainer { n_trees, max_depth: Some(4), ..Default::default() }
            .fit(&data, seed ^ 0x5EED)
    }

    /// Exhaustively verify sufficiency over the threshold grid: every
    /// completion of the free features (one representative per interval)
    /// keeps the class.
    fn verify_sufficient(
        forest: &RandomForest,
        enc: &ForestEncoding,
        x: &[f32],
        fixed: &[usize],
        want: bool,
    ) -> bool {
        let m = x.len();
        let reps: Vec<Vec<f32>> = (0..m)
            .map(|j| {
                if fixed.contains(&j) {
                    vec![x[j]]
                } else {
                    let ts = enc.thresholds(j);
                    let mut r: Vec<f32> = ts.to_vec();
                    r.push(ts.last().copied().unwrap_or(0.0) + 1.0);
                    r
                }
            })
            .collect();
        let mut probe = x.to_vec();
        let mut idx = vec![0usize; m];
        loop {
            for j in 0..m {
                probe[j] = reps[j][idx[j]];
            }
            if forest_vote(forest, &probe) != want {
                return false;
            }
            let mut j = 0;
            loop {
                if j == m {
                    return true;
                }
                idx[j] += 1;
                if idx[j] < reps[j].len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
            }
        }
    }

    #[test]
    fn explanations_are_sufficient_and_subset_minimal() {
        for seed in 0..6u64 {
            let forest = tiny_forest(seed, 3, 3);
            let mut engine = AbductiveEngine::new(&forest).expect("encodable");
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAB);
            for _ in 0..4 {
                let x: Vec<f32> = (0..3).map(|_| rng.gen_range(0.0f32..1.0)).collect();
                let ex = engine.explain(&x, &XsatBudget::default()).expect("explains");
                assert_eq!(ex.predicted_hotspot, forest_vote(&forest, &x));
                assert!(
                    verify_sufficient(
                        &forest,
                        engine.encoding(),
                        &x,
                        &ex.sufficient,
                        ex.predicted_hotspot
                    ),
                    "seed {seed}: sufficient set {:?} fails brute force",
                    ex.sufficient
                );
                // Subset-minimality: dropping any single feature breaks it.
                for drop in 0..ex.sufficient.len() {
                    let mut reduced = ex.sufficient.clone();
                    reduced.remove(drop);
                    assert!(
                        !verify_sufficient(
                            &forest,
                            engine.encoding(),
                            &x,
                            &reduced,
                            ex.predicted_hotspot
                        ),
                        "seed {seed}: {:?} is not minimal (can drop {})",
                        ex.sufficient,
                        ex.sufficient[drop]
                    );
                }
            }
        }
    }

    #[test]
    fn contrastive_sets_hit_the_sufficient_reason() {
        // Hitting-set duality: every contrastive set intersects every
        // sufficient reason (when both are non-empty).
        for seed in 0..4u64 {
            let forest = tiny_forest(seed, 3, 5);
            let mut engine = AbductiveEngine::new(&forest).expect("encodable");
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCD);
            let x: Vec<f32> = (0..3).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            let ex = engine.explain(&x, &XsatBudget::default()).expect("explains");
            if !ex.contrastive.is_empty() && !ex.sufficient.is_empty() {
                assert!(
                    ex.contrastive.iter().any(|j| ex.sufficient.contains(j)),
                    "seed {seed}: contrastive {:?} misses sufficient {:?}",
                    ex.contrastive,
                    ex.sufficient
                );
            }
        }
    }

    #[test]
    fn explanations_are_deterministic() {
        let forest = tiny_forest(9, 3, 5);
        let x = [0.3f32, 0.7, 0.5];
        let run = || {
            let mut engine = AbductiveEngine::new(&forest).expect("encodable");
            let ex = engine.explain(&x, &XsatBudget::default()).expect("explains");
            (ex.sufficient, ex.contrastive, ex.sat_calls, ex.conflicts)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_budget_times_out_with_typed_error() {
        let forest = tiny_forest(2, 3, 5);
        let mut engine = AbductiveEngine::new(&forest).expect("encodable");
        let got = engine.explain(&[0.5, 0.5, 0.5], &XsatBudget::conflicts(0));
        match got {
            Err(DrcshapError::ExplanationTimeout { sat_calls, .. }) => {
                assert_eq!(sat_calls, 0);
            }
            other => panic!("expected ExplanationTimeout, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_times_out() {
        let forest = tiny_forest(2, 3, 5);
        let mut engine = AbductiveEngine::new(&forest).expect("encodable");
        let budget = XsatBudget {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..XsatBudget::default()
        };
        assert!(matches!(
            engine.explain(&[0.5, 0.5, 0.5], &budget),
            Err(DrcshapError::ExplanationTimeout { .. })
        ));
    }

    #[test]
    fn unused_features_never_appear() {
        // Feature 1 of a single-split-feature dataset: make feature 2 pure
        // noise that the label ignores; it can still be split on by chance,
        // so assert only about features the encoding reports unused.
        let forest = tiny_forest(4, 3, 3);
        let mut engine = AbductiveEngine::new(&forest).expect("encodable");
        let used = engine.encoding().used_features();
        let ex = engine.explain(&[0.2, 0.9, 0.6], &XsatBudget::default()).expect("explains");
        for j in ex.sufficient.iter().chain(ex.contrastive.iter()) {
            assert!(used.contains(j), "feature {j} is unused but appeared in an explanation");
        }
    }
}

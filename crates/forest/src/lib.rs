#![warn(missing_docs)]
//! Tree-based models: CART decision trees, the Random Forest classifier
//! (the paper's proposed model) and RUSBoost (the boosting baseline of
//! Tabrizi et al., compared in Table II).
//!
//! Trees store per-node *cover* (training-weight mass reaching the node),
//! which the SHAP tree explainer (`drcshap-shap`) consumes to compute exact
//! Shapley values in polynomial time.
//!
//! # Example
//!
//! ```
//! use drcshap_forest::RandomForestTrainer;
//! use drcshap_ml::{Classifier, Dataset, Trainer};
//!
//! // XOR-free toy task: feature 0 decides the label.
//! let x: Vec<f32> = (0..40).flat_map(|i| vec![(i % 2) as f32, 0.5]).collect();
//! let y: Vec<bool> = (0..40).map(|i| i % 2 == 1).collect();
//! let data = Dataset::from_parts(x, y, vec![0; 40], 2);
//! let rf = RandomForestTrainer { n_trees: 20, ..RandomForestTrainer::default() }.fit(&data, 7);
//! assert!(rf.score(&[1.0, 0.5]) > rf.score(&[0.0, 0.5]));
//! ```

mod forest;
mod importance;
mod rusboost;
mod tree;

pub use forest::{MaxFeatures, RandomForest, RandomForestTrainer};
pub use importance::OobReport;
pub use rusboost::{RusBoost, RusBoostTrainer};
pub use tree::{DecisionTree, TreeNode, TreeTrainer, LEAF};

//! The Random Forest classifier (Breiman 2001): bagging over unpruned CART
//! trees with per-split feature subsampling, trained in parallel — the
//! paper's proposed model (500 unpruned trees, §IV-A).

use drcshap_ml::{Classifier, Dataset, ModelComplexity, Trainer};
use drcshap_telemetry as telemetry;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTree, TreeTrainer};

/// Per-split feature subsampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// `√M` features per split (the Random Forest default).
    Sqrt,
    /// `log₂(M)` features per split.
    Log2,
    /// A fixed count.
    Count(usize),
    /// All features (bagged trees, no feature randomization).
    All,
}

impl MaxFeatures {
    /// Resolves the policy for `m` total features (at least 1).
    pub fn resolve(self, m: usize) -> usize {
        match self {
            MaxFeatures::Sqrt => (m as f64).sqrt().round() as usize,
            MaxFeatures::Log2 => (m as f64).log2().round() as usize,
            MaxFeatures::Count(k) => k.min(m),
            MaxFeatures::All => m,
        }
        .max(1)
    }
}

/// Random Forest hyperparameters and trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestTrainer {
    /// Number of trees (the paper reports 500).
    pub n_trees: usize,
    /// Maximum tree depth; `None` = unpruned (the paper's setting).
    pub max_depth: Option<usize>,
    /// Minimum weighted samples per leaf.
    pub min_samples_leaf: f64,
    /// Feature subsampling per split.
    pub max_features: MaxFeatures,
}

impl Default for RandomForestTrainer {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: None,
            min_samples_leaf: 1.0,
            max_features: MaxFeatures::Sqrt,
        }
    }
}

impl Trainer for RandomForestTrainer {
    type Model = RandomForest;

    /// Trains `n_trees` trees on bootstrap resamples, in parallel. The
    /// result is deterministic for a given `seed` regardless of thread
    /// scheduling (each tree derives its own RNG stream).
    fn fit(&self, data: &Dataset, seed: u64) -> RandomForest {
        assert!(self.n_trees > 0, "forest needs at least one tree");
        assert!(data.n_samples() > 0, "empty training set");
        let _fit_span = telemetry::span_with("rf/fit", || {
            format!("{} trees x {} samples", self.n_trees, data.n_samples())
        });
        let k = self.max_features.resolve(data.n_features());
        let tree_config = TreeTrainer {
            max_depth: self.max_depth,
            min_samples_split: 2.0,
            min_samples_leaf: self.min_samples_leaf,
            max_features: Some(k),
        };
        let n = data.n_samples();
        let trees: Vec<DecisionTree> = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let _tree_span = telemetry::span("rf/fit_tree");
                telemetry::counter("rf/trees_fit", 1);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0x9e37_79b9 + t as u64));
                // Bootstrap: sample n with replacement, expressed as weights.
                let mut weights = vec![0f64; n];
                for _ in 0..n {
                    weights[rng.gen_range(0..n)] += 1.0;
                }
                tree_config.fit_weighted(data, &weights, rng.gen())
            })
            .collect();
        RandomForest { trees, n_features: data.n_features() }
    }

    fn name(&self) -> &'static str {
        "RF"
    }

    fn describe(&self) -> String {
        format!(
            "RF(trees={}, depth={:?}, min_leaf={}, max_feat={:?})",
            self.n_trees, self.max_depth, self.min_samples_leaf, self.max_features
        )
    }
}

/// A trained Random Forest: the mean of the trees' leaf probabilities is the
/// predicted DRC-hotspot probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Assembles a forest from already-trained trees.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or any tree disagrees on `n_features`.
    pub fn from_trees(trees: Vec<DecisionTree>, n_features: usize) -> Self {
        assert!(!trees.is_empty(), "forest needs at least one tree");
        assert!(trees.iter().all(|t| t.n_features() == n_features), "tree feature-count mismatch");
        Self { trees, n_features }
    }

    /// The ensemble's trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of features the forest was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The predicted probability for one sample (mean over trees).
    pub fn predict_proba(&self, x: &[f32]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        sum / self.trees.len() as f64
    }

    /// NaN-tolerant [`RandomForest::predict_proba`]: every tree routes NaN
    /// values down its per-node default direction (see
    /// [`DecisionTree::predict_nan_aware`]), so the ensemble mean stays a
    /// probability in `[0, 1]` for any input.
    pub fn predict_proba_nan_aware(&self, x: &[f32]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_nan_aware(x)).sum();
        sum / self.trees.len() as f64
    }

    /// The expected prediction over the training distribution: the
    /// cover-weighted mean of root values — SHAP's base value `E[f(x)]`.
    pub fn expected_value(&self) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.nodes()[0].value).sum();
        sum / self.trees.len() as f64
    }

    /// Total node count across trees.
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.nodes().len()).sum()
    }
}

impl Classifier for RandomForest {
    fn score(&self, x: &[f32]) -> f64 {
        self.predict_proba(x)
    }

    fn complexity(&self) -> ModelComplexity {
        let path_ops: f64 = self.trees.iter().map(|t| t.mean_path_length() * 2.0 + 1.0).sum();
        ModelComplexity {
            num_parameters: self.total_nodes() * 5,
            prediction_ops: path_ops.ceil() as usize + self.trees.len(),
        }
    }

    fn name(&self) -> &'static str {
        "RF"
    }

    fn expected_features(&self) -> Option<usize> {
        Some(self.n_features)
    }

    fn score_nan_aware(&self, x: &[f32]) -> f64 {
        self.predict_proba_nan_aware(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy threshold task: label = (x0 > 0.5) with ~10% flips.
    fn noisy_threshold(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let v: f32 = rng.gen_range(0.0..1.0);
            let noise: f32 = rng.gen_range(0.0..1.0);
            let label = if noise < 0.1 { v <= 0.5 } else { v > 0.5 };
            x.push(v);
            x.push(rng.gen_range(0.0..1.0)); // irrelevant feature
            y.push(label);
        }
        Dataset::from_parts(x, y, vec![0; n], 2)
    }

    #[test]
    fn forest_beats_chance_on_noisy_task() {
        let train = noisy_threshold(400, 1);
        let test = noisy_threshold(200, 2);
        let rf = RandomForestTrainer { n_trees: 30, ..Default::default() }.fit(&train, 7);
        let scores = rf.score_dataset(&test);
        let auc = drcshap_ml::roc_auc(&scores, test.labels());
        assert!(auc > 0.85, "auc {auc}");
    }

    #[test]
    fn fit_is_deterministic_across_runs() {
        let train = noisy_threshold(100, 3);
        let a = RandomForestTrainer { n_trees: 8, ..Default::default() }.fit(&train, 42);
        let b = RandomForestTrainer { n_trees: 8, ..Default::default() }.fit(&train, 42);
        assert_eq!(a, b);
        let c = RandomForestTrainer { n_trees: 8, ..Default::default() }.fit(&train, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn probabilities_average_trees() {
        let train = noisy_threshold(100, 4);
        let rf = RandomForestTrainer { n_trees: 5, ..Default::default() }.fit(&train, 1);
        let x = [0.9f32, 0.5];
        let manual: f64 =
            rf.trees().iter().map(|t| t.predict(&x)).sum::<f64>() / rf.trees().len() as f64;
        assert!((rf.predict_proba(&x) - manual).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&rf.predict_proba(&x)));
    }

    #[test]
    fn expected_value_near_base_rate() {
        let train = noisy_threshold(500, 5);
        let rf = RandomForestTrainer { n_trees: 20, ..Default::default() }.fit(&train, 1);
        let base = train.positive_rate();
        assert!((rf.expected_value() - base).abs() < 0.1);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::Sqrt.resolve(387), 20);
        assert_eq!(MaxFeatures::Log2.resolve(387), 9);
        assert_eq!(MaxFeatures::Count(50).resolve(30), 30);
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(1), 1);
    }

    #[test]
    fn nan_aware_forest_stays_in_probability_range() {
        let train = noisy_threshold(200, 9);
        let rf = RandomForestTrainer { n_trees: 15, ..Default::default() }.fit(&train, 3);
        // NaN-free inputs: identical to the plain path.
        let x = [0.7f32, 0.3];
        assert_eq!(rf.predict_proba_nan_aware(&x), rf.predict_proba(&x));
        // Any mix of NaN/Inf still yields a probability.
        for x in [[f32::NAN, 0.3], [f32::NAN, f32::NAN], [f32::INFINITY, f32::NAN]] {
            let p = rf.predict_proba_nan_aware(&x);
            assert!((0.0..=1.0).contains(&p), "p = {p} for {x:?}");
        }
    }

    #[test]
    fn complexity_scales_with_trees() {
        let train = noisy_threshold(100, 6);
        let small = RandomForestTrainer { n_trees: 5, ..Default::default() }.fit(&train, 1);
        let large = RandomForestTrainer { n_trees: 20, ..Default::default() }.fit(&train, 1);
        assert!(large.complexity().num_parameters > small.complexity().num_parameters);
        assert!(large.complexity().prediction_ops > small.complexity().prediction_ops);
    }

    #[test]
    fn more_trees_do_not_hurt() {
        // The paper: adding trees "would not hurt the predicting
        // performance". Compare 5 vs 50 trees on held-out data.
        let train = noisy_threshold(300, 7);
        let test = noisy_threshold(200, 8);
        let few = RandomForestTrainer { n_trees: 5, ..Default::default() }.fit(&train, 1);
        let many = RandomForestTrainer { n_trees: 50, ..Default::default() }.fit(&train, 1);
        let auc_few = drcshap_ml::roc_auc(&few.score_dataset(&test), test.labels());
        let auc_many = drcshap_ml::roc_auc(&many.score_dataset(&test), test.labels());
        assert!(auc_many >= auc_few - 0.02, "few {auc_few} many {auc_many}");
    }
}

//! Global model diagnostics for Random Forests: out-of-bag (OOB) scoring
//! and impurity-based feature importance.
//!
//! Both are classic Breiman-forest instruments. Impurity importance gives a
//! *global* feature ranking; the paper's point is that SHAP adds *local*
//! (per-prediction) attributions on top — the ablation bench compares the
//! two rankings.

use drcshap_ml::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::forest::{RandomForest, RandomForestTrainer};
use crate::tree::TreeTrainer;

/// Out-of-bag evaluation of a forest fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OobReport {
    /// Per-sample OOB probability; `None` for samples in every bootstrap.
    pub oob_scores: Vec<Option<f64>>,
    /// Fraction of samples with at least one OOB vote.
    pub coverage: f64,
}

impl OobReport {
    /// OOB scores and labels of covered samples, for metric computation.
    pub fn covered(&self, data: &Dataset) -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (i, s) in self.oob_scores.iter().enumerate() {
            if let Some(v) = s {
                scores.push(*v);
                labels.push(data.label(i));
            }
        }
        (scores, labels)
    }
}

impl RandomForestTrainer {
    /// Fits a forest exactly as `Trainer::fit` (same trees for the same
    /// seed) while also collecting out-of-bag predictions.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero trees.
    pub fn fit_with_oob(&self, data: &Dataset, seed: u64) -> (RandomForest, OobReport) {
        assert!(self.n_trees > 0, "forest needs at least one tree");
        let n = data.n_samples();
        assert!(n > 0, "empty training set");
        let k = self.max_features.resolve(data.n_features());
        let tree_config = TreeTrainer {
            max_depth: self.max_depth,
            min_samples_split: 2.0,
            min_samples_leaf: self.min_samples_leaf,
            max_features: Some(k),
        };
        // Must mirror `Trainer::fit` exactly: same seed stream per tree.
        let fits: Vec<(crate::tree::DecisionTree, Vec<bool>)> = (0..self.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0x9e37_79b9 + t as u64));
                let mut weights = vec![0f64; n];
                for _ in 0..n {
                    weights[rng.gen_range(0..n)] += 1.0;
                }
                let oob: Vec<bool> = weights.iter().map(|&w| w == 0.0).collect();
                (tree_config.fit_weighted(data, &weights, rng.gen()), oob)
            })
            .collect();

        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for (tree, oob) in &fits {
            for i in 0..n {
                if oob[i] {
                    sums[i] += tree.predict(data.row(i));
                    counts[i] += 1;
                }
            }
        }
        let oob_scores: Vec<Option<f64>> =
            (0..n).map(|i| (counts[i] > 0).then(|| sums[i] / counts[i] as f64)).collect();
        let coverage = counts.iter().filter(|&&c| c > 0).count() as f64 / n as f64;

        let trees = fits.into_iter().map(|(t, _)| t).collect();
        (RandomForest::from_trees(trees, data.n_features()), OobReport { oob_scores, coverage })
    }
}

impl RandomForest {
    /// Impurity-based (mean-decrease-in-impurity) feature importance,
    /// normalized to sum to 1 (all-zero when no tree ever splits).
    ///
    /// Each split's Gini decrease, weighted by the fraction of training
    /// mass reaching it, is credited to its feature — reconstructed from
    /// the stored node values and covers.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut importance = vec![0.0f64; self.n_features()];
        let gini = |p: f64| 2.0 * p * (1.0 - p);
        for tree in self.trees() {
            let nodes = tree.nodes();
            let root_cover = nodes[0].cover.max(1e-12);
            for node in nodes {
                if node.is_leaf() {
                    continue;
                }
                let l = &nodes[node.left as usize];
                let r = &nodes[node.right as usize];
                let decrease = node.cover * gini(node.value)
                    - l.cover * gini(l.value)
                    - r.cover * gini(r.value);
                importance[node.feature as usize] += (decrease / root_cover).max(0.0);
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            for v in &mut importance {
                *v /= total;
            }
        }
        importance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drcshap_ml::Trainer;

    /// Label = (x0 > 0.5); x1 is noise.
    fn threshold_data(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let v: f32 = rng.gen_range(0.0..1.0);
            x.push(v);
            x.push(rng.gen_range(0.0..1.0));
            y.push(v > 0.5);
        }
        Dataset::from_parts(x, y, vec![0; n], 2)
    }

    #[test]
    fn oob_fit_produces_identical_forest() {
        let data = threshold_data(150, 1);
        let trainer = RandomForestTrainer { n_trees: 12, ..Default::default() };
        let plain = trainer.fit(&data, 9);
        let (with_oob, _) = trainer.fit_with_oob(&data, 9);
        assert_eq!(plain, with_oob);
    }

    #[test]
    fn oob_coverage_is_high_with_enough_trees() {
        let data = threshold_data(100, 2);
        let trainer = RandomForestTrainer { n_trees: 30, ..Default::default() };
        let (_, oob) = trainer.fit_with_oob(&data, 1);
        // P(in every bootstrap of 30 trees) is essentially zero.
        assert!(oob.coverage > 0.99, "coverage {}", oob.coverage);
    }

    #[test]
    fn oob_score_estimates_generalization() {
        let data = threshold_data(400, 3);
        let trainer = RandomForestTrainer { n_trees: 30, ..Default::default() };
        let (_, oob) = trainer.fit_with_oob(&data, 1);
        let (scores, labels) = oob.covered(&data);
        let auc = drcshap_ml::roc_auc(&scores, &labels);
        assert!(auc > 0.9, "OOB AUC {auc}");
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        let data = threshold_data(300, 4);
        let rf = RandomForestTrainer { n_trees: 20, ..Default::default() }.fit(&data, 1);
        let imp = rf.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 5.0 * imp[1], "informative feature not dominant: {imp:?}");
    }

    #[test]
    fn importance_is_all_zero_for_stump_forest() {
        // Single-class data: no splits, no importance.
        let data = Dataset::from_parts(vec![0.0, 1.0, 2.0], vec![true, true, true], vec![0; 3], 1);
        let rf = RandomForestTrainer { n_trees: 3, ..Default::default() }.fit(&data, 1);
        let imp = rf.feature_importance();
        assert!(imp.iter().all(|&v| v == 0.0));
    }
}

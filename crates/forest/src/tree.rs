//! CART decision trees: weighted Gini splitting, flat node storage, and the
//! per-node cover statistics the SHAP tree explainer requires.

use drcshap_ml::{Classifier, Dataset, ModelComplexity, Trainer};
use rand::seq::index::sample;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Sentinel child index marking a leaf.
pub const LEAF: i32 = -1;

/// One node of a [`DecisionTree`], in flat array storage.
///
/// Internal nodes route `x[feature] <= threshold` to `left`, else `right`
/// (the scikit-learn convention). Leaves have `left == right == LEAF`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Split feature index (unused on leaves).
    pub feature: u32,
    /// Split threshold (unused on leaves).
    pub threshold: f32,
    /// Left child index, or [`LEAF`].
    pub left: i32,
    /// Right child index, or [`LEAF`].
    pub right: i32,
    /// Node output: weighted positive fraction of training samples here.
    pub value: f64,
    /// Training-weight mass reaching this node (SHAP's cover).
    pub cover: f64,
}

impl TreeNode {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left == LEAF
    }
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_features: usize,
}

impl DecisionTree {
    /// The flat node array (root at index 0).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Maximum root-to-leaf depth (root counts as depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[TreeNode], i: usize) -> usize {
            let n = &nodes[i];
            if n.is_leaf() {
                0
            } else {
                1 + walk(nodes, n.left as usize).max(walk(nodes, n.right as usize))
            }
        }
        walk(&self.nodes, 0)
    }

    /// Mean leaf depth weighted by cover (expected prediction path length).
    pub fn mean_path_length(&self) -> f64 {
        fn walk(nodes: &[TreeNode], i: usize, depth: usize, acc: &mut (f64, f64)) {
            let n = &nodes[i];
            if n.is_leaf() {
                acc.0 += n.cover * depth as f64;
                acc.1 += n.cover;
            } else {
                walk(nodes, n.left as usize, depth + 1, acc);
                walk(nodes, n.right as usize, depth + 1, acc);
            }
        }
        let mut acc = (0.0, 0.0);
        walk(&self.nodes, 0, 0, &mut acc);
        if acc.1 > 0.0 {
            acc.0 / acc.1
        } else {
            0.0
        }
    }

    /// The probability-like output for one sample: the value of the leaf
    /// the sample routes to.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is smaller than the split features require.
    pub fn predict(&self, x: &[f32]) -> f64 {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.is_leaf() {
                return n.value;
            }
            i = if x[n.feature as usize] <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// NaN-tolerant prediction: a NaN split value (or a feature index past
    /// the end of a short vector) routes down the node's *default direction*
    /// — the child that received more training mass, XGBoost-style — so the
    /// result is always a leaf value from the training distribution, never a
    /// panic or a poisoned score. Infinities take their natural comparison
    /// branch. On NaN-free full-length inputs this is identical to
    /// [`DecisionTree::predict`].
    pub fn predict_nan_aware(&self, x: &[f32]) -> f64 {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.is_leaf() {
                return n.value;
            }
            let v = x.get(n.feature as usize).copied().unwrap_or(f32::NAN);
            i = if v.is_nan() {
                self.default_child(n)
            } else if v <= n.threshold {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }

    /// The default-direction child of an internal node: the one with the
    /// larger training cover (ties go left).
    fn default_child(&self, n: &TreeNode) -> usize {
        if self.nodes[n.left as usize].cover >= self.nodes[n.right as usize].cover {
            n.left as usize
        } else {
            n.right as usize
        }
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }
}

impl Classifier for DecisionTree {
    fn score(&self, x: &[f32]) -> f64 {
        self.predict(x)
    }

    fn complexity(&self) -> ModelComplexity {
        // feature + threshold + two children + value per stored node.
        ModelComplexity {
            num_parameters: self.nodes.len() * 5,
            // One comparison + one index update per level, plus the leaf read.
            prediction_ops: (self.mean_path_length() * 2.0).ceil() as usize + 1,
        }
    }

    fn name(&self) -> &'static str {
        "CART"
    }

    fn expected_features(&self) -> Option<usize> {
        Some(self.n_features)
    }

    fn score_nan_aware(&self, x: &[f32]) -> f64 {
        self.predict_nan_aware(x)
    }
}

/// CART hyperparameters and trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeTrainer {
    /// Maximum depth; `None` grows unpruned trees (the paper's RF uses
    /// "500 unpruned decision trees").
    pub max_depth: Option<usize>,
    /// Minimum weighted samples to attempt a split.
    pub min_samples_split: f64,
    /// Minimum weighted samples per leaf.
    pub min_samples_leaf: f64,
    /// Features tried per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for TreeTrainer {
    fn default() -> Self {
        Self { max_depth: None, min_samples_split: 2.0, min_samples_leaf: 1.0, max_features: None }
    }
}

impl TreeTrainer {
    /// Fits a tree with explicit per-sample weights (bagging counts, boosting
    /// weights). Samples with zero weight are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != data.n_samples()` or all weights are zero.
    pub fn fit_weighted(&self, data: &Dataset, weights: &[f64], seed: u64) -> DecisionTree {
        assert_eq!(weights.len(), data.n_samples(), "weight count mismatch");
        let indices: Vec<u32> =
            (0..data.n_samples() as u32).filter(|&i| weights[i as usize] > 0.0).collect();
        assert!(!indices.is_empty(), "no samples with positive weight");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut builder = Builder { data, weights, config: self, nodes: Vec::new(), rng: &mut rng };
        builder.build(indices, 0);
        DecisionTree { nodes: builder.nodes, n_features: data.n_features() }
    }
}

impl Trainer for TreeTrainer {
    type Model = DecisionTree;

    fn fit(&self, data: &Dataset, seed: u64) -> DecisionTree {
        self.fit_weighted(data, &vec![1.0; data.n_samples()], seed)
    }

    fn name(&self) -> &'static str {
        "CART"
    }

    fn describe(&self) -> String {
        format!(
            "CART(depth={:?}, min_split={}, min_leaf={}, max_feat={:?})",
            self.max_depth, self.min_samples_split, self.min_samples_leaf, self.max_features
        )
    }
}

struct Builder<'a, R: Rng> {
    data: &'a Dataset,
    weights: &'a [f64],
    config: &'a TreeTrainer,
    nodes: Vec<TreeNode>,
    rng: &'a mut R,
}

impl<R: Rng> Builder<'_, R> {
    /// Recursively builds the subtree over `indices`; returns its node index.
    fn build(&mut self, indices: Vec<u32>, depth: usize) -> usize {
        let (total_w, pos_w) = self.mass(&indices);
        let value = if total_w > 0.0 { pos_w / total_w } else { 0.0 };
        let node_index = self.nodes.len();
        self.nodes.push(TreeNode {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value,
            cover: total_w,
        });

        let pure = pos_w <= 1e-12 || (total_w - pos_w) <= 1e-12;
        let depth_capped = self.config.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_capped || total_w < self.config.min_samples_split {
            return node_index;
        }
        let Some((feature, threshold)) = self.best_split(&indices) else {
            return node_index;
        };

        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .into_iter()
            .partition(|&i| self.data.row(i as usize)[feature as usize] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return node_index;
        }
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[node_index].feature = feature;
        self.nodes[node_index].threshold = threshold;
        self.nodes[node_index].left = left as i32;
        self.nodes[node_index].right = right as i32;
        node_index
    }

    fn mass(&self, indices: &[u32]) -> (f64, f64) {
        let mut total = 0.0;
        let mut pos = 0.0;
        for &i in indices {
            let w = self.weights[i as usize];
            total += w;
            if self.data.label(i as usize) {
                pos += w;
            }
        }
        (total, pos)
    }

    /// The best (feature, threshold) by weighted Gini impurity decrease.
    fn best_split(&mut self, indices: &[u32]) -> Option<(u32, f32)> {
        let m = self.data.n_features();
        let k = self.config.max_features.unwrap_or(m).min(m);
        let features: Vec<usize> =
            if k == m { (0..m).collect() } else { sample(self.rng, m, k).into_iter().collect() };

        let (total_w, pos_w) = self.mass(indices);
        let parent_gini = gini(pos_w, total_w);
        let min_leaf = self.config.min_samples_leaf;

        let mut best: Option<(f64, u32, f32)> = None;
        let mut column: Vec<(f32, f64, f64)> = Vec::with_capacity(indices.len());
        for f in features {
            column.clear();
            for &i in indices {
                let w = self.weights[i as usize];
                let label_w = if self.data.label(i as usize) { w } else { 0.0 };
                column.push((self.data.row(i as usize)[f], w, label_w));
            }
            column.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            for idx in 0..column.len() - 1 {
                let (v, w, lw) = column[idx];
                left_w += w;
                left_pos += lw;
                let next_v = column[idx + 1].0;
                if v == next_v {
                    continue; // not a valid threshold between distinct values
                }
                let right_w = total_w - left_w;
                let right_pos = pos_w - left_pos;
                if left_w < min_leaf || right_w < min_leaf {
                    continue;
                }
                let score = parent_gini
                    - (left_w / total_w) * gini(left_pos, left_w)
                    - (right_w / total_w) * gini(right_pos, right_w);
                // Midpoint threshold between distinct values.
                let threshold = (v + next_v) / 2.0;
                // Guard against f32 midpoint rounding up to next_v.
                let threshold = if threshold >= next_v { v } else { threshold };
                if best.is_none_or(|(s, _, _)| score > s) && score > 1e-12 {
                    best = Some((score, f as u32, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

/// Gini impurity of a binary node with `pos` positive mass out of `total`.
fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dataset(rows: &[(&[f32], bool)]) -> Dataset {
        let m = rows[0].0.len();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (r, label) in rows {
            x.extend_from_slice(r);
            y.push(*label);
        }
        let n = y.len();
        Dataset::from_parts(x, y, vec![0; n], m)
    }

    #[test]
    fn splits_a_separable_feature() {
        let data = dataset(&[
            (&[0.0, 9.0], false),
            (&[0.1, 8.0], false),
            (&[0.9, 7.0], true),
            (&[1.0, 9.5], true),
        ]);
        let tree = TreeTrainer::default().fit(&data, 0);
        assert_eq!(tree.predict(&[0.05, 0.0]), 0.0);
        assert_eq!(tree.predict(&[0.95, 0.0]), 1.0);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn learns_xor_with_enough_depth() {
        let data = dataset(&[
            (&[0.0, 0.0], false),
            (&[0.0, 1.0], true),
            (&[1.0, 0.0], true),
            (&[1.0, 1.0], false),
            (&[0.0, 0.1], false),
            (&[0.1, 1.0], true),
            (&[1.0, 0.1], true),
            (&[0.9, 1.0], false),
        ]);
        let tree = TreeTrainer::default().fit(&data, 0);
        assert!(tree.predict(&[0.0, 1.0]) > 0.5);
        assert!(tree.predict(&[1.0, 1.0]) < 0.5);
        assert!(tree.predict(&[0.0, 0.0]) < 0.5);
    }

    #[test]
    fn max_depth_limits_growth() {
        let data = dataset(&[
            (&[0.0, 0.0], false),
            (&[0.0, 1.0], true),
            (&[1.0, 0.0], true),
            (&[1.0, 1.0], false),
        ]);
        let stump = TreeTrainer { max_depth: Some(1), ..TreeTrainer::default() }.fit(&data, 0);
        assert!(stump.depth() <= 1);
    }

    #[test]
    fn covers_sum_correctly() {
        let data = dataset(&[(&[0.0], false), (&[0.2], false), (&[0.8], true), (&[1.0], true)]);
        let tree = TreeTrainer::default().fit(&data, 0);
        let root = &tree.nodes()[0];
        assert_eq!(root.cover, 4.0);
        // Children covers sum to parent cover.
        for n in tree.nodes() {
            if !n.is_leaf() {
                let l = tree.nodes()[n.left as usize].cover;
                let r = tree.nodes()[n.right as usize].cover;
                assert!((l + r - n.cover).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn weighted_fit_respects_weights() {
        // The single positive has huge weight: the root value reflects it.
        let data = dataset(&[(&[0.0], false), (&[1.0], true)]);
        let tree = TreeTrainer { max_depth: Some(0), ..TreeTrainer::default() }.fit_weighted(
            &data,
            &[1.0, 9.0],
            0,
        );
        assert!((tree.nodes()[0].value - 0.9).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_samples_are_ignored() {
        let data = dataset(&[(&[0.0], false), (&[1.0], true), (&[0.5], true)]);
        let tree = TreeTrainer::default().fit_weighted(&data, &[1.0, 1.0, 0.0], 0);
        assert_eq!(tree.nodes()[0].cover, 2.0);
    }

    #[test]
    fn pure_nodes_do_not_split() {
        let data = dataset(&[(&[0.0], true), (&[1.0], true)]);
        let tree = TreeTrainer::default().fit(&data, 0);
        assert_eq!(tree.nodes().len(), 1);
        assert_eq!(tree.predict(&[0.5]), 1.0);
    }

    #[test]
    fn complexity_counts_nodes() {
        let data = dataset(&[(&[0.0], false), (&[0.4], false), (&[0.6], true), (&[1.0], true)]);
        let tree = TreeTrainer::default().fit(&data, 0);
        let c = tree.complexity();
        assert_eq!(c.num_parameters, tree.nodes().len() * 5);
        assert!(c.prediction_ops >= 2);
    }

    #[test]
    fn nan_aware_matches_plain_on_finite_inputs() {
        let data = dataset(&[
            (&[0.0, 9.0], false),
            (&[0.1, 8.0], false),
            (&[0.9, 7.0], true),
            (&[1.0, 9.5], true),
        ]);
        let tree = TreeTrainer::default().fit(&data, 0);
        for q in [[0.05f32, 7.5], [0.95, 9.0], [0.5, 8.2]] {
            assert_eq!(tree.predict_nan_aware(&q), tree.predict(&q));
        }
    }

    #[test]
    fn nan_routes_down_the_heavier_child() {
        // Three negatives below the split, one positive above: the default
        // direction at the root is the heavier left (negative) child.
        let data = dataset(&[(&[0.0], false), (&[0.1], false), (&[0.2], false), (&[1.0], true)]);
        let tree = TreeTrainer::default().fit(&data, 0);
        let p = tree.predict_nan_aware(&[f32::NAN]);
        assert_eq!(p, 0.0, "NaN should follow the 3-sample child");
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn short_vectors_degrade_to_default_direction() {
        let data = dataset(&[
            (&[0.0, 0.3], false),
            (&[0.2, 0.1], false),
            (&[0.8, 0.9], true),
            (&[1.0, 0.7], true),
        ]);
        let tree = TreeTrainer::default().fit(&data, 0);
        // Empty and short inputs still land on a leaf value.
        for x in [&[][..], &[0.9][..]] {
            let p = tree.predict_nan_aware(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn infinities_take_their_comparison_branch() {
        let data = dataset(&[(&[0.0], false), (&[1.0], true)]);
        let tree = TreeTrainer::default().fit(&data, 0);
        assert_eq!(tree.predict_nan_aware(&[f32::NEG_INFINITY]), tree.predict(&[-1e30]));
        assert_eq!(tree.predict_nan_aware(&[f32::INFINITY]), tree.predict(&[1e30]));
    }

    proptest! {
        /// Training accuracy is perfect on duplicate-free unpruned fits.
        #[test]
        fn prop_unpruned_tree_memorizes(
            vals in prop::collection::hash_set(0u32..1000, 4..40)
        ) {
            let rows: Vec<(f32, bool)> = vals
                .into_iter()
                .map(|v| (v as f32 / 1000.0, v % 3 == 0))
                .collect();
            let mut x = Vec::new();
            let mut y = Vec::new();
            for &(v, l) in &rows {
                x.push(v);
                y.push(l);
            }
            let n = y.len();
            let data = Dataset::from_parts(x, y, vec![0; n], 1);
            let tree = TreeTrainer::default().fit(&data, 0);
            for &(v, l) in &rows {
                let p = tree.predict(&[v]);
                prop_assert_eq!(p > 0.5, l, "value {} label {}", v, l);
            }
        }

        /// Predictions are always valid probabilities.
        #[test]
        fn prop_predictions_are_probabilities(
            seed in any::<u64>(),
            queries in prop::collection::vec(-2.0f32..2.0, 1..20)
        ) {
            let data = dataset(&[
                (&[0.1, 0.5], false),
                (&[0.3, 0.1], true),
                (&[0.7, 0.9], false),
                (&[0.9, 0.3], true),
                (&[0.2, 0.2], true),
            ]);
            let tree = TreeTrainer {
                max_features: Some(1),
                ..TreeTrainer::default()
            }
            .fit(&data, seed);
            for q in queries {
                let p = tree.predict(&[q, -q]);
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}

//! RUSBoost (Seiffert et al.): AdaBoost.M1 with random undersampling of the
//! majority class before each boosting round — the boosting baseline the
//! paper compares against (Tabrizi et al. 2017, 100 iterations).

use drcshap_ml::{Classifier, Dataset, ModelComplexity, Trainer};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::tree::{DecisionTree, TreeTrainer};

/// RUSBoost hyperparameters and trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RusBoostTrainer {
    /// Boosting iterations (the paper's baseline uses 100).
    pub n_iterations: usize,
    /// Depth of the weak-learner trees.
    pub weak_depth: usize,
    /// Majority:minority ratio after undersampling (1.0 = balanced).
    pub target_ratio: f64,
    /// Learning rate applied to the stage weights.
    pub learning_rate: f64,
}

impl Default for RusBoostTrainer {
    fn default() -> Self {
        Self { n_iterations: 100, weak_depth: 4, target_ratio: 1.0, learning_rate: 1.0 }
    }
}

impl Trainer for RusBoostTrainer {
    type Model = RusBoost;

    /// Boosting is inherently sequential (the paper notes it is "not easy to
    /// parallelize due to sequential updates"); rounds run one after another.
    fn fit(&self, data: &Dataset, seed: u64) -> RusBoost {
        assert!(self.n_iterations > 0, "need at least one boosting round");
        let n = data.n_samples();
        assert!(n > 0, "empty training set");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let minority: Vec<usize> = (0..n).filter(|&i| data.label(i)).collect();
        let majority: Vec<usize> = (0..n).filter(|&i| !data.label(i)).collect();
        // Degenerate single-class data: constant model.
        if minority.is_empty() || majority.is_empty() {
            return RusBoost { stages: Vec::new(), n_features: data.n_features() };
        }

        let weak = TreeTrainer {
            max_depth: Some(self.weak_depth),
            min_samples_split: 2.0,
            min_samples_leaf: 1.0,
            max_features: None,
        };

        // AdaBoost.M1 distribution over the full training set.
        let mut dist = vec![1.0 / n as f64; n];
        let mut stages: Vec<(DecisionTree, f64)> = Vec::with_capacity(self.n_iterations);
        for t in 0..self.n_iterations {
            // Random undersampling: keep all minority samples, draw majority
            // samples (by current distribution) to the target ratio.
            let keep_majority =
                ((minority.len() as f64 * self.target_ratio) as usize).clamp(1, majority.len());
            let mut weights = vec![0f64; n];
            for &i in &minority {
                weights[i] = dist[i];
            }
            let total_major: f64 = majority.iter().map(|&i| dist[i]).sum();
            for _ in 0..keep_majority {
                // Draw proportionally to the boosting distribution.
                let mut u = rng.gen_range(0.0..total_major.max(1e-12));
                let mut chosen = majority[majority.len() - 1];
                for &i in &majority {
                    u -= dist[i];
                    if u <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                weights[chosen] += dist[chosen].max(1e-12);
            }

            // Rescale to sample-count semantics so the weak learner's
            // min_samples_* thresholds keep their meaning.
            let nonzero = weights.iter().filter(|&&w| w > 0.0).count().max(1);
            let mass: f64 = weights.iter().sum();
            let scale = nonzero as f64 / mass.max(1e-12);
            for w in &mut weights {
                *w *= scale;
            }

            let tree = weak.fit_weighted(data, &weights, rng.gen());

            // Weighted error on the FULL training distribution.
            let mut err = 0.0;
            let mut correct = vec![false; n];
            for i in 0..n {
                let predicted = tree.predict(data.row(i)) > 0.5;
                correct[i] = predicted == data.label(i);
                if !correct[i] {
                    err += dist[i];
                }
            }
            if err >= 0.5 {
                // Weak learner no better than chance: stop boosting.
                if stages.is_empty() {
                    stages.push((tree, 1.0));
                }
                break;
            }
            let err = err.max(1e-12);
            let alpha = self.learning_rate * 0.5 * ((1.0 - err) / err).ln();
            // Reweight: misclassified up, correct down; renormalize.
            let mut z = 0.0;
            for i in 0..n {
                dist[i] *= if correct[i] { (-alpha).exp() } else { alpha.exp() };
                z += dist[i];
            }
            for d in &mut dist {
                *d /= z;
            }
            stages.push((tree, alpha));
            let _ = t;
        }
        RusBoost { stages, n_features: data.n_features() }
    }

    fn name(&self) -> &'static str {
        "RUSBoost"
    }

    fn describe(&self) -> String {
        format!(
            "RUSBoost(iters={}, depth={}, ratio={}, lr={})",
            self.n_iterations, self.weak_depth, self.target_ratio, self.learning_rate
        )
    }
}

/// A trained RUSBoost ensemble: `Σ αₜ · (2hₜ(x) − 1)` is the decision score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RusBoost {
    stages: Vec<(DecisionTree, f64)>,
    n_features: usize,
}

impl RusBoost {
    /// The boosting stages `(tree, stage weight α)`.
    pub fn stages(&self) -> &[(DecisionTree, f64)] {
        &self.stages
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Classifier for RusBoost {
    fn score(&self, x: &[f32]) -> f64 {
        self.stages
            .iter()
            .map(|(tree, alpha)| alpha * (2.0 * (tree.predict(x) > 0.5) as i32 as f64 - 1.0))
            .sum()
    }

    fn complexity(&self) -> ModelComplexity {
        let nodes: usize = self.stages.iter().map(|(t, _)| t.nodes().len()).sum();
        let path_ops: f64 = self.stages.iter().map(|(t, _)| t.mean_path_length() * 2.0 + 2.0).sum();
        ModelComplexity {
            num_parameters: nodes * 5 + self.stages.len(),
            prediction_ops: path_ops.ceil() as usize,
        }
    }

    fn name(&self) -> &'static str {
        "RUSBoost"
    }

    fn expected_features(&self) -> Option<usize> {
        Some(self.n_features)
    }

    fn score_nan_aware(&self, x: &[f32]) -> f64 {
        // Same weighted vote, with each weak tree routing NaN down its
        // default direction.
        self.stages
            .iter()
            .map(|(tree, alpha)| {
                alpha * (2.0 * (tree.predict_nan_aware(x) > 0.5) as i32 as f64 - 1.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Imbalanced task: 5% positives above a threshold on feature 0.
    fn imbalanced(n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.gen_range(0.0..1.0) < 0.05;
            let v: f32 = if label { rng.gen_range(0.7..1.0) } else { rng.gen_range(0.0..0.8) };
            x.push(v);
            x.push(rng.gen_range(0.0..1.0));
            y.push(label);
        }
        Dataset::from_parts(x, y, vec![0; n], 2)
    }

    #[test]
    fn boosting_ranks_rare_positives_high() {
        let train = imbalanced(600, 1);
        let test = imbalanced(400, 2);
        let model = RusBoostTrainer { n_iterations: 30, ..Default::default() }.fit(&train, 3);
        let scores = model.score_dataset(&test);
        let auc = drcshap_ml::roc_auc(&scores, test.labels());
        assert!(auc > 0.8, "auc {auc}");
    }

    #[test]
    fn stages_have_positive_alpha() {
        let train = imbalanced(300, 4);
        let model = RusBoostTrainer { n_iterations: 10, ..Default::default() }.fit(&train, 5);
        assert!(!model.stages().is_empty());
        for (_, alpha) in model.stages() {
            assert!(*alpha > 0.0);
        }
    }

    #[test]
    fn deterministic_fit() {
        let train = imbalanced(200, 6);
        let a = RusBoostTrainer { n_iterations: 5, ..Default::default() }.fit(&train, 9);
        let b = RusBoostTrainer { n_iterations: 5, ..Default::default() }.fit(&train, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn single_class_data_degrades_gracefully() {
        let data =
            Dataset::from_parts(vec![0.0, 1.0, 2.0], vec![false, false, false], vec![0; 3], 1);
        let model = RusBoostTrainer::default().fit(&data, 0);
        assert_eq!(model.score(&[0.5]), 0.0);
    }

    #[test]
    fn weak_depth_limits_trees() {
        let train = imbalanced(300, 7);
        let model =
            RusBoostTrainer { n_iterations: 5, weak_depth: 2, ..Default::default() }.fit(&train, 1);
        for (tree, _) in model.stages() {
            assert!(tree.depth() <= 2);
        }
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use rand::SeedableRng;
    #[test]
    #[ignore]
    fn probe_stages() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..600 {
            let label = rng.gen_range(0.0..1.0) < 0.05;
            let v: f32 = if label { rng.gen_range(0.7..1.0) } else { rng.gen_range(0.0..0.8) };
            x.push(v);
            x.push(rng.gen_range(0.0..1.0));
            y.push(label);
        }
        let train = Dataset::from_parts(x, y, vec![0; 600], 2);
        let model = RusBoostTrainer { n_iterations: 30, ..Default::default() }.fit(&train, 3);
        println!("stages={}", model.stages().len());
        for (t, a) in model.stages().iter().take(5) {
            println!(
                "alpha={a:.4} depth={} leaves={} root_value={:.3}",
                t.depth(),
                t.num_leaves(),
                t.nodes()[0].value
            );
        }
        println!("score(0.9)={} score(0.1)={}", model.score(&[0.9, 0.5]), model.score(&[0.1, 0.5]));
    }
}

//! The committed conformance gate: a seed sweep over every registered
//! oracle plus a short chaos soak, the same entry points CI drives
//! through `drcshap testkit run`.

#![cfg(not(feature = "inject-shap-fault"))]

use std::time::Duration;

use drcshap_testkit::{chaos_soak, registry, replay, run_all, ChaosConfig, SizeLevel};

#[test]
fn full_registry_passes_a_seed_sweep() {
    let report = run_all(0, 8);
    assert!(report.ok(), "conformance failures: {:#?}", report.failures);
    let names: Vec<_> = report.passes.iter().map(|(n, _)| *n).collect();
    for check in registry() {
        assert!(names.contains(&check.name), "{} missing from the report", check.name);
    }
}

#[test]
fn replay_is_deterministic_across_invocations() {
    // A replay line must mean the same scenario forever: run every check
    // twice on the same (seed, level) and demand identical outcomes.
    for check in registry() {
        for level in [SizeLevel(0), SizeLevel(1)] {
            let a = replay(check.name, 42, level);
            let b = replay(check.name, 42, level);
            assert_eq!(a, b, "{} not deterministic at level {}", check.name, level.0);
        }
    }
}

#[test]
fn two_second_soak_validates_every_response() {
    let config = ChaosConfig { duration: Duration::from_secs(2), ..ChaosConfig::default() };
    let report = chaos_soak(0, &config).expect("soak invariants must hold");
    assert_eq!(report.validated, report.responses, "unvalidated responses: {report}");
    assert!(report.responses > 0, "soak produced no traffic: {report}");
    assert!(report.swaps > 0, "soak never swapped: {report}");
    assert!(report.epochs_observed >= 2, "responses never crossed an epoch: {report}");
}

//! The conformance registry: differential oracles and metamorphic
//! properties, every one a pure function of `(seed, SizeLevel)`.
//!
//! A differential oracle pits two independent implementations of the same
//! contract against each other (TreeSHAP vs brute-force `shap::exact`,
//! compiled batch scoring vs the reference forest, serve responses vs
//! offline prediction, fast metrics vs `reference::*`). A metamorphic
//! property checks an invariant a correct implementation must satisfy
//! under an input transformation (monotone score transforms, consistent
//! pair permutations, dummy features).
//!
//! On failure a check reports a [`Failure`] whose `(check, seed, level)`
//! triple regenerates the exact scenario; [`minimize`] shrinks the level
//! before reporting.

use drcshap_core::artifact::crc32;
use drcshap_forest::{DecisionTree, RandomForest, RandomForestTrainer};
use drcshap_ml::{metrics, Dataset, NanPolicy, Trainer};
use drcshap_serve::{CompiledForest, ForestKernel, KernelDispatch, ServeConfig, ServeEngine};
use drcshap_shap::{exact::exact_shap, explain_forest, tree_shap};
use rand::Rng;

use crate::reference;
use crate::scenario::{self, SizeLevel};

/// One reproducible check failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Registry name of the failing check.
    pub check: &'static str,
    /// The seed that regenerates the failing scenario.
    pub seed: u64,
    /// The smallest size level at which the seed still fails.
    pub level: u8,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}\n  replay: drcshap testkit replay --check {} --seed {} --level {}",
            self.check, self.detail, self.check, self.seed, self.level
        )
    }
}

/// A registered conformance check.
pub struct Check {
    /// Stable name, used by `testkit replay --check`.
    pub name: &'static str,
    /// The check body: `Err(detail)` on divergence.
    pub run: fn(u64, SizeLevel) -> Result<(), String>,
}

/// TreeSHAP output for `tree` at `x` — the seam where the test-only
/// `inject-shap-fault` feature perturbs a contribution sign, proving the
/// differential oracle catches a drifted explainer.
fn tree_shap_under_test(tree: &DecisionTree, x: &[f32]) -> Vec<f64> {
    #[allow(unused_mut)]
    let mut phi = tree_shap(tree, x);
    #[cfg(feature = "inject-shap-fault")]
    if let Some(v) = phi.iter_mut().find(|v| v.abs() > 1e-12) {
        *v = -*v;
    }
    phi
}

fn check_tree_shap_vs_exact(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let mut rng = scenario::rng_for(seed ^ 0xE7AC);
    let probes = scenario::probes(&mut rng, forest.n_features(), level.n_probes(), false);
    for (t, tree) in forest.trees().iter().enumerate() {
        for (p, x) in probes.iter().enumerate() {
            let fast = tree_shap_under_test(tree, x);
            let brute = exact_shap(tree, x);
            for (f, (a, b)) in fast.iter().zip(&brute).enumerate() {
                if (a - b).abs() > 1e-9 {
                    return Err(format!(
                        "tree {t} probe {p} feature {f}: tree_shap {a} vs exact {b}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_shap_additivity(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let mut rng = scenario::rng_for(seed ^ 0xADD1);
    let probes = scenario::probes(&mut rng, forest.n_features(), level.n_probes(), false);
    for (p, x) in probes.iter().enumerate() {
        let explanation = explain_forest(&forest, x);
        let reconstructed = explanation.base_value + explanation.contributions.iter().sum::<f64>();
        let predicted = forest.predict_proba(x);
        if (reconstructed - predicted).abs() > 1e-9 {
            return Err(format!(
                "probe {p}: base + Σφ = {reconstructed} but predict_proba = {predicted}"
            ));
        }
        if (explanation.prediction - predicted).abs() > 1e-12 {
            return Err(format!(
                "probe {p}: explanation.prediction {} vs predict_proba {predicted}",
                explanation.prediction
            ));
        }
    }
    Ok(())
}

fn check_dummy_feature_zero(seed: u64, level: SizeLevel) -> Result<(), String> {
    let data = scenario::dataset_with_dummy_feature(seed, level);
    let trainer = RandomForestTrainer { n_trees: level.n_trees(), ..Default::default() };
    let forest = trainer.fit(&data, seed ^ 0xD033);
    let dummy = data.n_features() - 1;
    let mut rng = scenario::rng_for(seed ^ 0xD034);
    let probes = scenario::probes(&mut rng, data.n_features(), level.n_probes(), false);
    for (p, x) in probes.iter().enumerate() {
        let explanation = explain_forest(&forest, x);
        let phi = explanation.contributions[dummy];
        if phi.abs() > 1e-12 {
            return Err(format!("probe {p}: constant feature {dummy} received attribution {phi}"));
        }
    }
    Ok(())
}

fn check_compiled_vs_reference(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let compiled = CompiledForest::compile(&forest);
    let mut rng = scenario::rng_for(seed ^ 0xC093);
    let probes = scenario::probes(&mut rng, forest.n_features(), level.n_probes(), false);
    let flat: Vec<f32> = probes.iter().flatten().copied().collect();
    let batch = compiled.score_batch(&flat);
    for (p, x) in probes.iter().enumerate() {
        let want = forest.predict_proba(x);
        if batch[p].to_bits() != want.to_bits() {
            return Err(format!("probe {p}: score_batch {} vs reference {want}", batch[p]));
        }
        let one = compiled.score_one(x);
        if one.to_bits() != want.to_bits() {
            return Err(format!("probe {p}: score_one {one} vs reference {want}"));
        }
    }
    Ok(())
}

fn check_compiled_nan_aware_vs_reference(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let compiled = CompiledForest::compile(&forest);
    let mut rng = scenario::rng_for(seed ^ 0xC094);
    let probes = scenario::probes(&mut rng, forest.n_features(), level.n_probes(), true);
    let flat: Vec<f32> = probes.iter().flatten().copied().collect();
    let batch = compiled.score_batch_nan_aware(&flat);
    for (p, x) in probes.iter().enumerate() {
        let want = forest.predict_proba_nan_aware(x);
        if batch[p].to_bits() != want.to_bits() {
            return Err(format!(
                "probe {p}: score_batch_nan_aware {} vs reference {want}",
                batch[p]
            ));
        }
    }
    Ok(())
}

/// Env var pinning the kernel sweeps to one kernel (`reference`,
/// `compiled`, `bitvector`, `bitvector-quantized`). The CI
/// kernel-conformance matrix sets it so each job exercises exactly one
/// cell; unset, every check sweeps all kernels.
pub const KERNEL_PIN_ENV: &str = "DRCSHAP_TESTKIT_KERNEL";

/// Env var pinning the NaN-policy sweeps to one policy (`reject`,
/// `impute-zero`, `nan-aware`). Unset, every policy is exercised.
pub const NAN_POLICY_PIN_ENV: &str = "DRCSHAP_TESTKIT_NAN_POLICY";

/// The kernels a sweep covers: the [`KERNEL_PIN_ENV`] pin if set, else
/// all of them. An unparseable pin is a check failure (a typo in a CI
/// matrix must not silently pass by testing nothing).
fn pinned_kernels() -> Result<Vec<ForestKernel>, String> {
    match std::env::var(KERNEL_PIN_ENV) {
        Ok(s) => Ok(vec![s.parse().map_err(|e| format!("{KERNEL_PIN_ENV}: {e}"))?]),
        Err(_) => Ok(ForestKernel::ALL.to_vec()),
    }
}

/// The NaN policies a sweep covers: the [`NAN_POLICY_PIN_ENV`] pin if
/// set, else all of them.
fn pinned_nan_policies() -> Result<Vec<NanPolicy>, String> {
    match std::env::var(NAN_POLICY_PIN_ENV) {
        Ok(s) => match s.as_str() {
            "reject" => Ok(vec![NanPolicy::Reject]),
            "impute-zero" => Ok(vec![NanPolicy::ImputeZero]),
            "nan-aware" => Ok(vec![NanPolicy::NanAware]),
            other => Err(format!("{NAN_POLICY_PIN_ENV}: unknown NaN policy {other:?}")),
        },
        Err(_) => Ok(vec![NanPolicy::Reject, NanPolicy::ImputeZero, NanPolicy::NanAware]),
    }
}

/// The shared body of the kernel differential oracles: every (pinned)
/// kernel must reproduce `predict_proba` / `predict_proba_nan_aware`
/// bit for bit on random probes, NaN/±∞-laced probes, and probes sitting
/// exactly on the forest's own split thresholds (where a binning or
/// comparison drift would first show).
fn run_kernel_differential(
    forest: &RandomForest,
    shape: &str,
    seed: u64,
    level: SizeLevel,
) -> Result<(), String> {
    let compiled = CompiledForest::compile(forest);
    let m = forest.n_features();
    let mut rng = scenario::rng_for(seed ^ 0x4E7E);
    let mut plain = scenario::probes(&mut rng, m, level.n_probes(), false);
    let thresholds: Vec<f32> = forest
        .trees()
        .iter()
        .flat_map(|t| t.nodes().iter().filter(|n| !n.is_leaf()).map(|n| n.threshold))
        .collect();
    if !thresholds.is_empty() {
        // Boundary probes: every coordinate is one of the forest's own
        // thresholds, so `x[f] <= t` ties are common.
        for _ in 0..level.n_probes().min(4) {
            plain.push((0..m).map(|_| thresholds[rng.gen_range(0..thresholds.len())]).collect());
        }
    }
    let laced = scenario::probes(&mut rng, m, level.n_probes(), true);
    for kernel in pinned_kernels()? {
        let dispatch = KernelDispatch::build(forest, kernel)
            .map_err(|e| format!("{shape}: building kernel {kernel}: {e}"))?;
        for (nan_aware, probe_set) in [(false, &plain), (true, &laced)] {
            let flat: Vec<f32> = probe_set.iter().flatten().copied().collect();
            let scores = dispatch.score_batch(forest, &compiled, &flat, nan_aware);
            for (p, x) in probe_set.iter().enumerate() {
                let want = if nan_aware {
                    forest.predict_proba_nan_aware(x)
                } else {
                    forest.predict_proba(x)
                };
                if scores[p].to_bits() != want.to_bits() {
                    return Err(format!(
                        "{shape}: kernel {kernel} probe {p} (nan_aware={nan_aware}): {} vs \
                         reference {want}",
                        scores[p]
                    ));
                }
            }
        }
    }
    Ok(())
}

fn check_kernel_differential(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    run_kernel_differential(&forest, "trained-forest", seed, level)
}

fn check_kernel_degenerate_shapes(seed: u64, level: SizeLevel) -> Result<(), String> {
    for (shape, forest) in scenario::degenerate_forests(seed, level) {
        run_kernel_differential(&forest, shape, seed, level)?;
    }
    Ok(())
}

/// End-to-end: a [`ServeEngine`] pinned to each (kernel, NaN-policy)
/// combination must serve scores bit-identical to that policy's reference
/// semantics — reject sees only finite rows, impute-zero scores the
/// zero-filled row, nan-aware takes the default-direction path.
fn check_serve_kernel_policies(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let m = forest.n_features();
    let mut rng = scenario::rng_for(seed ^ 0x5EA1);
    let plain = scenario::probes(&mut rng, m, level.n_probes(), false);
    let laced = scenario::probes(&mut rng, m, level.n_probes(), true);
    for kernel in pinned_kernels()? {
        for policy in pinned_nan_policies()? {
            // Reject admits only finite rows; the laced set exercises the
            // imputing and NaN-aware admission paths.
            let probes = if policy == NanPolicy::Reject { &plain } else { &laced };
            let config = ServeConfig {
                max_batch: 4,
                queue_capacity: 256,
                workers: 2,
                nan_policy: policy,
                kernel: Some(kernel),
                ..Default::default()
            };
            let engine = ServeEngine::start(config, forest.clone(), seed)
                .map_err(|e| format!("engine start (kernel {kernel}, {policy:?}): {e}"))?;
            let tickets: Result<Vec<_>, _> =
                probes.iter().map(|x| engine.submit(x.clone())).collect();
            let tickets =
                tickets.map_err(|e| format!("submit (kernel {kernel}, {policy:?}): {e}"))?;
            let mut served = Vec::with_capacity(probes.len());
            for (p, ticket) in tickets.into_iter().enumerate() {
                let response = ticket
                    .wait()
                    .map_err(|e| format!("probe {p} lost (kernel {kernel}, {policy:?}): {e}"))?;
                served.push(response.score);
            }
            engine.shutdown();
            for (p, (x, got)) in probes.iter().zip(&served).enumerate() {
                let want = match policy {
                    NanPolicy::Reject => forest.predict_proba(x),
                    NanPolicy::ImputeZero => {
                        let clean: Vec<f32> =
                            x.iter().map(|&v| if v.is_finite() { v } else { 0.0 }).collect();
                        forest.predict_proba(&clean)
                    }
                    NanPolicy::NanAware => forest.predict_proba_nan_aware(x),
                };
                if got.to_bits() != want.to_bits() {
                    return Err(format!(
                        "kernel {kernel} policy {policy:?} probe {p}: served {got} vs reference \
                         {want}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// CRC-32 over the raw bit patterns of a score vector — the same digest
/// `drcshap predict` and `drcshap serve` print.
fn score_digest(scores: &[f64]) -> u32 {
    let bytes: Vec<u8> = scores.iter().flat_map(|s| s.to_bits().to_le_bytes()).collect();
    crc32(&bytes)
}

fn check_serve_vs_offline(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let mut rng = scenario::rng_for(seed ^ 0x5E9E);
    let probes = scenario::probes(&mut rng, forest.n_features(), level.n_probes(), true);
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 256,
        workers: 2,
        nan_policy: NanPolicy::NanAware,
        ..Default::default()
    };
    let engine = ServeEngine::start(config, forest.clone(), seed)
        .map_err(|e| format!("engine start: {e}"))?;
    let tickets: Result<Vec<_>, _> = probes.iter().map(|x| engine.submit(x.clone())).collect();
    let tickets = tickets.map_err(|e| format!("submit: {e}"))?;
    let mut served = Vec::with_capacity(probes.len());
    for (p, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait().map_err(|e| format!("probe {p} lost: {e}"))?;
        if response.epoch != 1 {
            return Err(format!("probe {p}: epoch {} without any swap", response.epoch));
        }
        served.push(response.score);
    }
    engine.shutdown();
    let offline: Vec<f64> = probes.iter().map(|x| forest.predict_proba_nan_aware(x)).collect();
    for (p, (s, o)) in served.iter().zip(&offline).enumerate() {
        if s.to_bits() != o.to_bits() {
            return Err(format!("probe {p}: served {s} vs offline {o}"));
        }
    }
    let (sd, od) = (score_digest(&served), score_digest(&offline));
    if sd != od {
        return Err(format!("score digest {sd:08x} vs offline {od:08x}"));
    }
    Ok(())
}

fn check_metrics_vs_reference(seed: u64, level: SizeLevel) -> Result<(), String> {
    for with_nan in [false, true] {
        let (scores, labels) = scenario::score_label_scenario(seed, level, with_nan);
        let fast_ap = metrics::average_precision(&scores, &labels);
        let slow_ap = reference::average_precision(&scores, &labels);
        if (fast_ap - slow_ap).abs() > 1e-9 {
            return Err(format!("AP {fast_ap} vs O(n²) reference {slow_ap} (nan={with_nan})"));
        }
        let fast_auc = metrics::roc_auc(&scores, &labels);
        let slow_auc = reference::roc_auc(&scores, &labels);
        if (fast_auc - slow_auc).abs() > 1e-9 {
            return Err(format!(
                "AUC {fast_auc} vs pairwise reference {slow_auc} (nan={with_nan})"
            ));
        }
        for max_fpr in [0.0, metrics::PAPER_FPR, 0.1, 0.5] {
            let fast = metrics::tpr_prec_at_fpr(&scores, &labels, max_fpr);
            let (_, tpr, fpr, precision) = reference::tpr_prec_at_fpr(&scores, &labels, max_fpr);
            if (fast.tpr - tpr).abs() > 1e-9
                || (fast.fpr - fpr).abs() > 1e-9
                || (fast.precision - precision).abs() > 1e-9
            {
                return Err(format!(
                    "operating point at FPR≤{max_fpr}: fast (tpr {}, fpr {}, prec {}) vs \
                     reference (tpr {tpr}, fpr {fpr}, prec {precision}) (nan={with_nan})",
                    fast.tpr, fast.fpr, fast.precision
                ));
            }
        }
    }
    Ok(())
}

fn check_ap_monotone_invariance(seed: u64, level: SizeLevel) -> Result<(), String> {
    let (scores, labels) = scenario::score_label_scenario(seed, level, false);
    let mut rng = scenario::rng_for(seed ^ 0x303A);
    let a = rng.gen_range(0.5f64..3.0);
    let b = rng.gen_range(-1.0f64..1.0);
    let transformed: [(&str, Vec<f64>); 3] = [
        ("affine", scores.iter().map(|&s| a * s + b).collect()),
        ("exp", scores.iter().map(|&s| s.exp()).collect()),
        ("cube", scores.iter().map(|&s| a * s * s * s + b).collect()),
    ];
    let ap = metrics::average_precision(&scores, &labels);
    let auc = metrics::roc_auc(&scores, &labels);
    for (name, mapped) in &transformed {
        let ap2 = metrics::average_precision(mapped, &labels);
        let auc2 = metrics::roc_auc(mapped, &labels);
        if (ap - ap2).abs() > 1e-9 {
            return Err(format!("AP not invariant under {name}: {ap} vs {ap2}"));
        }
        if (auc - auc2).abs() > 1e-9 {
            return Err(format!("AUC not invariant under {name}: {auc} vs {auc2}"));
        }
    }
    Ok(())
}

fn check_pair_permutation_invariance(seed: u64, level: SizeLevel) -> Result<(), String> {
    let (scores, labels) = scenario::score_label_scenario(seed, level, true);
    let mut rng = scenario::rng_for(seed ^ 0x9E48);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    let ps: Vec<f64> = order.iter().map(|&i| scores[i]).collect();
    let pl: Vec<bool> = order.iter().map(|&i| labels[i]).collect();
    let (ap, ap2) =
        (metrics::average_precision(&scores, &labels), metrics::average_precision(&ps, &pl));
    if (ap - ap2).abs() > 1e-12 {
        return Err(format!("AP changed under consistent permutation: {ap} vs {ap2}"));
    }
    let op = metrics::tpr_prec_at_fpr(&scores, &labels, metrics::PAPER_FPR);
    let op2 = metrics::tpr_prec_at_fpr(&ps, &pl, metrics::PAPER_FPR);
    if (op.tpr - op2.tpr).abs() > 1e-12 || (op.precision - op2.precision).abs() > 1e-12 {
        return Err(format!(
            "operating point changed under permutation: ({}, {}) vs ({}, {})",
            op.tpr, op.precision, op2.tpr, op2.precision
        ));
    }
    Ok(())
}

fn check_degenerate_groups_train(seed: u64, level: SizeLevel) -> Result<(), String> {
    // The degenerate tail group (identical rows, single label) must not
    // break training or scoring; predictions must stay in [0, 1].
    let data = scenario::dataset(seed, level);
    let sub: Dataset = data.filter_groups(|g| g == 7);
    if sub.n_samples() == 0 {
        return Err("scenario lost its degenerate group".into());
    }
    let forest = scenario::forest(seed, level);
    for i in 0..data.n_samples() {
        let p = forest.predict_proba(data.row(i));
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("sample {i}: probability {p} outside [0, 1]"));
        }
    }
    Ok(())
}

/// Every registered check, in reporting order.
pub fn registry() -> Vec<Check> {
    vec![
        Check { name: "tree-shap-vs-exact", run: check_tree_shap_vs_exact },
        Check { name: "shap-additivity", run: check_shap_additivity },
        Check { name: "shap-dummy-feature-zero", run: check_dummy_feature_zero },
        Check { name: "compiled-vs-reference", run: check_compiled_vs_reference },
        Check {
            name: "compiled-nan-aware-vs-reference",
            run: check_compiled_nan_aware_vs_reference,
        },
        Check { name: "serve-vs-offline", run: check_serve_vs_offline },
        Check { name: "kernel-differential", run: check_kernel_differential },
        Check { name: "kernel-degenerate-shapes", run: check_kernel_degenerate_shapes },
        Check { name: "serve-kernel-policies", run: check_serve_kernel_policies },
        Check { name: "metrics-vs-reference", run: check_metrics_vs_reference },
        Check { name: "ap-monotone-invariance", run: check_ap_monotone_invariance },
        Check { name: "pair-permutation-invariance", run: check_pair_permutation_invariance },
        Check { name: "degenerate-groups-train", run: check_degenerate_groups_train },
        Check { name: "sketch-differential", run: crate::analytics::check_sketch_differential },
        Check { name: "analytics-consistency", run: crate::analytics::check_analytics_consistency },
    ]
}

/// Re-runs a failing `(check, seed)` at ascending levels and returns the
/// smallest level that still fails (with its detail). Falls back to the
/// original failure if smaller scenarios pass.
pub fn minimize(check: &Check, seed: u64, failing: SizeLevel, detail: String) -> Failure {
    for level in 0..failing.0 {
        if let Err(small_detail) = (check.run)(seed, SizeLevel(level)) {
            return Failure { check: check.name, seed, level, detail: small_detail };
        }
    }
    Failure { check: check.name, seed, level: failing.0, detail }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<_> = registry().iter().map(|c| c.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[cfg(not(feature = "inject-shap-fault"))]
    #[test]
    fn every_check_passes_a_seed_sweep() {
        for check in registry() {
            for seed in 0..4 {
                if let Err(detail) = (check.run)(seed, SizeLevel(1)) {
                    panic!("{} failed at seed {seed}: {detail}", check.name);
                }
            }
        }
    }

    #[cfg(feature = "inject-shap-fault")]
    #[test]
    fn injected_fault_is_caught_with_a_replayable_seed() {
        let registry = registry();
        let check = registry.iter().find(|c| c.name == "tree-shap-vs-exact").unwrap();
        let detail = (check.run)(3, SizeLevel::DEFAULT)
            .expect_err("perturbed TreeSHAP must diverge from the exact oracle");
        let failure = minimize(check, 3, SizeLevel::DEFAULT, detail);
        assert_eq!(failure.seed, 3);
        assert!(failure.to_string().contains("replay: drcshap testkit replay"));
    }
}

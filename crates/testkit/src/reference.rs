//! Slow, independent reference implementations of the paper's metrics.
//!
//! These are the "second opinion" side of the metric differential oracles:
//! written without sorting or cumulative sweeps, they re-derive every
//! curve point by an `O(n)` full scan per distinct threshold (`O(n²)`
//! total) and AUC by the pairwise probability identity. They share *no
//! code* with `drcshap_ml::metrics` — only the semantic contract:
//!
//! - samples with equal scores enter the confusion counts together;
//! - a NaN score ranks below every real score, and all NaNs tie.

use std::cmp::Ordering;

/// The ranking contract (duplicated from `ml::metrics` on purpose — the
/// oracle must not import the implementation under test).
fn rank_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).expect("non-NaN"),
    }
}

/// Distinct thresholds in descending rank order (all NaNs collapse into
/// one trailing group).
fn distinct_thresholds(scores: &[f64]) -> Vec<f64> {
    let mut out: Vec<f64> = Vec::new();
    for &s in scores {
        if !out.iter().any(|&t| rank_cmp(s, t) == Ordering::Equal) {
            out.push(s);
        }
    }
    out.sort_by(|a, b| rank_cmp(*b, *a));
    out
}

/// Cumulative `(tp, fp)` at threshold `t` by a full scan: everything
/// ranking at or above `t` is predicted positive.
fn counts_at(scores: &[f64], labels: &[bool], t: f64) -> (usize, usize) {
    let (mut tp, mut fp) = (0, 0);
    for (&s, &l) in scores.iter().zip(labels) {
        if rank_cmp(s, t) != Ordering::Less {
            if l {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    (tp, fp)
}

/// Average precision `Σ (Rₙ − Rₙ₋₁) · Pₙ` over the distinct-threshold
/// curve, each point recomputed from scratch.
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    let pos = labels.iter().filter(|&&l| l).count();
    assert!(pos > 0, "reference AP undefined without positives");
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for t in distinct_thresholds(scores) {
        let (tp, fp) = counts_at(scores, labels, t);
        let recall = tp as f64 / pos as f64;
        let precision = if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 };
        ap += (recall - prev_recall) * precision;
        prev_recall = recall;
    }
    ap
}

/// ROC AUC by the pairwise probability identity: the chance a random
/// positive outranks a random negative, ties counting half. Equal to the
/// tie-grouped trapezoidal area, but derived without building a curve.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    let mut wins = 0.0f64;
    let mut pairs = 0.0f64;
    for (i, (&sp, &lp)) in scores.iter().zip(labels).enumerate() {
        if !lp {
            continue;
        }
        for (j, (&sn, &ln)) in scores.iter().zip(labels).enumerate() {
            if ln || i == j {
                continue;
            }
            pairs += 1.0;
            wins += match rank_cmp(sp, sn) {
                Ordering::Greater => 1.0,
                Ordering::Equal => 0.5,
                Ordering::Less => 0.0,
            };
        }
    }
    assert!(pairs > 0.0, "reference AUC undefined without both classes");
    wins / pairs
}

/// The `(threshold, tpr, fpr, precision)` operating point with the most
/// predictions whose FPR still fits `max_fpr` — the paper's `TPR*` /
/// `Prec*` contract. Returns the degenerate predict-nothing point
/// `(∞, 0, 0, 0)` when even the top tie group busts the budget.
pub fn tpr_prec_at_fpr(scores: &[f64], labels: &[bool], max_fpr: f64) -> (f64, f64, f64, f64) {
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    assert!(pos > 0 && neg > 0, "reference operating point needs both classes");
    let mut best = (f64::INFINITY, 0.0, 0.0, 0.0);
    let mut best_predicted = 0;
    for t in distinct_thresholds(scores) {
        let (tp, fp) = counts_at(scores, labels, t);
        let fpr = fp as f64 / neg as f64;
        if fpr > max_fpr {
            continue;
        }
        if tp + fp >= best_predicted {
            best_predicted = tp + fp;
            let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
            best = (t, tp as f64 / pos as f64, fpr, precision);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_give_base_rate_ap_and_half_auc() {
        let scores = [0.5; 10];
        let labels: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert!((average_precision(&scores, &labels) - 0.3).abs() < 1e-12);
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nan_ranks_last() {
        let scores = [f64::NAN, 0.9, 0.1];
        let labels = [false, true, false];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operating_point_respects_budget() {
        let scores = [0.9, 0.8, 0.7, 0.6];
        let labels = [true, false, true, true];
        let (_, tpr, fpr, _) = tpr_prec_at_fpr(&scores, &labels, 0.0);
        assert_eq!(fpr, 0.0);
        assert!((tpr - 1.0 / 3.0).abs() < 1e-12);
    }
}

//! Registry crash soak: every publish syscall boundary, killed and
//! recovered, thousands of times.
//!
//! One [`FaultBackend`]-backed registry lives through the whole soak.
//! Each iteration publishes a forest from a small seeded pool while the
//! fault schedule either crashes the backend at one exact syscall
//! boundary of the publish protocol (cycling through *all* of them),
//! injects a one-shot `ENOSPC`/`EIO`, flips a durable bit in the newest
//! committed blob, or lets the publish land cleanly. After every fault
//! the registry is power-cycled, re-opened (recovery: torn-tail
//! truncation, temp-file sweep), `verify`d, and interrogated:
//!
//! - **No committed generation is ever lost.** A publish that returned
//!   `Ok` must be served by `open_latest` — bit-identical,
//!   fingerprint-valid — until it is superseded, garbage-collected, or
//!   deliberately bit-flipped by the soak itself.
//! - **No garbage is ever served.** `open_latest` only ever yields a
//!   model that was actually published (committed, or the exact model of
//!   the interrupted publish when its journal record happened to land).
//! - **Quarantine sticks.** A generation whose blob was flipped is never
//!   served again — unless a later publish of bit-identical content
//!   recreates its content-addressed blob, in which case `verify` must
//!   independently re-prove the content before the generation is live.
//! - **Every failure is typed.** Interrupted publishes surface
//!   [`DrcshapError`] values, never panics; a panic anywhere fails the
//!   soak.
//!
//! Periodic `gc` keeps the journal short and exercises compaction under
//! the same kill-and-recover regime.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use drcshap_core::SavedModel;
use drcshap_ml::DrcshapError;
use drcshap_store::{FaultBackend, FaultKind, FaultPlan, Registry, StorageBackend};

use crate::scenario::{self, SizeLevel};

/// Storage operations one registry publish performs (write tmp, sync tmp,
/// rename, sync blob dir, append journal, sync journal). Kill point `N`
/// crashes instead of executing op `N`; kill point [`PUBLISH_OPS`] is the
/// clean-publish control.
pub const PUBLISH_OPS: u64 = 6;

/// Knobs for one crash soak run.
#[derive(Debug, Clone)]
pub struct CrashSoakConfig {
    /// Kill-point iterations (the CI drill runs at least 500).
    pub iterations: u64,
    /// Every Nth iteration injects a one-shot `ENOSPC`/`EIO` instead of a
    /// crash (0 disables).
    pub enospc_every: u64,
    /// Every Nth iteration flips one durable bit in the newest committed
    /// blob before recovery (0 disables).
    pub bit_flip_every: u64,
    /// Every Nth iteration runs `gc` keeping [`CrashSoakConfig::gc_keep`]
    /// generations (0 disables).
    pub gc_every: u64,
    /// Generations `gc` keeps.
    pub gc_keep: usize,
}

impl Default for CrashSoakConfig {
    fn default() -> Self {
        Self { iterations: 200, enospc_every: 13, bit_flip_every: 17, gc_every: 29, gc_keep: 4 }
    }
}

/// What a completed crash soak observed.
#[derive(Debug, Clone, Default)]
pub struct CrashSoakReport {
    /// Iterations executed.
    pub iterations: u64,
    /// Publishes that returned `Ok` (committed).
    pub committed: u64,
    /// Publishes interrupted by a scheduled crash.
    pub crashed: u64,
    /// Publishes failed by injected `ENOSPC`/`EIO`.
    pub storage_failures: u64,
    /// Interrupted publishes whose generation nevertheless survived
    /// recovery intact (the journal record landed before the kill).
    pub salvaged: u64,
    /// Recoveries that truncated a torn journal tail.
    pub torn_tails: u64,
    /// Stray temp files swept during recoveries.
    pub tmp_sweeps: u64,
    /// Durable bit flips injected.
    pub bit_flips: u64,
    /// Generations quarantined across all verifies.
    pub quarantined: u64,
    /// `gc` compactions performed.
    pub gcs: u64,
    /// Newest generation committed by the end of the soak.
    pub last_generation: u64,
}

impl std::fmt::Display for CrashSoakReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} iterations: {} committed, {} crashed ({} salvaged), {} storage failures; \
             {} torn tails truncated, {} tmp sweeps, {} bit flips -> {} quarantined; \
             {} gcs; latest generation {}",
            self.iterations,
            self.committed,
            self.crashed,
            self.salvaged,
            self.storage_failures,
            self.torn_tails,
            self.tmp_sweeps,
            self.bit_flips,
            self.quarantined,
            self.gcs,
            self.last_generation
        )
    }
}

/// A committed generation the soak still expects to be recoverable.
#[derive(Debug, Clone)]
struct Expected {
    generation: u64,
    hash: u64,
    model: SavedModel,
}

/// Runs the crash soak. See the module docs for the invariants; any
/// violation returns `Err` with a replayable diagnostic (`seed`
/// regenerates the entire run).
pub fn crash_soak(seed: u64, config: &CrashSoakConfig) -> Result<CrashSoakReport, String> {
    let fingerprint = seed ^ 0xC0A5_7A11;
    // A small pool of distinct models; reuse makes content-addressed blob
    // sharing (and its interaction with gc and quarantine) part of the
    // soak instead of a untested corner.
    let pool: Vec<SavedModel> = (0..4u64)
        .map(|v| SavedModel::Rf(scenario::forest(seed ^ (v << 8), SizeLevel(0))))
        .collect();
    let backend = Arc::new(FaultBackend::new());
    let mut registry = Registry::open(backend.clone() as Arc<dyn StorageBackend>)
        .map_err(|e| format!("initial open: {e}"))?;
    let mut report = CrashSoakReport::default();
    let mut expected: Vec<Expected> = Vec::new();
    // Generations deliberately destroyed by bit flips. Serving one is a
    // violation — unless a later publish of bit-identical content
    // legitimately recreated the content-addressed blob, which `verify`
    // detects and moves the generation back into `expected`.
    let mut destroyed: BTreeMap<u64, Expected> = BTreeMap::new();

    for i in 0..config.iterations {
        report.iterations = i + 1;
        let iteration = (|| -> Result<(), String> {
            let model = &pool[(i % pool.len() as u64) as usize];
            // The fault for this iteration: ENOSPC/EIO on a cycle, a
            // crash at each publish boundary on a cycle (the extra slot
            // is a clean publish), bit flips handled after the publish.
            let enospc = config.enospc_every != 0 && i % config.enospc_every == 0 && i > 0;
            let kill_op = i % (PUBLISH_OPS + 1);
            if enospc {
                let kind = if i % 2 == 0 { FaultKind::Enospc } else { FaultKind::Eio };
                backend.arm(FaultPlan {
                    fail_at_op: Some((i % PUBLISH_OPS, kind)),
                    ..Default::default()
                });
            } else if kill_op < PUBLISH_OPS {
                backend.arm(FaultPlan { crash_at_op: Some(kill_op), ..Default::default() });
            } else {
                backend.arm(FaultPlan::default());
            }

            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                registry.publish_model(model, fingerprint)
            }))
            .map_err(|_| format!("iteration {i}: publish panicked (kill op {kill_op})"))?;

            match result {
                Ok(published) => {
                    report.committed += 1;
                    report.last_generation = published.generation;
                    expected.push(Expected {
                        generation: published.generation,
                        hash: published.hash,
                        model: model.clone(),
                    });
                }
                Err(DrcshapError::Io { .. }) if enospc && !backend.is_crashed() => {
                    report.storage_failures += 1;
                }
                Err(e) if backend.is_crashed() => {
                    report.crashed += 1;
                    let _ = e; // typed; the crash itself is the point
                }
                Err(e) => {
                    return Err(format!(
                        "iteration {i}: publish failed with unexpected class {e} \
                         (kill op {kill_op}, enospc {enospc})"
                    ))
                }
            }
            if backend.is_crashed() {
                backend.power_cycle(seed ^ (i << 17) ^ 0x5EED);
            } else {
                backend.arm(FaultPlan::default());
            }

            // Optional durable bit rot in the newest committed blob.
            if config.bit_flip_every != 0 && i % config.bit_flip_every == 0 && i > 0 {
                if let Some(newest) = expected.last().cloned() {
                    let blob = format!("blobs/{:016x}.blob", newest.hash);
                    if backend.mem().len(&blob).is_some() {
                        let offset = 32 + (i as usize % 64);
                        backend
                            .mem()
                            .corrupt(&blob, offset, (i % 8) as u8)
                            .map_err(|e| format!("iteration {i}: corrupt injection: {e}"))?;
                        report.bit_flips += 1;
                        // Every generation sharing that blob is now dead;
                        // serving any of them would be serving garbage.
                        for e in expected.iter().filter(|e| e.hash == newest.hash) {
                            destroyed.insert(e.generation, e.clone());
                        }
                        expected.retain(|e| e.hash != newest.hash);
                    }
                }
            }

            // Recovery: re-open, then verify the whole registry.
            let reopened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Registry::open(backend.clone() as Arc<dyn StorageBackend>)
            }))
            .map_err(|_| format!("iteration {i}: recovery panicked (kill op {kill_op})"))?
            .map_err(|e| format!("iteration {i}: recovery failed: {e}"))?;
            registry = reopened;
            let recovery = registry.recovery_report().clone();
            if recovery.truncated_bytes > 0 {
                report.torn_tails += 1;
            }
            report.tmp_sweeps += recovery.swept_tmp_files as u64;
            let verify =
                registry.verify().map_err(|e| format!("iteration {i}: verify failed: {e}"))?;
            report.quarantined += verify.quarantined() as u64;
            // A destroyed generation comes back from the dead only when a
            // later publish of bit-identical content recreated its
            // content-addressed blob; `verify` independently re-proves
            // hash, checksum, and decode, so `Verified` means the content
            // is exactly what was originally published.
            for (generation, status) in &verify.generations {
                if matches!(status, drcshap_store::GenerationStatus::Verified) {
                    if let Some(revived) = destroyed.remove(generation) {
                        expected.push(revived);
                        expected.sort_by_key(|e| e.generation);
                    }
                }
            }

            // The committed-history invariants.
            match registry.open_latest() {
                Ok(loaded) => {
                    if destroyed.contains_key(&loaded.generation) {
                        return Err(format!(
                            "iteration {i}: open_latest served generation {} whose blob was \
                             quarantined after a bit flip",
                            loaded.generation
                        ));
                    }
                    match expected.last() {
                        Some(newest) if loaded.generation == newest.generation => {
                            if loaded.model != newest.model {
                                return Err(format!(
                                    "iteration {i}: generation {} recovered but its model is \
                                     not bit-identical to what was published",
                                    loaded.generation
                                ));
                            }
                            if loaded.fingerprint != fingerprint {
                                return Err(format!(
                                    "iteration {i}: generation {} lost its fingerprint",
                                    loaded.generation
                                ));
                            }
                        }
                        Some(newest) if loaded.generation > newest.generation => {
                            // An interrupted publish whose journal record
                            // landed before the kill: allowed, but it must
                            // be the exact model that publish attempted.
                            if loaded.model != pool[(i % pool.len() as u64) as usize] {
                                return Err(format!(
                                    "iteration {i}: salvaged generation {} holds a model that \
                                     was never published",
                                    loaded.generation
                                ));
                            }
                            report.salvaged += 1;
                            // From here on it is committed history like
                            // any other generation.
                            expected.push(Expected {
                                generation: loaded.generation,
                                hash: loaded.hash,
                                model: loaded.model.clone(),
                            });
                        }
                        Some(newest) => {
                            return Err(format!(
                                "iteration {i}: committed generation {} was lost — recovery \
                                 landed on {}",
                                newest.generation, loaded.generation
                            ));
                        }
                        None => {
                            // Everything committed was destroyed or
                            // collected; a salvaged interrupted publish is
                            // still acceptable if it is the attempted model.
                            if !pool.contains(&loaded.model) {
                                return Err(format!(
                                    "iteration {i}: generation {} holds a model that was never \
                                     published",
                                    loaded.generation
                                ));
                            }
                            expected.push(Expected {
                                generation: loaded.generation,
                                hash: loaded.hash,
                                model: loaded.model.clone(),
                            });
                        }
                    }
                }
                Err(DrcshapError::Store(_)) if expected.is_empty() => {}
                Err(e) => {
                    return Err(match expected.last() {
                        Some(newest) => format!(
                            "iteration {i}: committed generation {} unrecoverable: {e} \
                             (verify saw: {:?})",
                            newest.generation, verify.generations
                        ),
                        None => format!("iteration {i}: open_latest failed untypedly: {e}"),
                    })
                }
            }

            // Periodic compaction under the same regime.
            if config.gc_every != 0 && i % config.gc_every == 0 && i > 0 {
                registry
                    .gc(config.gc_keep.max(1))
                    .map_err(|e| format!("iteration {i}: gc failed: {e}"))?;
                report.gcs += 1;
                let kept = registry
                    .verify()
                    .map_err(|e| format!("iteration {i}: post-gc verify failed: {e}"))?;
                let live: BTreeSet<u64> = kept.generations.iter().map(|(g, _)| *g).collect();
                expected.retain(|e| live.contains(&e.generation));
            }
            Ok(())
        })();
        iteration?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_crash_soak_holds_invariants() {
        let config = CrashSoakConfig { iterations: 60, ..Default::default() };
        let report = crash_soak(3, &config).expect("crash soak must hold its invariants");
        assert_eq!(report.iterations, 60);
        assert!(report.committed > 0, "{report}");
        assert!(report.crashed > 0, "{report}");
        assert!(report.torn_tails + report.tmp_sweeps > 0, "no torn state seen: {report}");
        assert!(report.bit_flips > 0 && report.quarantined > 0, "{report}");
        assert!(report.gcs > 0, "{report}");
    }

    #[test]
    fn crash_soak_is_deterministic_per_seed() {
        let config = CrashSoakConfig { iterations: 25, ..Default::default() };
        let a = crash_soak(9, &config).expect("soak a");
        let b = crash_soak(9, &config).expect("soak b");
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}

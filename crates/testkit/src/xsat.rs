//! Consistency oracles for the SAT-based abductive explainer.
//!
//! Two checks, both pure functions of `(seed, SizeLevel)` like every other
//! registry entry:
//!
//! - `xsat-abductive-sound-minimal`: brute-force-verifies that every
//!   abductive explanation really is a *sufficient reason* (fixing its
//!   features forces the class for every completion over the threshold
//!   grid) and *subset-minimal* (dropping any single feature breaks
//!   sufficiency).
//! - `shap-vs-abductive`: pits the two explanation views against each
//!   other on what they must agree on — support. TreeSHAP and the CNF
//!   encoder walk the same trees independently, so a feature has nonzero
//!   SHAP only if the encoder saw a split on it and vice versa (unused
//!   features carry exactly-zero SHAP and never enter an abductive set).
//!   The contrastive set passes exhaustive feature-flip verification (a
//!   flip witness exists and no proper subset admits one), every core
//!   feature is flip-relevant to the vote, and explanations are
//!   bit-stable across engine rebuilds. Attribution *magnitudes* are
//!   deliberately not compared: SHAP explains the probability, the core
//!   explains the vote, and the two can legitimately rank features
//!   differently.
//!
//! The brute-force side enumerates one representative per threshold-grid
//! cell, which is exponential in feature count — so these checks clamp
//! their scenarios to `MAX_LEVEL` (internally) and cap tree depth, keeping the grid
//! a few thousand cells.

use drcshap_forest::{RandomForest, RandomForestTrainer};
use drcshap_ml::Trainer;
use drcshap_shap::tree_shap;
use drcshap_xsat::{forest_vote, AbductiveEngine, ForestEncoding, XsatBudget};

use crate::oracle::Check;
use crate::scenario::{self, SizeLevel};

/// Largest scenario level the brute-force verifier can afford: 3 features
/// and 5 trees. Higher requested levels clamp down to this.
const MAX_LEVEL: SizeLevel = SizeLevel(1);

/// Probes explained per scenario. Each probe costs a full grid sweep per
/// sufficiency/minimality question, so this stays small.
const N_PROBES: usize = 4;

/// A depth-capped forest for the xsat oracles. The cap keeps the
/// per-feature threshold grid small enough that exhaustive enumeration
/// over cells stays in the low thousands.
fn xsat_forest(seed: u64, level: SizeLevel) -> RandomForest {
    let data = scenario::dataset(seed, level);
    let trainer =
        RandomForestTrainer { n_trees: level.n_trees(), max_depth: Some(3), ..Default::default() };
    trainer.fit(&data, seed ^ 0x5A7)
}

/// One representative value per grid cell of feature `j`: the thresholds
/// themselves (cells are half-open `(lo, hi]`, so each threshold is the
/// top of its cell) plus one point above the last threshold for the open
/// cell `(t_max, +inf)`.
fn cell_reps(enc: &ForestEncoding, j: usize) -> Vec<f32> {
    let ts = enc.thresholds(j);
    let mut reps = ts.to_vec();
    reps.push(ts.last().copied().unwrap_or(0.0) + 1.0);
    reps
}

/// Exhaustive check that fixing `fixed` to `x`'s values forces the vote
/// `want`: walks every completion of the remaining features (one
/// representative per grid cell) and returns `false` on the first
/// completion the forest classifies differently.
fn forces_class(
    forest: &RandomForest,
    enc: &ForestEncoding,
    x: &[f32],
    fixed: &[usize],
    want: bool,
) -> bool {
    let m = x.len();
    let reps: Vec<Vec<f32>> =
        (0..m).map(|j| if fixed.contains(&j) { vec![x[j]] } else { cell_reps(enc, j) }).collect();
    let mut probe = x.to_vec();
    let mut idx = vec![0usize; m];
    loop {
        for j in 0..m {
            probe[j] = reps[j][idx[j]];
        }
        if forest_vote(forest, &probe) != want {
            return false;
        }
        // Odometer increment over the per-feature representative lists.
        let mut j = 0;
        loop {
            if j == m {
                return true;
            }
            idx[j] += 1;
            if idx[j] < reps[j].len() {
                break;
            }
            idx[j] = 0;
            j += 1;
        }
    }
}

/// Exhaustive search for a witness that the vote depends on feature `j`:
/// two grid points differing *only* in `j` with different forest votes.
/// Returns `false` when the vote is independent of `j` everywhere on the
/// grid.
fn flip_relevant(forest: &RandomForest, enc: &ForestEncoding, j: usize, m: usize) -> bool {
    let reps: Vec<Vec<f32>> = (0..m).map(|f| cell_reps(enc, f)).collect();
    let mut probe = vec![0.0f32; m];
    let mut idx = vec![0usize; m];
    loop {
        // One assignment of every feature except `j`; scan `j`'s cells.
        for f in 0..m {
            probe[f] = reps[f][idx[f]];
        }
        let first = forest_vote(forest, &probe);
        for v in &reps[j][1..] {
            probe[j] = *v;
            if forest_vote(forest, &probe) != first {
                return true;
            }
        }
        let mut f = 0;
        loop {
            if f == m {
                return false;
            }
            if f == j {
                f += 1;
                continue;
            }
            idx[f] += 1;
            if idx[f] < reps[f].len() {
                break;
            }
            idx[f] = 0;
            f += 1;
        }
    }
}

/// Deterministic probe set for the xsat checks (no NaN: the encoder's NaN
/// cell is covered by the crate's own unit tests; here the grid sweep
/// must agree with plain `forest_vote`).
fn xsat_probes(seed: u64, m: usize) -> Vec<Vec<f32>> {
    let mut rng = scenario::rng_for(seed ^ 0xABD0);
    scenario::probes(&mut rng, m, N_PROBES, false)
}

fn check_abductive_sound_minimal(seed: u64, level: SizeLevel) -> Result<(), String> {
    let level = SizeLevel(level.0.min(MAX_LEVEL.0));
    let forest = xsat_forest(seed, level);
    let mut engine = AbductiveEngine::new(&forest).map_err(|e| format!("encoding failed: {e}"))?;
    for (p, x) in xsat_probes(seed, forest.n_features()).iter().enumerate() {
        let ex = engine
            .explain(x, &XsatBudget::default())
            .map_err(|e| format!("probe {p}: explain failed: {e}"))?;
        let want = forest_vote(&forest, x);
        if ex.predicted_hotspot != want {
            return Err(format!(
                "probe {p}: explanation claims class {} but the forest votes {}",
                ex.predicted_hotspot, want
            ));
        }
        if !forces_class(&forest, engine.encoding(), x, &ex.sufficient, want) {
            return Err(format!(
                "probe {p}: sufficient set {:?} does not force the class — a grid \
                 completion flips the vote",
                ex.sufficient
            ));
        }
        for drop in 0..ex.sufficient.len() {
            let mut reduced = ex.sufficient.clone();
            let dropped = reduced.remove(drop);
            if forces_class(&forest, engine.encoding(), x, &reduced, want) {
                return Err(format!(
                    "probe {p}: sufficient set {:?} is not subset-minimal — feature \
                     {dropped} can be dropped",
                    ex.sufficient
                ));
            }
        }
        // Hitting-set duality: every contrastive set intersects every
        // sufficient reason (when both are non-empty).
        if !ex.contrastive.is_empty()
            && !ex.sufficient.is_empty()
            && !ex.contrastive.iter().any(|j| ex.sufficient.contains(j))
        {
            return Err(format!(
                "probe {p}: contrastive {:?} misses sufficient {:?} — hitting-set \
                 duality violated",
                ex.contrastive, ex.sufficient
            ));
        }
    }
    Ok(())
}

fn check_shap_vs_abductive(seed: u64, level: SizeLevel) -> Result<(), String> {
    let level = SizeLevel(level.0.min(MAX_LEVEL.0));
    let forest = xsat_forest(seed, level);
    let m = forest.n_features();
    let mut engine = AbductiveEngine::new(&forest).map_err(|e| format!("encoding failed: {e}"))?;
    let used = engine.encoding().used_features();
    for (p, x) in xsat_probes(seed ^ 0x5AB, m).iter().enumerate() {
        let ex = engine
            .explain(x, &XsatBudget::default())
            .map_err(|e| format!("probe {p}: explain failed: {e}"))?;
        let want = ex.predicted_hotspot;

        // Forest SHAP, summed per tree in a fixed order so the view is
        // deterministic (the parallel `explain_forest` path is not
        // bit-stable and is checked elsewhere).
        let mut phi = vec![0.0f64; m];
        for tree in forest.trees() {
            for (j, v) in tree_shap(tree, x).iter().enumerate() {
                phi[j] += v / forest.trees().len() as f64;
            }
        }

        // A feature no split uses must be invisible to both views: its
        // SHAP attribution is exactly zero and the abductive engine never
        // mentions it.
        for j in (0..m).filter(|j| !used.contains(j)) {
            if phi[j] != 0.0 {
                return Err(format!(
                    "probe {p}: unused feature {j} has SHAP {} (must be exactly 0)",
                    phi[j]
                ));
            }
            if ex.sufficient.contains(&j) || ex.contrastive.contains(&j) {
                return Err(format!("probe {p}: unused feature {j} appears in an abductive set"));
            }
        }

        // Exhaustive feature-flip verification of the contrastive set:
        // freeing exactly the contrastive features must admit a flip
        // witness, and no proper subset may (minimality). An empty
        // contrastive set claims the forest is constant over the grid.
        let fixed_except =
            |free: &[usize]| -> Vec<usize> { (0..m).filter(|j| !free.contains(j)).collect() };
        if ex.contrastive.is_empty() {
            if !forces_class(&forest, engine.encoding(), x, &[], want) {
                return Err(format!(
                    "probe {p}: empty contrastive set, but a grid completion flips \
                     the vote"
                ));
            }
        } else {
            if forces_class(&forest, engine.encoding(), x, &fixed_except(&ex.contrastive), want) {
                return Err(format!(
                    "probe {p}: contrastive {:?} has no flip witness — freeing it \
                     cannot change the vote",
                    ex.contrastive
                ));
            }
            for drop in 0..ex.contrastive.len() {
                let mut reduced = ex.contrastive.clone();
                let dropped = reduced.remove(drop);
                if !forces_class(&forest, engine.encoding(), x, &fixed_except(&reduced), want) {
                    return Err(format!(
                        "probe {p}: contrastive {:?} is not minimal — it flips \
                         without touching feature {dropped}",
                        ex.contrastive
                    ));
                }
            }
        }

        // SHAP support vs encoder support, the other direction: a feature
        // with any attribution at all must be one the encoder saw a split
        // on. TreeSHAP walking the trees and the CNF encoder walking the
        // trees are independent implementations, so disagreement here
        // means one of them dropped or invented a split. Note ranking
        // *magnitudes* are deliberately not compared: SHAP attributes the
        // probability while the core explains the vote, and the two
        // legitimately disagree on which feature matters most (a feature
        // can force the majority vote while barely moving the mean leaf
        // value).
        for j in (0..m).filter(|&j| phi[j] != 0.0) {
            if !used.contains(&j) {
                return Err(format!(
                    "probe {p}: feature {j} has SHAP {} but the encoder found no \
                     split on it",
                    phi[j]
                ));
            }
        }

        // Exhaustive feature-flip relevance of the abductive core: a
        // feature in a subset-minimal sufficient (or contrastive) set
        // must actually matter to the vote — some pair of grid points
        // differing only in that feature flips the class. (If the vote
        // were independent of it, the deletion loop could have dropped
        // it, contradicting minimality.)
        for &j in ex.sufficient.iter().chain(ex.contrastive.iter()) {
            if !flip_relevant(&forest, engine.encoding(), j, m) {
                return Err(format!(
                    "probe {p}: feature {j} is in an abductive set but no grid pair \
                     differing only in it flips the vote"
                ));
            }
        }
    }

    // Bit-stability: a fresh engine over the same forest must reproduce
    // every explanation exactly, solver accounting included.
    let mut rebuilt =
        AbductiveEngine::new(&forest).map_err(|e| format!("re-encoding failed: {e}"))?;
    let mut replay =
        AbductiveEngine::new(&forest).map_err(|e| format!("re-encoding failed: {e}"))?;
    for (p, x) in xsat_probes(seed ^ 0x5AB, m).iter().enumerate() {
        let a = rebuilt
            .explain(x, &XsatBudget::default())
            .map_err(|e| format!("probe {p}: explain failed: {e}"))?;
        let b = replay
            .explain(x, &XsatBudget::default())
            .map_err(|e| format!("probe {p}: explain failed: {e}"))?;
        if (a.sufficient, a.contrastive, a.sat_calls, a.conflicts)
            != (b.sufficient, b.contrastive, b.sat_calls, b.conflicts)
        {
            return Err(format!("probe {p}: explanation is not bit-stable across rebuilds"));
        }
    }
    Ok(())
}

/// The xsat consistency checks, run by `testkit run --xsat-checks` and
/// replayable by name like every registry entry.
pub fn checks() -> Vec<Check> {
    vec![
        Check { name: "xsat-abductive-sound-minimal", run: check_abductive_sound_minimal },
        Check { name: "shap-vs-abductive", run: check_shap_vs_abductive },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsat_checks_pass_a_seed_sweep() {
        for check in checks() {
            for seed in 0..4 {
                if let Err(detail) = (check.run)(seed, SizeLevel::DEFAULT) {
                    panic!("{} failed at seed {seed}: {detail}", check.name);
                }
            }
        }
    }

    #[test]
    fn levels_above_the_clamp_are_tractable() {
        // Requesting level 2 must silently clamp to MAX_LEVEL instead of
        // exploding the brute-force grid.
        for check in checks() {
            (check.run)(1, SizeLevel(2)).expect("clamped run passes");
        }
    }

    #[test]
    fn forces_class_detects_flips() {
        let forest = xsat_forest(0, SizeLevel(1));
        let engine = AbductiveEngine::new(&forest).expect("encodable");
        let x = vec![0.5f32; forest.n_features()];
        let want = forest_vote(&forest, &x);
        let all: Vec<usize> = (0..forest.n_features()).collect();
        // Fixing everything always forces the class...
        assert!(forces_class(&forest, engine.encoding(), &x, &all, want));
        // ...and claiming the opposite class must fail immediately.
        assert!(!forces_class(&forest, engine.encoding(), &x, &all, !want));
    }
}

//! Seeded scenario generators.
//!
//! Every generator is a pure function of `(seed, SizeLevel)`: the same pair
//! always reproduces the same forest, dataset, probe set, or workload, on
//! any machine. That is the whole replay story — a failing check never
//! needs to serialize its scenario, it just prints the seed and level that
//! deterministically regenerate it.

use drcshap_forest::{RandomForest, RandomForestTrainer};
use drcshap_ml::{Dataset, Trainer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Scenario size knob: level 0 is the smallest scenario that can still
/// fail, level [`SizeLevel::DEFAULT`] is what `testkit run` exercises.
/// Failures are minimized by re-running the same seed at descending
/// levels and reporting the smallest level that still fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeLevel(pub u8);

impl SizeLevel {
    /// The level `testkit run` uses.
    pub const DEFAULT: SizeLevel = SizeLevel(2);

    /// Clamps to the largest defined level.
    pub fn new(level: u8) -> Self {
        Self(level.min(Self::DEFAULT.0))
    }

    /// Feature count of generated forests/datasets (kept small enough for
    /// the exponential `shap::exact` reference).
    pub fn n_features(self) -> usize {
        [2, 3, 5][self.0 as usize]
    }

    /// Training samples.
    pub fn n_samples(self) -> usize {
        [16, 40, 90][self.0 as usize]
    }

    /// Trees per forest.
    pub fn n_trees(self) -> usize {
        [2, 5, 9][self.0 as usize]
    }

    /// Probe vectors per scenario.
    pub fn n_probes(self) -> usize {
        [4, 8, 16][self.0 as usize]
    }

    /// Samples in score/label scenarios for the metric oracles.
    pub fn n_metric_samples(self) -> usize {
        [8, 30, 80][self.0 as usize]
    }
}

/// The deterministic RNG every scenario derives from its seed.
pub fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A small labelled dataset: features in `[0, 1]`, labels from a noisy
/// linear rule (both classes guaranteed present), round-robin groups with
/// a deliberately degenerate final group (constant features, one label).
pub fn dataset(seed: u64, level: SizeLevel) -> Dataset {
    let mut rng = rng_for(seed);
    let m = level.n_features();
    let n = level.n_samples();
    let weights: Vec<f32> = (0..m).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut x = Vec::with_capacity(n * m);
    let mut y = Vec::with_capacity(n);
    let mut groups = Vec::with_capacity(n);
    for i in 0..n {
        if i >= n - 2 {
            // Degenerate tail group: identical rows, fixed label — the
            // grouped-split and calibration paths must tolerate it.
            x.resize(x.len() + m, 0.5);
            y.push(true);
            groups.push(7);
            continue;
        }
        let row: Vec<f32> = (0..m).map(|_| rng.gen_range(0.0f32..1.0)).collect();
        let score: f32 = row.iter().zip(&weights).map(|(a, b)| a * b).sum();
        let noise = rng.gen_range(-0.15f32..0.15);
        x.extend_from_slice(&row);
        y.push(score + noise > 0.0);
        groups.push((i % 4) as u32);
    }
    // Both classes must be present for the trainers and metric oracles.
    y[0] = true;
    y[1] = false;
    Dataset::from_parts(x, y, groups, m)
}

/// A dataset whose *last* feature column is constant: a dummy feature no
/// split can use, so every SHAP attribution for it must be exactly zero.
pub fn dataset_with_dummy_feature(seed: u64, level: SizeLevel) -> Dataset {
    let base = dataset(seed, level);
    let m = base.n_features();
    let n = base.n_samples();
    let mut x = Vec::with_capacity(n * (m + 1));
    for i in 0..n {
        x.extend_from_slice(base.row(i));
        x.push(0.25);
    }
    Dataset::from_parts(x, base.labels().to_vec(), base.groups().to_vec(), m + 1)
}

/// A small trained Random Forest over [`dataset`].
pub fn forest(seed: u64, level: SizeLevel) -> RandomForest {
    let data = dataset(seed, level);
    let trainer = RandomForestTrainer { n_trees: level.n_trees(), ..Default::default() };
    trainer.fit(&data, seed ^ 0xF0E5)
}

/// Degenerate forest shapes the scoring kernels must survive: trees with
/// the fewest leaves a layout can hold. Returns `(shape-name, forest)`
/// pairs, all trained over [`dataset`]-derived data:
///
/// * `stumps` — every tree is depth 1 (one split, two leaves), the
///   smallest non-trivial leaf interval.
/// * `single-tree` — a one-tree forest (one block, no cross-tree layout).
/// * `pure-single-leaf` — constant labels, so every tree is a root leaf
///   with no split at all (empty entry lists, one-bit masks).
pub fn degenerate_forests(seed: u64, level: SizeLevel) -> Vec<(&'static str, RandomForest)> {
    let data = dataset(seed, level);
    let stumps =
        RandomForestTrainer { n_trees: level.n_trees(), max_depth: Some(1), ..Default::default() }
            .fit(&data, seed ^ 0xDE01);
    let single_tree =
        RandomForestTrainer { n_trees: 1, ..Default::default() }.fit(&data, seed ^ 0xDE02);
    let pure = {
        let constant = Dataset::from_parts(
            data.as_slice().to_vec(),
            vec![true; data.n_samples()],
            data.groups().to_vec(),
            data.n_features(),
        );
        RandomForestTrainer { n_trees: level.n_trees(), ..Default::default() }
            .fit(&constant, seed ^ 0xDE03)
    };
    vec![("stumps", stumps), ("single-tree", single_tree), ("pure-single-leaf", pure)]
}

/// `count` probe vectors of `m` features in `[0, 1]`. With `with_nan`,
/// roughly a quarter of the entries are replaced by NaN / ±∞ (the NaN-aware
/// scoring paths must handle all three).
pub fn probes(rng: &mut ChaCha8Rng, m: usize, count: usize, with_nan: bool) -> Vec<Vec<f32>> {
    (0..count)
        .map(|_| {
            (0..m)
                .map(|_| {
                    if with_nan && rng.gen_bool(0.25) {
                        match rng.gen_range(0u8..3) {
                            0 => f32::NAN,
                            1 => f32::INFINITY,
                            _ => f32::NEG_INFINITY,
                        }
                    } else {
                        rng.gen_range(0.0f32..1.0)
                    }
                })
                .collect()
        })
        .collect()
}

/// Scores/labels for the metric oracles. Scores are quantized onto a
/// coarse grid so duplicate scores (tie groups) are common; `with_nan`
/// sprinkles NaN scores in. Both classes are guaranteed present.
pub fn score_label_scenario(seed: u64, level: SizeLevel, with_nan: bool) -> (Vec<f64>, Vec<bool>) {
    let mut rng = rng_for(seed ^ 0x5C0E);
    let n = level.n_metric_samples();
    let grid = rng.gen_range(3usize..12);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let s = if with_nan && rng.gen_bool(0.1) {
            f64::NAN
        } else {
            rng.gen_range(0..=grid) as f64 / grid as f64
        };
        let l = rng.gen_bool(0.3);
        scores.push(s);
        labels.push(l);
    }
    labels[0] = true;
    labels[1] = false;
    // Keep at least the first two scores real so the forced labels attach
    // to rankable samples.
    if scores[0].is_nan() {
        scores[0] = 0.5;
    }
    if scores[1].is_nan() {
        scores[1] = 0.5;
    }
    (scores, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let a = dataset(7, SizeLevel::DEFAULT);
        let b = dataset(7, SizeLevel::DEFAULT);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(a.labels(), b.labels());
        let fa = forest(7, SizeLevel::DEFAULT);
        let fb = forest(7, SizeLevel::DEFAULT);
        assert_eq!(fa.trees().len(), fb.trees().len());
        let probe = vec![0.3; fa.n_features()];
        assert_eq!(fa.predict_proba(&probe).to_bits(), fb.predict_proba(&probe).to_bits());
        let (sa, la) = score_label_scenario(9, SizeLevel(1), true);
        let (sb, lb) = score_label_scenario(9, SizeLevel(1), true);
        assert_eq!(la, lb);
        assert_eq!(
            sa.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            sb.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn levels_scale_monotonically() {
        for knob in [
            SizeLevel::n_features as fn(SizeLevel) -> usize,
            SizeLevel::n_samples,
            SizeLevel::n_trees,
            SizeLevel::n_probes,
            SizeLevel::n_metric_samples,
        ] {
            assert!(knob(SizeLevel(0)) <= knob(SizeLevel(1)));
            assert!(knob(SizeLevel(1)) <= knob(SizeLevel(2)));
        }
    }

    #[test]
    fn dummy_feature_is_constant() {
        let data = dataset_with_dummy_feature(3, SizeLevel(1));
        let m = data.n_features();
        for i in 0..data.n_samples() {
            assert_eq!(data.row(i)[m - 1], 0.25);
        }
    }

    #[test]
    fn degenerate_forests_have_the_advertised_shapes() {
        for seed in 0..4 {
            for (name, forest) in degenerate_forests(seed, SizeLevel(1)) {
                match name {
                    "stumps" => {
                        for tree in forest.trees() {
                            assert!(
                                tree.nodes().len() <= 3,
                                "{name}: {} nodes",
                                tree.nodes().len()
                            );
                        }
                    }
                    "single-tree" => assert_eq!(forest.trees().len(), 1),
                    "pure-single-leaf" => {
                        for tree in forest.trees() {
                            assert_eq!(tree.num_leaves(), 1, "{name}: tree grew a split");
                        }
                    }
                    other => panic!("unknown degenerate shape {other}"),
                }
            }
        }
    }

    #[test]
    fn both_classes_present() {
        for seed in 0..8 {
            for level in [SizeLevel(0), SizeLevel(1), SizeLevel(2)] {
                let data = dataset(seed, level);
                assert!(data.num_positives() > 0);
                assert!(data.num_positives() < data.n_samples());
                let (_, labels) = score_label_scenario(seed, level, true);
                assert!(labels.iter().any(|&l| l));
                assert!(labels.iter().any(|&l| !l));
            }
        }
    }
}

//! Gateway chaos mode: the engine soak's invariants, one layer up.
//!
//! A fleet of [`Gateway`] shards is hammered by concurrent clients while a
//! chaos driver injects the four failure modes the gateway exists to
//! absorb — a shard made slow, a shard killed outright, sustained
//! admission overload (tight per-tenant quotas), and one staged rollout
//! launched mid-load. The invariants mirror [`super::chaos_soak`]:
//!
//! - **No silent drops.** Every `score` call resolves to either a score
//!   or a *typed* error from the expected taxonomy: [`Overloaded`]
//!   (quota or queue doing its job), [`DeadlineExceeded`] (shed before
//!   wasted work), or — rarely, in the shadow of a kill — a retryable
//!   error surfaced after the gateway exhausted its bounded retries.
//!   Anything else fails the soak.
//! - **Epoch consistency across the fleet.** A response tagged epoch `e`
//!   must carry the bit-exact score that epoch's forest assigns its
//!   probe, even while shard 0 is mid-canary and the rest of the fleet
//!   is still on the old model. A torn rollout fails immediately.
//! - **Survivor quality.** After the kill, the surviving shards keep
//!   answering: at least 99% of non-shed requests must succeed, and a
//!   finale burst after the chaos window must be served entirely by
//!   surviving shards.
//!
//! [`Overloaded`]: DrcshapError::Overloaded
//! [`DeadlineExceeded`]: DrcshapError::DeadlineExceeded

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use drcshap_core::SavedModel;
use drcshap_forest::RandomForest;
use drcshap_gateway::{Gateway, GatewayConfig, Priority, QuotaConfig, Request};
use drcshap_ml::{DrcshapError, NanPolicy};
use drcshap_serve::ServeConfig;
use drcshap_store::{FsBackend, Registry, StorageBackend};
use rand::Rng;

use crate::scenario::{self, SizeLevel};

/// Knobs for one gateway soak run.
#[derive(Debug, Clone)]
pub struct GatewayChaosConfig {
    /// How long the clients keep up the pressure.
    pub duration: Duration,
    /// Concurrent client threads.
    pub clients: usize,
    /// Shards in the fleet (the acceptance drill uses 4).
    pub shards: usize,
    /// Inject a slow shard at one fifth of the run.
    pub slow_a_shard: bool,
    /// Kill one shard at two fifths of the run.
    pub kill_a_shard: bool,
    /// Launch one staged rollout at the midpoint, under load.
    pub rollout_mid_run: bool,
}

impl Default for GatewayChaosConfig {
    fn default() -> Self {
        Self {
            duration: Duration::from_secs(2),
            clients: 4,
            shards: 4,
            slow_a_shard: true,
            kill_a_shard: true,
            rollout_mid_run: true,
        }
    }
}

/// What a completed gateway soak observed.
#[derive(Debug, Clone, Default)]
pub struct GatewayChaosReport {
    /// Requests resolved with a score.
    pub responses: u64,
    /// Responses validated bitwise against their claimed epoch's forest.
    pub validated: u64,
    /// Typed overload sheds (admission quota or queue pressure — expected).
    pub overloads: u64,
    /// Typed deadline sheds (expected; pre-expired ones are provoked).
    pub deadline_sheds: u64,
    /// Retryable errors surfaced after the gateway's bounded retries
    /// (tolerated only in the shadow of a kill, bounded to < 1%).
    pub transient_errors: u64,
    /// Ring failovers the gateway performed (from its metrics).
    pub failovers: u64,
    /// Hedged requests launched against the slow shard.
    pub hedges: u64,
    /// Retried attempts across the fleet.
    pub retries: u64,
    /// Distinct model epochs observed in responses.
    pub epochs_observed: u64,
    /// The shard the driver slowed, if any.
    pub slowed_shard: Option<usize>,
    /// The shard the driver killed, if any.
    pub killed_shard: Option<usize>,
    /// Whether the mid-load staged rollout completed.
    pub rolled_out: bool,
}

impl std::fmt::Display for GatewayChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} responses ({} validated) across {} epochs; {} overload + {} deadline sheds, \
             {} transient errors; {} failovers, {} hedges, {} retries; slow={:?} killed={:?} \
             rollout={}",
            self.responses,
            self.validated,
            self.epochs_observed,
            self.overloads,
            self.deadline_sheds,
            self.transient_errors,
            self.failovers,
            self.hedges,
            self.retries,
            self.slowed_shard,
            self.killed_shard,
            self.rolled_out
        )
    }
}

/// Validates one gateway response against the forest its epoch tag claims
/// scored it. `Ok(false)` defers an epoch the map has not recorded yet.
fn check_response(
    variants: &[RandomForest],
    epoch_map: &HashMap<u64, usize>,
    probe: &[f32],
    epoch: u64,
    shard: usize,
    score: f64,
) -> Result<bool, String> {
    let Some(&variant) = epoch_map.get(&epoch) else {
        return Ok(false);
    };
    let want = variants[variant].predict_proba_nan_aware(probe);
    if score.to_bits() != want.to_bits() {
        return Err(format!(
            "shard {shard} epoch {epoch} (variant {variant}) served {score} but that epoch's \
             forest scores {want} — torn rollout or cross-epoch batch tearing"
        ));
    }
    Ok(true)
}

struct ClientOutcome {
    responses: u64,
    validated: u64,
    overloads: u64,
    deadline_sheds: u64,
    transient_errors: u64,
    epochs: Vec<u64>,
    deferred: Vec<(Vec<f32>, u64, usize, f64)>,
}

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

fn client_loop(
    id: usize,
    seed: u64,
    deadline: Instant,
    gateway: &Gateway,
    variants: &[RandomForest],
    epoch_map: &Mutex<HashMap<u64, usize>>,
) -> Result<ClientOutcome, String> {
    let mut rng = scenario::rng_for(seed ^ 0x6A7E ^ ((id as u64) << 32));
    let m = gateway.n_features();
    let mut out = ClientOutcome {
        responses: 0,
        validated: 0,
        overloads: 0,
        deadline_sheds: 0,
        transient_errors: 0,
        epochs: Vec::new(),
        deferred: Vec::new(),
    };
    while Instant::now() < deadline {
        let probe = scenario::probes(&mut rng, m, 1, true).pop().expect("one probe");
        let tenant = TENANTS[rng.gen_range(0..TENANTS.len())];
        let priority = match rng.gen_range(0u32..10) {
            0 => Priority::High,
            1 | 2 => Priority::Low,
            _ => Priority::Normal,
        };
        let mut request = Request::new(probe.clone()).tenant(tenant).priority(priority);
        // 5% of requests carry an already-expired deadline: the gateway
        // must shed them in O(1) with the shard-untouched marker.
        let pre_expired = rng.gen_bool(0.05);
        if pre_expired {
            request = request.deadline(Instant::now() - Duration::from_millis(1));
        } else if rng.gen_bool(0.10) {
            // A tight-but-live deadline: may succeed, may shed mid-flight.
            request = request.deadline_in(Duration::from_micros(rng.gen_range(200..=2_000)));
        }
        match gateway.score(request) {
            Ok(response) => {
                if pre_expired {
                    return Err(format!(
                        "client {id}: a request with an expired deadline was scored"
                    ));
                }
                out.responses += 1;
                if !out.epochs.contains(&response.epoch) {
                    out.epochs.push(response.epoch);
                }
                let map = epoch_map.lock().expect("epoch map poisoned");
                match check_response(
                    variants,
                    &map,
                    &probe,
                    response.epoch,
                    response.shard,
                    response.score,
                )? {
                    true => out.validated += 1,
                    false => {
                        out.deferred.push((probe, response.epoch, response.shard, response.score));
                    }
                }
            }
            Err(DrcshapError::Overloaded { .. }) => out.overloads += 1,
            Err(DrcshapError::DeadlineExceeded { shard_untouched }) => {
                if pre_expired && !shard_untouched {
                    return Err(format!(
                        "client {id}: pre-expired deadline reached a shard — the O(1) \
                         admission shed did not engage"
                    ));
                }
                out.deadline_sheds += 1;
            }
            // In the shadow of a kill the gateway may exhaust its bounded
            // retries and surface the last retryable error; that is loud,
            // typed, and counted against the 99% survivor bound.
            Err(e) if e.is_retryable() => out.transient_errors += 1,
            Err(e) => return Err(format!("client {id}: unexpected error class: {e}")),
        }
    }
    Ok(out)
}

/// Runs the full gateway soak: start a fleet on variant 0 behind tight
/// per-tenant quotas, hammer it from [`GatewayChaosConfig::clients`]
/// threads, and let the chaos driver slow one shard, kill another, and
/// launch a staged rollout mid-load — then verify a finale burst is
/// served entirely by surviving shards before shutdown.
///
/// Returns `Err` with a diagnostic on any invariant violation: an
/// untyped error, a bitwise score mismatch against the claimed epoch's
/// forest, a pre-expired deadline that touched a shard, a transient
/// error rate over 1%, or (for soaks of at least one second with a
/// rollout) fewer than two epochs observed.
pub fn gateway_chaos_soak(
    seed: u64,
    config: &GatewayChaosConfig,
) -> Result<GatewayChaosReport, String> {
    let level = SizeLevel(1);
    // Variant 0 boots the fleet; variant 1 is the mid-load rollout
    // candidate.
    let variants: Vec<RandomForest> =
        (0..2u64).map(|v| scenario::forest(seed ^ v, level)).collect();
    let fingerprint = seed;
    let gateway_config = GatewayConfig {
        shards: config.shards.max(2),
        serve: ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            queue_capacity: 64,
            workers: 2,
            nan_policy: NanPolicy::NanAware,
            cache_capacity: 64,
            kernel: None,
            analytics: None,
        },
        // Tight quotas make sustained client pressure trip the typed
        // admission shed path — the overload burst, by construction.
        quota: Some(QuotaConfig { burst: 400.0, refill_per_sec: 200.0 }),
        default_deadline: Some(Duration::from_millis(250)),
        hedge_after: Some(Duration::from_millis(3)),
        ..GatewayConfig::default()
    };
    // The fleet is fed from a real on-disk crash-safe registry: variant 0
    // is published as generation 1 and the gateway boots from
    // `open_latest` (so even epoch 1 scores prove the disk round trip is
    // bit-exact); the mid-load rollout is later *published* by the driver
    // and pulled through `Registry::watch`.
    let registry_dir =
        std::env::temp_dir().join(format!("drcshap-gw-soak-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&registry_dir);
    let backend = FsBackend::new(&registry_dir).map_err(|e| format!("registry dir: {e}"))?;
    let registry = Registry::open(backend as Arc<dyn StorageBackend>)
        .map_err(|e| format!("registry open: {e}"))?;
    registry
        .publish_model(&SavedModel::Rf(variants[0].clone()), fingerprint)
        .map_err(|e| format!("registry publish (boot): {e}"))?;
    let boot = registry.open_latest().map_err(|e| format!("registry open_latest: {e}"))?;
    let mut watch = registry.watch().map_err(|e| format!("registry watch: {e}"))?;
    let gateway = Gateway::start_saved(gateway_config, boot.model, boot.fingerprint)
        .map_err(|e| format!("gateway start: {e}"))?;
    let shards = gateway.n_shards();
    // Every shard boots at epoch 1 on variant 0; the single clean rollout
    // moves shards to epoch 2 on variant 1. Recording the mapping up
    // front keeps validation lock-free with respect to the rollout.
    let epoch_map = Mutex::new(HashMap::from([(1u64, 0usize), (2u64, 1usize)]));
    let deadline = Instant::now() + config.duration;
    let mut report = GatewayChaosReport::default();
    let mut epochs: Vec<u64> = Vec::new();
    let mut deferred: Vec<(Vec<f32>, u64, usize, f64)> = Vec::new();

    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let watch = &mut watch;
        let driver = scope.spawn(|| -> Result<(Option<usize>, Option<usize>, bool), String> {
            let mut rng = scenario::rng_for(seed ^ 0xD21F);
            let fifth = config.duration / 5;
            let mut slowed = None;
            let mut killed = None;
            let mut rolled_out = false;
            std::thread::sleep(fifth);
            if config.slow_a_shard {
                let s = rng.gen_range(0..shards);
                gateway
                    .set_shard_delay(s, Duration::from_millis(5))
                    .map_err(|e| format!("slow injection: {e}"))?;
                slowed = Some(s);
            }
            std::thread::sleep(fifth);
            if config.kill_a_shard {
                // Kill a different shard than the slowed one so both
                // failure modes stay live for the rest of the run.
                let k = match slowed {
                    Some(s) => (s + 1 + rng.gen_range(0..shards - 1)) % shards,
                    None => rng.gen_range(0..shards),
                };
                gateway.kill_shard(k).map_err(|e| format!("kill injection: {e}"))?;
                killed = Some(k);
            }
            std::thread::sleep(fifth / 2);
            if config.rollout_mid_run {
                // The rollout arrives the way production updates do: the
                // trainer publishes a new generation into the registry,
                // and the gateway pulls it through its watch — same
                // canary digest discipline, now sourced from disk.
                registry
                    .publish_model(&SavedModel::Rf(variants[1].clone()), fingerprint)
                    .map_err(|e| format!("registry publish (rollout): {e}"))?;
                let report = gateway
                    .rollout_from_watch(watch)
                    .map_err(|e| format!("mid-load staged rollout failed: {e}"))?;
                if report.is_none() {
                    return Err("watch did not deliver the published generation".into());
                }
                rolled_out = true;
            }
            // Let the slow shard recover for the tail of the run, unless
            // it was the one killed.
            std::thread::sleep(fifth + fifth / 2);
            if let Some(s) = slowed {
                if Some(s) != killed {
                    gateway
                        .set_shard_delay(s, Duration::ZERO)
                        .map_err(|e| format!("slow recovery: {e}"))?;
                }
            }
            Ok((slowed, killed, rolled_out))
        });
        let clients: Vec<_> = (0..config.clients.max(1))
            .map(|id| {
                let gateway = &gateway;
                let variants = &variants;
                let epoch_map = &epoch_map;
                scope.spawn(move || client_loop(id, seed, deadline, gateway, variants, epoch_map))
            })
            .collect();
        for handle in clients {
            let out = handle.join().map_err(|_| "client thread panicked".to_string())??;
            report.responses += out.responses;
            report.validated += out.validated;
            report.overloads += out.overloads;
            report.deadline_sheds += out.deadline_sheds;
            report.transient_errors += out.transient_errors;
            for e in out.epochs {
                if !epochs.contains(&e) {
                    epochs.push(e);
                }
            }
            deferred.extend(out.deferred);
        }
        let (slowed, killed, rolled_out) =
            driver.join().map_err(|_| "chaos driver panicked".to_string())??;
        report.slowed_shard = slowed;
        report.killed_shard = killed;
        report.rolled_out = rolled_out;
        Ok(())
    });
    outcome?;

    // Finale: with the chaos window over, the surviving shards must still
    // answer — generously deadlined, bit-exact, and never from the
    // killed shard (its engine finished draining when the kill landed).
    let mut rng = scenario::rng_for(seed ^ 0xF1A1E);
    let map = epoch_map.into_inner().expect("epoch map poisoned");
    for i in 0..16 {
        let probe = scenario::probes(&mut rng, gateway.n_features(), 1, true).pop().expect("probe");
        let request = Request::new(probe.clone())
            .tenant("finale")
            .priority(Priority::High)
            .deadline_in(Duration::from_secs(5));
        let response =
            gateway.score(request).map_err(|e| format!("finale probe {i} failed: {e}"))?;
        if Some(response.shard) == report.killed_shard {
            return Err(format!(
                "finale probe {i} was answered by killed shard {}",
                response.shard
            ));
        }
        report.responses += 1;
        if !epochs.contains(&response.epoch) {
            epochs.push(response.epoch);
        }
        deferred.push((probe, response.epoch, response.shard, response.score));
    }
    let metrics = gateway.metrics();
    gateway.shutdown();
    let _ = std::fs::remove_dir_all(&registry_dir);

    // Deferred responses must all validate now that the run is over.
    for (probe, epoch, shard, score) in &deferred {
        if !check_response(&variants, &map, probe, *epoch, *shard, *score)? {
            return Err(format!("shard {shard} response claims unknown epoch {epoch}"));
        }
        report.validated += 1;
    }
    report.failovers = metrics.failovers_total;
    report.hedges = metrics.hedges_total;
    report.retries = metrics.retries_total;
    report.epochs_observed = epochs.len() as u64;
    if report.validated != report.responses {
        return Err(format!(
            "{} responses but only {} validated — harness accounting bug",
            report.responses, report.validated
        ));
    }
    if metrics.completed_total != report.responses {
        return Err(format!(
            "gateway counted {} completions but clients saw {} responses — a response was \
             dropped or double-counted",
            metrics.completed_total, report.responses
        ));
    }
    // Survivor quality: at least 99% of requests that were not typed
    // sheds must have succeeded.
    let attempts = report.responses + report.transient_errors;
    if report.transient_errors * 100 > attempts {
        return Err(format!(
            "{} transient errors out of {} non-shed requests — surviving shards are below \
             the 99% success bound",
            report.transient_errors, attempts
        ));
    }
    if config.rollout_mid_run
        && config.duration >= Duration::from_secs(1)
        && report.epochs_observed < 2
    {
        return Err(format!(
            "soak of {:?} with a mid-load rollout observed only {} epoch(s) — the rollout \
             never reached the scoring path",
            config.duration, report.epochs_observed
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_gateway_soak_holds_invariants() {
        let config = GatewayChaosConfig {
            duration: Duration::from_millis(700),
            clients: 3,
            shards: 3,
            ..GatewayChaosConfig::default()
        };
        let report = gateway_chaos_soak(11, &config).expect("soak must hold its invariants");
        assert!(report.responses > 0);
        assert_eq!(report.validated, report.responses);
        assert!(report.rolled_out, "mid-load rollout must complete: {report}");
        assert!(report.killed_shard.is_some() && report.slowed_shard.is_some());
        assert_ne!(report.killed_shard, report.slowed_shard);
        assert!(report.deadline_sheds > 0, "pre-expired deadlines must shed: {report}");
    }

    #[test]
    fn quotas_shed_sustained_pressure_without_drops() {
        let config = GatewayChaosConfig {
            duration: Duration::from_millis(900),
            clients: 4,
            shards: 2,
            slow_a_shard: false,
            kill_a_shard: false,
            rollout_mid_run: false,
        };
        let report = gateway_chaos_soak(5, &config).expect("soak must hold its invariants");
        // Sustained pressure from 4 clients against a 400-token burst and
        // 200/s refill must trip the typed admission shed path.
        assert!(report.overloads > 0, "no quota shed in {report}");
        assert_eq!(report.validated, report.responses);
        assert_eq!(report.transient_errors, 0, "no kills, so no transients: {report}");
    }
}

//! Conformance oracles for the explanation-analytics sink.
//!
//! Two checks, both pure functions of `(seed, SizeLevel)` like the rest
//! of the registry:
//!
//! - **`sketch-differential`**: streams seeded SHAP vectors (real
//!   TreeSHAP output, not synthetic noise) through per-feature
//!   [`QuantileSketch`]es, then diffs *every* queried quantile against an
//!   exact full-sort oracle — the chosen bucket must contain the exact
//!   rank-`⌈qn⌉` element (zero rank error at bucket granularity) and the
//!   reported value must satisfy the ε relative bound. A merge
//!   metamorphic pass then splits the same stream `k` ways, merges the
//!   shards in a seeded shuffled order, and demands the canonical bytes —
//!   and hence the snapshot digest — be bit-identical to the
//!   single-stream fold.
//! - **`analytics-consistency`**: folds a whole dataset's explanations
//!   through an [`AnalyticsSink`] and checks the streaming mean-|φ| /
//!   mean-φ aggregates against the offline [`drcshap_shap::summarize`]
//!   path, plus the SHAP interaction additivity identity (each row of
//!   the interaction matrix sums to that feature's φ) on the same
//!   vectors the sink aggregates.
//!
//! Tolerances: `summarize` reduces in rayon's nondeterministic order, so
//! its float sums can differ from the sink's fixed-point accumulators by
//! genuine rounding — the comparison allows `1e-9` absolute (both sides
//! aggregate values well under 1.0). The interaction identity is exact
//! mathematics executed in float, held to `1e-8`.

use drcshap_analytics::{AnalyticsConfig, AnalyticsSink, Provenance, QuantileSketch, SketchParams};
use drcshap_shap::{explain_forest, forest_shap_interactions, summarize};
use rand::seq::SliceRandom;

use crate::scenario::{self, SizeLevel};

/// Quantile grid every sketch query sweep covers: extremes, the paper's
/// usual box-plot points, and two tail probes.
const QUANTILE_GRID: [f64; 9] = [0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];

/// SHAP vectors for `count` seeded probes of the scenario forest.
fn shap_vectors(seed: u64, level: SizeLevel, count: usize) -> Vec<Vec<f64>> {
    let forest = scenario::forest(seed, level);
    let mut rng = scenario::rng_for(seed ^ 0x5E7C);
    scenario::probes(&mut rng, forest.n_features(), count, false)
        .iter()
        .map(|x| explain_forest(&forest, x).contributions)
        .collect()
}

/// The exact rank-`⌈qn⌉` element of a sorted stream — the sketch's own
/// deterministic tie-breaking rule, computed by full sort.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = QuantileSketch::target_rank(q, sorted.len() as u64);
    sorted[(rank - 1) as usize]
}

pub(crate) fn check_sketch_differential(seed: u64, level: SizeLevel) -> Result<(), String> {
    // Enough vectors that tail quantiles are meaningful, scaled by level.
    let vectors = shap_vectors(seed, level, level.n_probes() * 8);
    let m = vectors[0].len();
    let params = SketchParams::default();
    let eps = params.epsilon();

    for feature in 0..m {
        let stream: Vec<f64> = vectors.iter().map(|phi| phi[feature]).collect();
        let mut sketch = QuantileSketch::new(params);
        for &v in &stream {
            sketch.insert(v);
        }
        let mut sorted = stream.clone();
        sorted.sort_by(f64::total_cmp);

        // Differential: every grid quantile against the full sort.
        for &q in &QUANTILE_GRID {
            let exact = exact_quantile(&sorted, q);
            let bucket = sketch
                .quantile_bucket(q)
                .ok_or_else(|| format!("feature {feature}: empty sketch at q={q}"))?;
            let exact_bucket = params.bucket_of(exact);
            if bucket != exact_bucket {
                return Err(format!(
                    "feature {feature} q={q}: sketch localized bucket {bucket} but the exact \
                     rank element {exact} lives in bucket {exact_bucket}"
                ));
            }
            let got = sketch.quantile(q).expect("non-empty sketch");
            if (got - exact).abs() > eps * exact.abs() + 1e-15 {
                return Err(format!(
                    "feature {feature} q={q}: sketch {got} vs exact {exact} breaks the \
                     eps={eps} bound"
                ));
            }
        }

        // Merge metamorphic: k-way split, shuffled merge order, bit-equal
        // canonical bytes.
        let mut rng = scenario::rng_for(seed ^ 0x3E86 ^ feature as u64);
        let parts = 2 + (feature % 4);
        let mut shards: Vec<QuantileSketch> =
            (0..parts).map(|_| QuantileSketch::new(params)).collect();
        for (i, &v) in stream.iter().enumerate() {
            shards[i % parts].insert(v);
        }
        let mut order: Vec<usize> = (0..parts).collect();
        order.shuffle(&mut rng);
        let mut merged = QuantileSketch::new(params);
        for &k in &order {
            merged.merge(&shards[k]).map_err(|e| format!("feature {feature}: merge: {e}"))?;
        }
        let (mut single_bytes, mut merged_bytes) = (Vec::new(), Vec::new());
        sketch.canonical_bytes(&mut single_bytes);
        merged.canonical_bytes(&mut merged_bytes);
        if single_bytes != merged_bytes {
            return Err(format!(
                "feature {feature}: {parts}-way shuffled merge (order {order:?}) is not \
                 bit-identical to the single-stream fold"
            ));
        }
    }
    Ok(())
}

pub(crate) fn check_analytics_consistency(seed: u64, level: SizeLevel) -> Result<(), String> {
    let forest = scenario::forest(seed, level);
    let data = scenario::dataset(seed, level);
    let m = data.n_features();

    // Stream every row's explanation through the sink, interactions too.
    let config = AnalyticsConfig {
        interactions: true,
        max_interaction_features: m as u32,
        ..Default::default()
    };
    let mut sink = AnalyticsSink::new(config);
    for i in 0..data.n_samples() {
        let x = data.row(i);
        let phi = explain_forest(&forest, x).contributions;
        let iv = forest_shap_interactions(&forest, x);

        // Interaction additivity on the very vectors the sink aggregates:
        // row j of the matrix sums to φⱼ.
        for (j, &phi_j) in phi.iter().enumerate() {
            let row_sum: f64 = iv.row(j).iter().sum();
            if (row_sum - phi_j).abs() > 1e-8 {
                return Err(format!(
                    "sample {i} feature {j}: interaction row sum {row_sum} vs phi {phi_j}"
                ));
            }
        }

        sink.fold(x, &phi).map_err(|e| format!("sample {i}: fold: {e}"))?;
        sink.fold_interactions(&iv);
    }

    // Differential: streaming aggregates vs the offline summarize() pass
    // over the identical sample set (max_samples = n ⇒ no subsampling).
    let offline = summarize(&forest, &data, data.n_samples());
    let snapshot = sink.snapshot(Provenance::default());
    if snapshot.n_vectors != data.n_samples() as u64 {
        return Err(format!(
            "sink folded {} vectors but the dataset has {}",
            snapshot.n_vectors,
            data.n_samples()
        ));
    }
    for j in 0..m {
        let feature = &snapshot.features[j];
        let streaming_abs = feature.mean_abs();
        let streaming_mean = feature.mean();
        if (streaming_abs - offline.mean_abs[j]).abs() > 1e-9 {
            return Err(format!(
                "feature {j}: streaming mean|phi| {streaming_abs} vs summarize {}",
                offline.mean_abs[j]
            ));
        }
        if (streaming_mean - offline.mean[j]).abs() > 1e-9 {
            return Err(format!(
                "feature {j}: streaming mean phi {streaming_mean} vs summarize {}",
                offline.mean[j]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_checks_pass_a_seed_sweep() {
        for seed in 0..4 {
            check_sketch_differential(seed, SizeLevel(1))
                .unwrap_or_else(|d| panic!("sketch-differential seed {seed}: {d}"));
            check_analytics_consistency(seed, SizeLevel(1))
                .unwrap_or_else(|d| panic!("analytics-consistency seed {seed}: {d}"));
        }
    }
}

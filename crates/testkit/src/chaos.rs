//! Chaos/soak harness for the [`ServeEngine`]: concurrent clients,
//! randomized hot swaps, deliberate overload bursts, and a shutdown-drain
//! finale — with every response validated bitwise against the forest of
//! the epoch it claims to come from.
//!
//! The two load-bearing invariants:
//!
//! - **No lost responses.** Every accepted ticket resolves. A submission
//!   may be shed with the typed [`DrcshapError::Overloaded`] error (that
//!   is the queue doing its job, and the harness provokes it on purpose),
//!   but once `submit` returns a ticket, `wait` must produce a score —
//!   including tickets still in flight when `shutdown` begins draining.
//! - **Epoch consistency.** A response tagged epoch `e` must carry the
//!   bit-exact score the epoch-`e` forest assigns its probe. A worker
//!   that tears a batch across a hot swap (scoring half a batch with the
//!   old model after the epoch tag advanced) fails this immediately.
//!
//! The harness is seeded like every other scenario: the forest variants,
//! probe streams, burst sizes, and swap cadence all derive from one `u64`,
//! so a failure report's seed regenerates the same pressure pattern
//! (thread interleaving itself is the one thing a seed cannot pin down —
//! the invariants above hold under *every* interleaving, which is the
//! point of soaking).

pub mod gateway;

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use drcshap_forest::RandomForest;
use drcshap_ml::{DrcshapError, NanPolicy};
use drcshap_serve::{ScoredResponse, ServeConfig, ServeEngine};
use rand::Rng;

use crate::scenario::{self, SizeLevel};

/// Knobs for one soak run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// How long the clients and the swapper keep up the pressure.
    pub duration: Duration,
    /// Concurrent client threads submitting probe bursts.
    pub clients: usize,
    /// Distinct forest variants the swapper rotates between.
    pub variants: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { duration: Duration::from_secs(2), clients: 3, variants: 4 }
    }
}

/// What a completed soak observed.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Tickets accepted and resolved with a score.
    pub responses: u64,
    /// Responses validated bitwise against their claimed epoch's forest.
    pub validated: u64,
    /// Submissions shed with the typed overload error (expected).
    pub overloads: u64,
    /// Successful hot swaps performed.
    pub swaps: u64,
    /// Distinct model epochs observed in responses.
    pub epochs_observed: u64,
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} responses ({} validated) across {} epochs, {} swaps, {} overload sheds",
            self.responses, self.validated, self.epochs_observed, self.swaps, self.overloads
        )
    }
}

/// Validates one response against the forest its epoch tag claims scored
/// it. `Ok(false)` means the epoch is not in the map yet (the client won
/// the race against the swapper's bookkeeping) — the caller defers it.
fn check_response(
    variants: &[RandomForest],
    epoch_map: &HashMap<u64, usize>,
    probe: &[f32],
    response: &ScoredResponse,
) -> Result<bool, String> {
    let Some(&variant) = epoch_map.get(&response.epoch) else {
        return Ok(false);
    };
    let want = variants[variant].predict_proba_nan_aware(probe);
    if response.score.to_bits() != want.to_bits() {
        return Err(format!(
            "epoch {} (variant {variant}) served {} but that epoch's forest scores {} — \
             cross-epoch batch tearing",
            response.epoch, response.score, want
        ));
    }
    Ok(true)
}

struct ClientOutcome {
    responses: u64,
    validated: u64,
    overloads: u64,
    epochs: Vec<u64>,
    deferred: Vec<(Vec<f32>, ScoredResponse)>,
}

fn client_loop(
    id: usize,
    seed: u64,
    deadline: Instant,
    engine: &ServeEngine,
    variants: &[RandomForest],
    epoch_map: &Mutex<HashMap<u64, usize>>,
) -> Result<ClientOutcome, String> {
    let mut rng = scenario::rng_for(seed ^ 0xC11E ^ ((id as u64) << 32));
    let m = engine.n_features();
    let mut out = ClientOutcome {
        responses: 0,
        validated: 0,
        overloads: 0,
        epochs: Vec::new(),
        deferred: Vec::new(),
    };
    while Instant::now() < deadline {
        // Mostly small bursts; occasionally a burst bigger than the queue
        // to force the typed overload path.
        let burst =
            if rng.gen_bool(0.15) { rng.gen_range(96..=160) } else { rng.gen_range(1usize..=24) };
        let mut tickets = Vec::with_capacity(burst);
        for _ in 0..burst {
            let probe = scenario::probes(&mut rng, m, 1, true).pop().expect("one probe");
            match engine.submit(probe.clone()) {
                Ok(ticket) => tickets.push((probe, ticket)),
                Err(DrcshapError::Overloaded { .. }) => out.overloads += 1,
                Err(e) => return Err(format!("client {id}: unexpected submit error: {e}")),
            }
        }
        for (probe, ticket) in tickets {
            let response =
                ticket.wait().map_err(|e| format!("client {id}: lost a response: {e}"))?;
            out.responses += 1;
            if !out.epochs.contains(&response.epoch) {
                out.epochs.push(response.epoch);
            }
            let map = epoch_map.lock().expect("epoch map poisoned");
            match check_response(variants, &map, &probe, &response)? {
                true => out.validated += 1,
                false => out.deferred.push((probe, response)),
            }
        }
    }
    Ok(out)
}

/// Runs the full soak: start an engine on variant 0, hammer it from
/// [`ChaosConfig::clients`] threads while a swapper rotates variants at a
/// seeded jittered cadence, then drain through `shutdown` with tickets
/// still in flight.
///
/// Returns `Err` with a diagnostic on any invariant violation: a lost
/// response, a non-overload submit failure, a bitwise score mismatch
/// against the claimed epoch's forest, or (for soaks of at least one
/// second) fewer than two epochs observed in responses.
pub fn chaos_soak(seed: u64, config: &ChaosConfig) -> Result<ChaosReport, String> {
    let level = SizeLevel(1);
    let variants: Vec<RandomForest> =
        (0..config.variants.max(2) as u64).map(|v| scenario::forest(seed ^ v, level)).collect();
    let fingerprint = seed;
    let serve_config = ServeConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        queue_capacity: 64,
        workers: 2,
        nan_policy: NanPolicy::NanAware,
        cache_capacity: 64,
        kernel: None,
        analytics: None,
    };
    let engine = ServeEngine::start(serve_config, variants[0].clone(), fingerprint)
        .map_err(|e| format!("engine start: {e}"))?;
    let epoch_map = Mutex::new(HashMap::from([(1u64, 0usize)]));
    let deadline = Instant::now() + config.duration;
    let mut report = ChaosReport::default();
    let mut epochs: Vec<u64> = Vec::new();
    let mut deferred: Vec<(Vec<f32>, ScoredResponse)> = Vec::new();

    let outcome: Result<(), String> = std::thread::scope(|scope| {
        let swapper = scope.spawn(|| {
            let mut rng = scenario::rng_for(seed ^ 0x54A9);
            let mut swaps = 0u64;
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(rng.gen_range(1..=6)));
                let variant = rng.gen_range(0..variants.len());
                // Hold the map lock across the swap so an epoch number is
                // recorded before any client can look it up — and so the
                // mapping can never disagree with swap ordering.
                let mut map = epoch_map.lock().expect("epoch map poisoned");
                match engine.swap(variants[variant].clone(), fingerprint) {
                    Ok(epoch) => {
                        map.insert(epoch, variant);
                        swaps += 1;
                    }
                    Err(e) => return Err(format!("swap rejected: {e}")),
                }
            }
            Ok(swaps)
        });
        let clients: Vec<_> = (0..config.clients.max(1))
            .map(|id| {
                let engine = &engine;
                let variants = &variants;
                let epoch_map = &epoch_map;
                scope.spawn(move || client_loop(id, seed, deadline, engine, variants, epoch_map))
            })
            .collect();
        for handle in clients {
            let out = handle.join().map_err(|_| "client thread panicked".to_string())??;
            report.responses += out.responses;
            report.validated += out.validated;
            report.overloads += out.overloads;
            for e in out.epochs {
                if !epochs.contains(&e) {
                    epochs.push(e);
                }
            }
            deferred.extend(out.deferred);
        }
        report.swaps = swapper.join().map_err(|_| "swapper thread panicked".to_string())??;
        Ok(())
    });
    outcome?;

    // Shutdown-drain finale: accept a last burst, then shut down with the
    // tickets still in flight. Every one of them must still resolve.
    let mut rng = scenario::rng_for(seed ^ 0xD9A1);
    let mut last_tickets = Vec::new();
    for _ in 0..16 {
        let probe = scenario::probes(&mut rng, engine.n_features(), 1, true).pop().expect("probe");
        match engine.submit(probe.clone()) {
            Ok(ticket) => last_tickets.push((probe, ticket)),
            Err(DrcshapError::Overloaded { .. }) => report.overloads += 1,
            Err(e) => return Err(format!("drain burst submit error: {e}")),
        }
    }
    engine.shutdown();
    let map = epoch_map.into_inner().expect("epoch map poisoned");
    for (probe, ticket) in last_tickets {
        let response =
            ticket.wait().map_err(|e| format!("response dropped during shutdown drain: {e}"))?;
        report.responses += 1;
        if !epochs.contains(&response.epoch) {
            epochs.push(response.epoch);
        }
        deferred.push((probe, response));
    }
    // Every epoch is in the map now; deferred responses must all validate.
    for (probe, response) in &deferred {
        if !check_response(&variants, &map, probe, response)? {
            return Err(format!("response claims unknown epoch {}", response.epoch));
        }
        report.validated += 1;
    }
    report.epochs_observed = epochs.len() as u64;
    if config.duration >= Duration::from_secs(1) && report.epochs_observed < 2 {
        return Err(format!(
            "soak of {:?} observed only {} epoch(s) across {} swaps — swaps are not reaching \
             the scoring path",
            config.duration, report.epochs_observed, report.swaps
        ));
    }
    if report.validated != report.responses {
        return Err(format!(
            "{} responses but only {} validated — harness accounting bug",
            report.responses, report.validated
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_holds_invariants() {
        let config = ChaosConfig { duration: Duration::from_millis(400), clients: 2, variants: 3 };
        let report = chaos_soak(11, &config).expect("soak must hold its invariants");
        assert!(report.responses > 0);
        assert_eq!(report.validated, report.responses);
    }

    #[test]
    fn overload_bursts_are_shed_not_dropped() {
        let config = ChaosConfig { duration: Duration::from_millis(600), clients: 3, variants: 2 };
        let report = chaos_soak(5, &config).expect("soak must hold its invariants");
        // The 15% oversized bursts against a 64-deep queue must trip the
        // typed overload path at least once in 600ms of pressure.
        assert!(report.overloads > 0, "no overload shed in {report}");
    }
}

//! # drcshap-testkit
//!
//! The workspace's deterministic conformance engine: seeded scenario
//! generators, a registry of differential oracles and metamorphic
//! properties, and a chaos/soak harness for the serving engine — all
//! replayable from a single `u64` seed.
//!
//! Three layers:
//!
//! - [`scenario`]: every scenario (forest, dataset, probe set, metric
//!   sample, chaos workload) is a pure function of `(seed, SizeLevel)`.
//! - [`oracle`]: each check pits the production code against an
//!   independent implementation (`shap::exact`, `O(n²)` reference
//!   metrics, the uncompiled forest) or a metamorphic invariant
//!   (additivity, dummy-feature nullity, monotone-transform invariance).
//! - [`chaos`]: a multi-threaded soak of the serve engine under hot
//!   swaps, overload bursts, and a shutdown drain, with bitwise
//!   epoch-consistency validation of every response. [`chaos::gateway`]
//!   lifts the same invariants to the multi-shard gateway: killed and
//!   slowed shards, quota overload, and a staged rollout mid-load —
//!   published through (and pulled back out of) the crash-safe model
//!   registry. [`crash`] soaks the registry itself: seeded kills at
//!   every publish syscall boundary, each followed by recovery and
//!   verification. [`xsat`] adds consistency oracles for the SAT-based
//!   abductive explainer: brute-force sufficiency/minimality checks and
//!   a SHAP-vs-abductive cross-view, opted in with
//!   `testkit run --xsat-checks`.
//!
//! The CLI front end is `drcshap testkit run | replay | list`; a failing
//! check prints a `drcshap testkit replay --check NAME --seed S --level L`
//! line that regenerates the minimized failing scenario exactly.
//!
//! The `inject-shap-fault` cargo feature flips one TreeSHAP contribution
//! sign inside the oracle path so CI can drill that the conformance run
//! actually catches a drifted explainer. Never enable it in a real build.

pub mod analytics;
pub mod chaos;
pub mod crash;
pub mod oracle;
pub mod reference;
pub mod scenario;
pub mod xsat;

pub use chaos::gateway::{gateway_chaos_soak, GatewayChaosConfig, GatewayChaosReport};
pub use chaos::{chaos_soak, ChaosConfig, ChaosReport};
pub use crash::{crash_soak, CrashSoakConfig, CrashSoakReport};
pub use oracle::{registry, Check, Failure, KERNEL_PIN_ENV, NAN_POLICY_PIN_ENV};
pub use scenario::SizeLevel;
pub use xsat::checks as xsat_checks;

/// Outcome of a conformance sweep: per-check pass counts plus every
/// (minimized) failure.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Seeds that passed, per check, in registry order.
    pub passes: Vec<(&'static str, u64)>,
    /// Minimized failures, in discovery order.
    pub failures: Vec<Failure>,
}

impl RunReport {
    /// True when every check passed every seed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs every registered check over `seeds` consecutive seeds starting at
/// `base_seed`, minimizing each failure to the smallest [`SizeLevel`]
/// that still reproduces it.
pub fn run_all(base_seed: u64, seeds: u64) -> RunReport {
    run_checks(registry(), base_seed, seeds)
}

/// [`run_all`] over an explicit check list — how the CLI appends the
/// [`xsat`] consistency oracles with `testkit run --xsat-checks`.
pub fn run_checks(checks: Vec<Check>, base_seed: u64, seeds: u64) -> RunReport {
    let mut report = RunReport::default();
    for check in checks {
        let mut passed = 0u64;
        for offset in 0..seeds {
            let seed = base_seed.wrapping_add(offset);
            match (check.run)(seed, SizeLevel::DEFAULT) {
                Ok(()) => passed += 1,
                Err(detail) => {
                    report.failures.push(oracle::minimize(
                        &check,
                        seed,
                        SizeLevel::DEFAULT,
                        detail,
                    ));
                }
            }
        }
        report.passes.push((check.name, passed));
    }
    report
}

/// Replays one named check at `(seed, level)`, exactly as a failure
/// report prescribes. Searches the default registry and the [`xsat`]
/// checks, so `--xsat-checks` failures replay by name like any other.
///
/// # Errors
///
/// `Err` with the check's divergence detail when it fails, or a
/// description of the unknown check name.
pub fn replay(check_name: &str, seed: u64, level: SizeLevel) -> Result<(), String> {
    let mut registry = registry();
    registry.extend(xsat::checks());
    let check = registry
        .iter()
        .find(|c| c.name == check_name)
        .ok_or_else(|| format!("unknown check '{check_name}' — see `drcshap testkit list`"))?;
    (check.run)(seed, level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_rejects_unknown_checks() {
        let err = replay("no-such-check", 0, SizeLevel(0)).unwrap_err();
        assert!(err.contains("unknown check"));
    }

    #[test]
    fn replay_reaches_the_xsat_checks() {
        replay("xsat-abductive-sound-minimal", 0, SizeLevel(0)).expect("xsat check replayable");
    }

    #[cfg(not(feature = "inject-shap-fault"))]
    #[test]
    fn run_all_passes_a_small_sweep() {
        let report = run_all(100, 2);
        assert!(report.ok(), "failures: {:?}", report.failures);
        assert_eq!(report.passes.len(), registry().len());
    }
}

//! Simplified DEF (Design Exchange Format) writer/reader for placed
//! designs: `DIEAREA`, `COMPONENTS` (with placement), `PINS`-on-macros and
//! `NETS`. The dialect is the subset needed to hand a placed design to (or
//! read one from) external tooling — the artifact the paper's flow exchanges
//! between Eh?Placer and Olympus-SoC ("produces a placed .def file").
//!
//! The writer is lossy by design (library cell *names* are synthesized from
//! dimensions); the reader accepts exactly what the writer emits, and the
//! pair round-trips every placement-relevant quantity (see tests).

use std::fmt::Write as _;

use drcshap_geom::{Point, Rect};

use crate::design::Design;
use crate::ids::NetId;
use crate::model::{Cell, Macro, Net, NetKind, Pin, PinOwner};
use crate::suite::DesignSpec;

/// Serializes a placed design to the simplified DEF dialect.
///
/// # Panics
///
/// Panics if any cell is unplaced.
pub fn write_def(design: &Design) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", design.spec.name);
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let die = design.die;
    let _ = writeln!(out, "DIEAREA ( {} {} ) ( {} {} ) ;", die.lo.x, die.lo.y, die.hi.x, die.hi.y);

    // Macros as fixed components.
    let _ =
        writeln!(out, "COMPONENTS {} ;", design.netlist.num_cells() + design.netlist.num_macros());
    for (id, m) in design.netlist.macros() {
        let _ = writeln!(
            out,
            "- macro_{} BLOCK_{}x{} + FIXED ( {} {} ) N ;",
            id.index(),
            m.rect.width(),
            m.rect.height(),
            m.rect.lo.x,
            m.rect.lo.y
        );
    }
    for (id, cell) in design.netlist.cells() {
        let origin =
            design.placement.position(id).expect("write_def requires a fully placed design");
        let mh = if cell.multi_height { "MH" } else { "SH" };
        let _ = writeln!(
            out,
            "- cell_{} {}_{}x{} + PLACED ( {} {} ) N ;",
            id.index(),
            mh,
            cell.width,
            cell.height,
            origin.x,
            origin.y
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    // Nets, with pins given as owner + offset/position.
    let _ = writeln!(out, "NETS {} ;", design.netlist.num_nets());
    for (nid, net) in design.netlist.nets() {
        let kind = match net.kind {
            NetKind::Signal => "SIGNAL",
            NetKind::Clock => "CLOCK",
        };
        let ndr = net
            .ndr
            .map(|n| {
                let r = design.netlist.ndr(n);
                format!(" + NONDEFAULTRULE W{}S{}", r.width_mult, r.spacing_mult)
            })
            .unwrap_or_default();
        let _ = write!(out, "- net_{} + USE {kind}{ndr}", nid.index());
        for &p in &net.pins {
            match design.netlist.pin(p).owner {
                PinOwner::Cell { cell, offset } => {
                    let _ = write!(out, " ( cell_{} P_{}_{} )", cell.index(), offset.x, offset.y);
                }
                PinOwner::Macro { id, position } => {
                    let _ =
                        write!(out, " ( macro_{} A_{}_{} )", id.index(), position.x, position.y);
                }
            }
        }
        let _ = writeln!(out, " ;");
    }
    let _ = writeln!(out, "END NETS");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// Errors from [`read_def`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// Line number (1-based) of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDefError {}

/// Parses the simplified DEF dialect back into a [`Design`].
///
/// The returned design reuses `spec` for suite metadata (DEF carries no
/// group/scale information); its die is taken from the DEF `DIEAREA`.
///
/// # Errors
///
/// Returns [`ParseDefError`] on any malformed line, unknown component
/// reference, or missing section.
pub fn read_def(text: &str, spec: DesignSpec) -> Result<Design, ParseDefError> {
    let err = |line: usize, message: &str| ParseDefError { line, message: message.to_owned() };

    let mut design = Design::new(spec);
    let mut cell_ids: std::collections::HashMap<String, crate::CellId> = Default::default();
    let mut macro_ids: std::collections::HashMap<String, crate::MacroId> = Default::default();
    let mut ndr_ids: std::collections::HashMap<String, crate::NdrId> = Default::default();
    let mut saw_components = false;
    let mut saw_nets = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.starts_with("DIEAREA") {
            let nums: Vec<i64> = line
                .split(|c: char| !c.is_ascii_digit() && c != '-')
                .filter(|t| !t.is_empty())
                .filter_map(|t| t.parse().ok())
                .collect();
            if nums.len() != 4 {
                return Err(err(n, "DIEAREA needs four coordinates"));
            }
            design.die = Rect::new(nums[0], nums[1], nums[2], nums[3]);
        } else if line.starts_with("COMPONENTS") {
            saw_components = true;
        } else if line.starts_with("NETS") {
            saw_nets = true;
        } else if line.starts_with("- macro_") {
            let toks: Vec<&str> = line.split_whitespace().collect();
            // - macro_K BLOCK_WxH + FIXED ( x y ) N ;
            let name = *toks.get(1).ok_or_else(|| err(n, "truncated macro statement"))?;
            let master = *toks.get(2).ok_or_else(|| err(n, "truncated macro statement"))?;
            let dims = master
                .strip_prefix("BLOCK_")
                .ok_or_else(|| err(n, "macro without BLOCK_ master"))?;
            let (w, h) = parse_dims(dims).ok_or_else(|| err(n, "bad macro dims"))?;
            let (x, y) = parse_point(&toks, 5).ok_or_else(|| err(n, "bad macro origin"))?;
            let id = design
                .netlist
                .add_macro(Macro { rect: Rect::new(x, y, x + w, y + h), pins: Vec::new() });
            macro_ids.insert(name.to_owned(), id);
        } else if line.starts_with("- cell_") {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let name = *toks.get(1).ok_or_else(|| err(n, "truncated cell statement"))?;
            let master = *toks.get(2).ok_or_else(|| err(n, "truncated cell statement"))?;
            let (multi, dims) = if let Some(d) = master.strip_prefix("MH_") {
                (true, d)
            } else if let Some(d) = master.strip_prefix("SH_") {
                (false, d)
            } else {
                return Err(err(n, "unknown cell master"));
            };
            let (w, h) = parse_dims(dims).ok_or_else(|| err(n, "bad cell dims"))?;
            let (x, y) = parse_point(&toks, 5).ok_or_else(|| err(n, "bad cell origin"))?;
            let id = design.netlist.add_cell(Cell {
                width: w,
                height: h,
                multi_height: multi,
                pins: Vec::new(),
            });
            design.placement.resize(design.netlist.num_cells());
            design.placement.place(id, Point::new(x, y));
            cell_ids.insert(name.to_owned(), id);
        } else if line.starts_with("- net_") {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let kind = if toks.contains(&"CLOCK") { NetKind::Clock } else { NetKind::Signal };
            let ndr = match toks.iter().position(|&t| t == "NONDEFAULTRULE") {
                None => None,
                Some(i) => {
                    let rule = *toks
                        .get(i + 1)
                        .ok_or_else(|| err(n, "NONDEFAULTRULE without a rule name"))?;
                    let (w, s) =
                        parse_ndr(rule).ok_or_else(|| err(n, "bad NONDEFAULTRULE spec"))?;
                    Some(*ndr_ids.entry(rule.to_owned()).or_insert_with(|| {
                        design.netlist.add_ndr(crate::Ndr { width_mult: w, spacing_mult: s })
                    }))
                }
            };
            // Pins: ( owner P_x_y ) groups.
            let mut pins = Vec::new();
            let mut i = 0usize;
            while i < toks.len() {
                if toks[i] == "(" {
                    let owner = toks.get(i + 1).ok_or_else(|| err(n, "truncated pin"))?;
                    let pin_tok = toks.get(i + 2).ok_or_else(|| err(n, "truncated pin"))?;
                    let (px, py) =
                        parse_pin_offset(pin_tok).ok_or_else(|| err(n, "bad pin token"))?;
                    let owner = if let Some(&cell) = cell_ids.get(*owner) {
                        PinOwner::Cell { cell, offset: Point::new(px, py) }
                    } else if let Some(&mid) = macro_ids.get(*owner) {
                        PinOwner::Macro { id: mid, position: Point::new(px, py) }
                    } else {
                        return Err(err(n, "pin references unknown component"));
                    };
                    pins.push(design.netlist.add_pin(Pin { owner, net: NetId::from_index(0) }));
                    i += 4;
                } else {
                    i += 1;
                }
            }
            if pins.len() < 2 {
                return Err(err(n, "net with fewer than two pins"));
            }
            design.netlist.add_net(Net { pins, kind, ndr });
        } else if line.starts_with("- ") {
            return Err(err(n, "unknown DEF statement"));
        } else if !line.is_empty()
            && !line.starts_with("VERSION")
            && !line.starts_with("DESIGN")
            && !line.starts_with("UNITS")
            && !line.starts_with("END")
        {
            return Err(err(n, "unknown DEF section"));
        }
    }
    if !saw_components || !saw_nets {
        return Err(err(0, "missing COMPONENTS or NETS section"));
    }
    Ok(design)
}

fn parse_dims(s: &str) -> Option<(i64, i64)> {
    let (w, h) = s.split_once('x')?;
    Some((w.parse().ok()?, h.parse().ok()?))
}

fn parse_point(toks: &[&str], open_paren: usize) -> Option<(i64, i64)> {
    if toks.get(open_paren)? != &"(" {
        return None;
    }
    Some((toks.get(open_paren + 1)?.parse().ok()?, toks.get(open_paren + 2)?.parse().ok()?))
}

fn parse_pin_offset(tok: &str) -> Option<(i64, i64)> {
    let rest = tok.strip_prefix("P_").or_else(|| tok.strip_prefix("A_"))?;
    let (x, y) = rest.split_once('_')?;
    Some((x.parse().ok()?, y.parse().ok()?))
}

fn parse_ndr(rule: &str) -> Option<(f64, f64)> {
    let rest = rule.strip_prefix('W')?;
    let (w, s) = rest.split_once('S')?;
    Some((w.parse().ok()?, s.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suite, synth};
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn placed_design() -> Design {
        let spec = suite::spec("fft_a").unwrap().scaled(0.25);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        synth::generate_cells(&mut d, &mut rng);
        // Uniform placement (the def module must not depend on the placer).
        let die = d.die;
        let ids: Vec<_> = d.netlist.cells().map(|(id, _)| id).collect();
        for id in ids {
            let c = d.netlist.cell(id);
            let x = rng.gen_range(die.lo.x..die.hi.x - c.width);
            let y = rng.gen_range(die.lo.y..die.hi.y - c.height);
            d.placement.place(id, Point::new(x, y));
        }
        synth::generate_nets(&mut d, &mut rng);
        d
    }

    #[test]
    fn def_round_trips_everything_placement_relevant() {
        let original = placed_design();
        let text = write_def(&original);
        let parsed = read_def(&text, original.spec.clone()).expect("parse back");

        assert_eq!(parsed.die, original.die);
        assert_eq!(parsed.netlist.num_cells(), original.netlist.num_cells());
        assert_eq!(parsed.netlist.num_macros(), original.netlist.num_macros());
        assert_eq!(parsed.netlist.num_nets(), original.netlist.num_nets());
        assert_eq!(parsed.netlist.num_pins(), original.netlist.num_pins());
        // Every pin lands at the same absolute position.
        for (pid, _) in original.netlist.pins() {
            assert_eq!(parsed.pin_position(pid), original.pin_position(pid));
        }
        // Net kinds and NDR demands survive.
        for (nid, net) in original.netlist.nets() {
            let pnet = parsed.netlist.net(nid);
            assert_eq!(pnet.kind, net.kind);
            let demand = |d: &Design, n: &Net| {
                n.ndr.map(|id| d.netlist.ndr(id).track_demand()).unwrap_or(1.0)
            };
            assert_eq!(demand(&parsed, pnet), demand(&original, net));
        }
    }

    #[test]
    fn def_text_looks_like_def() {
        let d = placed_design();
        let text = write_def(&d);
        assert!(text.starts_with("VERSION 5.8 ;"));
        assert!(text.contains("DIEAREA"));
        assert!(text.contains("END COMPONENTS"));
        assert!(text.contains("END NETS"));
        assert!(text.contains("+ FIXED")); // macros
        assert!(text.contains("+ PLACED"));
    }

    #[test]
    fn truncated_def_is_rejected() {
        let d = placed_design();
        let text = write_def(&d);
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        let e = read_def(&truncated, d.spec.clone()).unwrap_err();
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn unknown_component_reference_is_an_error() {
        let d = placed_design();
        let spec = d.spec.clone();
        let text = "COMPONENTS 0 ;\nEND COMPONENTS\nNETS 1 ;\n- net_0 + USE SIGNAL ( cell_99 P_0_0 ) ( cell_98 P_0_0 ) ;\nEND NETS\n";
        let e = read_def(text, spec).unwrap_err();
        assert!(e.message.contains("unknown component"), "{e}");
        assert!(e.line > 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseDefError { line: 7, message: "bad cell dims".to_owned() };
        assert_eq!(e.to_string(), "DEF parse error at line 7: bad cell dims");
    }

    /// Wraps one body line in the minimal valid scaffolding.
    fn with_scaffold(body: &str) -> String {
        format!("COMPONENTS 1 ;\n{body}\nEND COMPONENTS\nNETS 0 ;\nEND NETS\n")
    }

    #[test]
    fn unknown_section_header_is_an_error() {
        let spec = suite::spec("fft_a").unwrap();
        let text = "COMPONENTS 0 ;\nEND COMPONENTS\nSPECIALNETS 2 ;\nNETS 0 ;\nEND NETS\n";
        let e = read_def(text, spec).unwrap_err();
        assert!(e.message.contains("unknown DEF section"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_dash_statement_is_an_error() {
        let spec = suite::spec("fft_a").unwrap();
        let e = read_def(&with_scaffold("- via_0 VIARULE ;"), spec).unwrap_err();
        assert!(e.message.contains("unknown DEF statement"), "{e}");
    }

    #[test]
    fn truncated_statements_error_instead_of_panicking() {
        let spec = suite::spec("fft_a").unwrap();
        for body in ["- macro_0", "- cell_0", "- macro_0 BLOCK_10x10", "- cell_0 SH_4x8"] {
            let e = read_def(&with_scaffold(body), spec.clone()).unwrap_err();
            assert!(e.line > 0, "{body:?} must fail with a located error, got {e}");
        }
    }

    #[test]
    fn short_or_unknown_cell_master_is_an_error() {
        let spec = suite::spec("fft_a").unwrap();
        for body in ["- cell_0 X + PLACED ( 0 0 ) N ;", "- cell_0 ZZ_4x8 + PLACED ( 0 0 ) N ;"] {
            let e = read_def(&with_scaffold(body), spec.clone()).unwrap_err();
            assert!(e.message.contains("unknown cell master"), "{e}");
        }
    }

    #[test]
    fn dangling_ndr_is_an_error() {
        let d = placed_design();
        let spec = d.spec.clone();
        let scaffold = "COMPONENTS 2 ;\n- cell_0 SH_4x8 + PLACED ( 0 0 ) N ;\n- cell_1 SH_4x8 + PLACED ( 9 9 ) N ;\nEND COMPONENTS\nNETS 1 ;\n";
        for (net, expect) in [
            ("- net_0 + USE SIGNAL + NONDEFAULTRULE", "without a rule name"),
            (
                "- net_0 + USE SIGNAL + NONDEFAULTRULE bogus ( cell_0 P_0_0 ) ( cell_1 P_0_0 ) ;",
                "bad NONDEFAULTRULE",
            ),
        ] {
            let text = format!("{scaffold}{net}\nEND NETS\n");
            let e = read_def(&text, spec.clone()).unwrap_err();
            assert!(e.message.contains(expect), "{e}");
        }
    }
}

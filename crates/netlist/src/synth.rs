//! Synthetic design generation: cells/macros ([`generate_cells`]) and
//! locality-driven net synthesis ([`generate_nets`]).
//!
//! Net synthesis runs *after* placement so that net locality can be expressed
//! physically: endpoints are sampled with a distance-decaying kernel around a
//! seed cell, reproducing the short-net-dominated wirelength distributions of
//! real netlists (Rent's rule territory). This ordering is a generation
//! device only — the resulting `Design` is indistinguishable, for the
//! downstream pipeline, from a conventionally placed netlist.

use drcshap_geom::{GcellId, Point, Rect};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::design::Design;
use crate::ids::{CellId, NetId};
use crate::model::{Cell, Macro, Ndr, Net, NetKind, Pin, PinOwner};
use crate::suite::{ROW_HEIGHT_DBU, SITE_WIDTH_DBU};

/// Fraction of cells that span two placement rows.
const MULTI_HEIGHT_FRACTION: f64 = 0.03;
/// Nets per standard cell (typical SoC netlists sit near 1.0–1.2).
const NETS_PER_CELL: f64 = 1.1;
/// Fraction of cells that are clock sinks.
const CLOCK_SINK_FRACTION: f64 = 0.02;
/// Fraction of signal nets routed with a non-default rule.
const NDR_NET_FRACTION: f64 = 0.02;

/// Generates standard cells, macros and routing blockages for `design`.
///
/// Cell widths follow a discrete library-like distribution (2–10 sites);
/// macros are mutually non-overlapping blocks sized relative to the die; one
/// or two routing-blockage strips may be added. Idempotent only on an empty
/// design.
///
/// # Panics
///
/// Panics if the design already contains cells.
pub fn generate_cells<R: Rng>(design: &mut Design, rng: &mut R) {
    assert_eq!(design.netlist.num_cells(), 0, "generate_cells on non-empty design");

    place_macros(design, rng);
    add_routing_blockages(design, rng);

    let n = design.spec.num_cells();
    for _ in 0..n {
        let sites = *[2i64, 3, 4, 5, 6, 8, 10]
            .choose_weighted(rng, |&s| match s {
                2 => 20.0,
                3 => 25.0,
                4 => 20.0,
                5 => 12.0,
                6 => 12.0,
                8 => 7.0,
                _ => 4.0,
            })
            .expect("non-empty weights");
        let multi = rng.gen_bool(MULTI_HEIGHT_FRACTION);
        design.netlist.add_cell(Cell {
            width: sites * SITE_WIDTH_DBU,
            height: if multi { 2 * ROW_HEIGHT_DBU } else { ROW_HEIGHT_DBU },
            multi_height: multi,
            pins: Vec::new(),
        });
    }
    design.placement.resize(design.netlist.num_cells());
}

fn place_macros<R: Rng>(design: &mut Design, rng: &mut R) {
    let die = design.die;
    let n = design.spec.num_macros();
    let mut placed: Vec<Rect> = Vec::with_capacity(n);
    let min_side = die.width().min(die.height());
    for _ in 0..n {
        // Rejection-sample a non-overlapping block, shrinking on failure.
        let mut frac = 0.28;
        let rect = loop {
            let w = (min_side as f64 * frac * rng.gen_range(0.6..1.0)) as i64;
            let h = (min_side as f64 * frac * rng.gen_range(0.6..1.0)) as i64;
            let margin = min_side / 20;
            if die.width() - w - 2 * margin <= 0 || die.height() - h - 2 * margin <= 0 {
                frac *= 0.8;
                continue;
            }
            let x = rng.gen_range(margin..die.width() - w - margin);
            let y = rng.gen_range(margin..die.height() - h - margin);
            let candidate = Rect::new(x, y, x + w, y + h);
            let keepout = candidate.inflate(min_side / 50);
            if placed.iter().all(|p| !p.overlaps(&keepout)) {
                break candidate;
            }
            frac *= 0.9;
            if frac < 0.02 {
                break candidate; // give up on separation for pathological dice
            }
        };
        placed.push(rect);
        design.netlist.add_macro(Macro { rect, pins: Vec::new() });
    }
}

fn add_routing_blockages<R: Rng>(design: &mut Design, rng: &mut R) {
    let die = design.die;
    let count = rng.gen_range(0..=2usize);
    for _ in 0..count {
        let w = die.width() / rng.gen_range(8..16);
        let h = die.height() / rng.gen_range(20..40);
        let x = rng.gen_range(0..die.width() - w);
        let y = rng.gen_range(0..die.height() - h);
        let strip = Rect::new(die.lo.x + x, die.lo.y + y, die.lo.x + x + w, die.lo.y + y + h);
        // Keep blockages clear of macros so blockage areas stay additive.
        if design.netlist.macros().all(|(_, m)| !m.rect.overlaps(&strip)) {
            design.routing_blockages.push(strip);
        }
    }
}

/// Generates nets for a placed `design`: locality-driven signal nets,
/// regional clock nets, NDR assignment and macro boundary-pin nets.
///
/// # Panics
///
/// Panics if any cell is unplaced, or nets were already generated.
pub fn generate_nets<R: Rng>(design: &mut Design, rng: &mut R) {
    assert_eq!(design.netlist.num_nets(), 0, "generate_nets on routed design");
    assert_eq!(
        design.placement.num_placed(),
        design.netlist.num_cells(),
        "all cells must be placed before net synthesis"
    );

    let buckets = bucket_cells(design);
    let stress = design.spec.stress();
    let num_cells = design.netlist.num_cells();
    let num_signal = ((num_cells as f64) * NETS_PER_CELL) as usize;

    // NDR classes as in the ISPD-2015 benchmarks: 2x and 3x width/spacing.
    let ndr2 = design.netlist.add_ndr(Ndr { width_mult: 2.0, spacing_mult: 2.0 });
    let ndr3 = design.netlist.add_ndr(Ndr { width_mult: 3.0, spacing_mult: 3.0 });

    for _ in 0..num_signal {
        let seed = CellId::from_index(rng.gen_range(0..num_cells));
        let fanout = sample_fanout(rng);
        let members = sample_local_cells(design, &buckets, seed, fanout, stress, rng);
        if members.len() < 2 {
            continue;
        }
        let ndr = if rng.gen_bool(NDR_NET_FRACTION) {
            Some(if rng.gen_bool(0.7) { ndr2 } else { ndr3 })
        } else {
            None
        };
        add_cell_net(design, &members, NetKind::Signal, ndr, rng);
    }

    generate_clock_nets(design, &buckets, rng);
    generate_macro_nets(design, &buckets, rng);
}

/// Spatial index: cell ids bucketed by the g-cell containing their center.
fn bucket_cells(design: &Design) -> Vec<Vec<CellId>> {
    let mut buckets = vec![Vec::new(); design.grid.num_cells()];
    for (id, _) in design.netlist.cells() {
        let outline = design.cell_outline(id).expect("cells are placed before bucketing");
        if let Some(g) = design.grid.cell_containing(outline.center()) {
            buckets[design.grid.index_of(g)].push(id);
        }
    }
    buckets
}

fn sample_fanout<R: Rng>(rng: &mut R) -> usize {
    *[2usize, 3, 4, 5, 6, 8, 12]
        .choose_weighted(rng, |&k| match k {
            2 => 55.0,
            3 => 20.0,
            4 => 10.0,
            5 => 6.0,
            6 => 4.0,
            8 => 3.0,
            _ => 2.0,
        })
        .expect("non-empty weights")
}

/// Samples up to `fanout` distinct cells around `seed` with a
/// distance-decaying kernel. Higher `stress` shortens nets (denser local
/// congestion); the tail still produces a few long nets.
fn sample_local_cells<R: Rng>(
    design: &Design,
    buckets: &[Vec<CellId>],
    seed: CellId,
    fanout: usize,
    stress: f64,
    rng: &mut R,
) -> Vec<CellId> {
    let grid = &design.grid;
    let (nx, ny) = grid.dims();
    let seed_outline = design.cell_outline(seed).expect("seed placed");
    let Some(seed_g) = grid.cell_containing(seed_outline.center()) else {
        return Vec::new();
    };
    let mean_radius = (3.0 - 1.5 * stress).max(1.0);

    let mut members = vec![seed];
    let mut attempts = 0;
    while members.len() < fanout && attempts < fanout * 12 {
        attempts += 1;
        // Geometric-ish radius with a heavy-ish tail for occasional long nets.
        let r = if rng.gen_bool(0.05) {
            rng.gen_range(0..(nx.max(ny) / 2 + 1) as i32)
        } else {
            let mut r = 0i32;
            while rng.gen_bool(1.0 - 1.0 / mean_radius) && r < 12 {
                r += 1;
            }
            r
        };
        let dx = rng.gen_range(-r..=r);
        let dy = rng.gen_range(-r..=r);
        let Some(g) = grid.neighbor(seed_g, dx, dy) else { continue };
        let bucket = &buckets[grid.index_of(g)];
        if bucket.is_empty() {
            continue;
        }
        let cand = bucket[rng.gen_range(0..bucket.len())];
        if !members.contains(&cand) {
            members.push(cand);
        }
    }
    members
}

/// Adds a net whose endpoints are fresh pins on `members`.
fn add_cell_net<R: Rng>(
    design: &mut Design,
    members: &[CellId],
    kind: NetKind,
    ndr: Option<crate::NdrId>,
    rng: &mut R,
) -> NetId {
    let mut pin_ids = Vec::with_capacity(members.len());
    for &cell in members {
        let c = design.netlist.cell(cell);
        let (w, h) = (c.width, c.height);
        let offset = Point::new(
            rng.gen_range(0..w.max(1)),
            rng.gen_range(h / 4..(3 * h / 4).max(h / 4 + 1)),
        );
        let pin = design.netlist.add_pin(Pin {
            owner: PinOwner::Cell { cell, offset },
            // Rewritten by add_net below.
            net: NetId::from_index(0),
        });
        pin_ids.push(pin);
    }
    design.netlist.add_net(Net { pins: pin_ids, kind, ndr })
}

/// Regional clock nets: clock sinks are grouped by coarse die quadrant chunks
/// so each clock net spans a region (long, constrained routes) without
/// producing one unroutable giant net.
fn generate_clock_nets<R: Rng>(design: &mut Design, buckets: &[Vec<CellId>], rng: &mut R) {
    let num_cells = design.netlist.num_cells();
    let num_sinks = ((num_cells as f64) * CLOCK_SINK_FRACTION) as usize;
    if num_sinks < 2 {
        return;
    }
    let (nx, ny) = design.grid.dims();
    let regions_per_axis = 4u32;
    let mut regional: Vec<Vec<CellId>> =
        vec![Vec::new(); (regions_per_axis * regions_per_axis) as usize];
    let mut chosen = 0;
    let mut attempts = 0;
    while chosen < num_sinks && attempts < num_sinks * 10 {
        attempts += 1;
        let g = GcellId::new(rng.gen_range(0..nx), rng.gen_range(0..ny));
        let bucket = &buckets[design.grid.index_of(g)];
        if bucket.is_empty() {
            continue;
        }
        let cell = bucket[rng.gen_range(0..bucket.len())];
        let rx = (g.x * regions_per_axis / nx).min(regions_per_axis - 1);
        let ry = (g.y * regions_per_axis / ny).min(regions_per_axis - 1);
        regional[(ry * regions_per_axis + rx) as usize].push(cell);
        chosen += 1;
    }
    for members in regional {
        if members.len() >= 2 {
            add_cell_net(design, &members, NetKind::Clock, None, rng);
        }
    }
}

/// Macro boundary pins, each connected to a few nearby standard cells.
fn generate_macro_nets<R: Rng>(design: &mut Design, buckets: &[Vec<CellId>], rng: &mut R) {
    let macro_ids: Vec<_> = design.netlist.macros().map(|(id, _)| id).collect();
    for mid in macro_ids {
        let rect = design.netlist.macro_block(mid).rect;
        let num_pins = rng.gen_range(8..=24usize);
        for _ in 0..num_pins {
            let position = random_boundary_point(&rect, rng);
            let Some(g) = design.grid.cell_containing(position).or_else(|| {
                design.grid.cell_containing(Point::new(
                    position.x.min(design.die.hi.x - 1),
                    position.y.min(design.die.hi.y - 1),
                ))
            }) else {
                continue;
            };
            // Find nearby standard cells to connect to.
            let mut members = Vec::new();
            for _ in 0..20 {
                let dx = rng.gen_range(-3..=3);
                let dy = rng.gen_range(-3..=3);
                if let Some(ng) = design.grid.neighbor(g, dx, dy) {
                    let bucket = &buckets[design.grid.index_of(ng)];
                    if !bucket.is_empty() {
                        let cand = bucket[rng.gen_range(0..bucket.len())];
                        if !members.contains(&cand) {
                            members.push(cand);
                        }
                    }
                }
                if members.len() >= rng.gen_range(1..=3) {
                    break;
                }
            }
            if members.is_empty() {
                continue;
            }
            let macro_pin = design.netlist.add_pin(Pin {
                owner: PinOwner::Macro { id: mid, position },
                net: NetId::from_index(0),
            });
            let mut pin_ids = vec![macro_pin];
            for &cell in &members {
                let c = design.netlist.cell(cell);
                let offset = Point::new(rng.gen_range(0..c.width.max(1)), c.height / 2);
                pin_ids.push(design.netlist.add_pin(Pin {
                    owner: PinOwner::Cell { cell, offset },
                    net: NetId::from_index(0),
                }));
            }
            design.netlist.add_net(Net { pins: pin_ids, kind: NetKind::Signal, ndr: None });
        }
    }
}

fn random_boundary_point<R: Rng>(rect: &Rect, rng: &mut R) -> Point {
    match rng.gen_range(0..4) {
        0 => Point::new(rng.gen_range(rect.lo.x..rect.hi.x), rect.lo.y),
        1 => Point::new(rng.gen_range(rect.lo.x..rect.hi.x), rect.hi.y - 1),
        2 => Point::new(rect.lo.x, rng.gen_range(rect.lo.y..rect.hi.y)),
        _ => Point::new(rect.hi.x - 1, rng.gen_range(rect.lo.y..rect.hi.y)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_design() -> Design {
        let spec = suite::spec("fft_1").unwrap().scaled(0.35);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        generate_cells(&mut d, &mut rng);
        d
    }

    /// Naive uniform placement for testing net synthesis in isolation.
    fn place_uniform(d: &mut Design, rng: &mut ChaCha8Rng) {
        let die = d.die;
        let ids: Vec<_> = d.netlist.cells().map(|(id, _)| id).collect();
        for id in ids {
            let c = d.netlist.cell(id);
            let x = rng.gen_range(die.lo.x..die.hi.x - c.width);
            let y = rng.gen_range(die.lo.y..die.hi.y - c.height);
            d.placement.place(id, Point::new(x, y));
        }
    }

    #[test]
    fn generate_cells_respects_spec_counts() {
        let d = tiny_design();
        assert_eq!(d.netlist.num_cells(), d.spec.num_cells());
        assert_eq!(d.netlist.num_macros(), d.spec.num_macros());
        assert_eq!(d.placement.len(), d.netlist.num_cells());
    }

    #[test]
    fn macros_do_not_overlap_on_macro_heavy_design() {
        let spec = suite::spec("fft_a").unwrap().scaled(0.5);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        generate_cells(&mut d, &mut rng);
        let rects: Vec<_> = d.netlist.macros().map(|(_, m)| m.rect).collect();
        assert_eq!(rects.len(), 6);
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(!rects[i].overlaps(&rects[j]), "macros {i} and {j} overlap");
            }
        }
        for r in &rects {
            assert!(d.die.contains_rect(r));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = suite::spec("fft_1").unwrap().scaled(0.3);
        let gen = |seed: u64| {
            let mut d = Design::new(spec.clone());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            generate_cells(&mut d, &mut rng);
            d
        };
        let a = gen(1);
        let b = gen(1);
        let c = gen(2);
        assert_eq!(a.netlist, b.netlist);
        assert_ne!(a.netlist, c.netlist);
    }

    #[test]
    fn nets_have_at_least_two_pins_and_valid_owners() {
        let mut d = tiny_design();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        place_uniform(&mut d, &mut rng);
        generate_nets(&mut d, &mut rng);
        assert!(d.netlist.num_nets() > d.netlist.num_cells() / 2);
        for (_, net) in d.netlist.nets() {
            assert!(net.pins.len() >= 2);
        }
        for (pid, _) in d.netlist.pins() {
            assert!(d.pin_position(pid).is_some());
        }
    }

    #[test]
    fn pin_net_back_references_are_consistent() {
        let mut d = tiny_design();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        place_uniform(&mut d, &mut rng);
        generate_nets(&mut d, &mut rng);
        for (nid, net) in d.netlist.nets() {
            for &p in &net.pins {
                assert_eq!(d.netlist.pin(p).net, nid);
            }
        }
    }

    #[test]
    fn clock_and_ndr_nets_exist() {
        let spec = suite::spec("des_perf_1").unwrap().scaled(0.3);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        generate_cells(&mut d, &mut rng);
        place_uniform(&mut d, &mut rng);
        generate_nets(&mut d, &mut rng);
        let clocks = d.netlist.nets().filter(|(_, n)| n.kind == NetKind::Clock).count();
        let ndrs = d.netlist.nets().filter(|(_, n)| n.ndr.is_some()).count();
        assert!(clocks >= 1, "no clock nets");
        assert!(ndrs >= 1, "no NDR nets");
    }

    #[test]
    fn most_nets_are_short() {
        let mut d = tiny_design();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        place_uniform(&mut d, &mut rng);
        generate_nets(&mut d, &mut rng);
        // Median half-perimeter wirelength should be well below die perimeter.
        let mut hpwls: Vec<i64> = d
            .netlist
            .nets()
            .map(|(_, net)| {
                let pts: Vec<_> = net.pins.iter().map(|&p| d.pin_position(p).unwrap()).collect();
                let (mut xmin, mut xmax, mut ymin, mut ymax) =
                    (i64::MAX, i64::MIN, i64::MAX, i64::MIN);
                for p in pts {
                    xmin = xmin.min(p.x);
                    xmax = xmax.max(p.x);
                    ymin = ymin.min(p.y);
                    ymax = ymax.max(p.y);
                }
                (xmax - xmin) + (ymax - ymin)
            })
            .collect();
        hpwls.sort_unstable();
        let median = hpwls[hpwls.len() / 2];
        let die_half_perim = d.die.width() + d.die.height();
        assert!(
            median < die_half_perim / 4,
            "median HPWL {median} too long vs die {die_half_perim}"
        );
    }

    #[test]
    fn macro_pins_sit_on_boundaries() {
        let spec = suite::spec("fft_a").unwrap().scaled(0.4);
        let mut d = Design::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(d.spec.seed());
        generate_cells(&mut d, &mut rng);
        place_uniform(&mut d, &mut rng);
        generate_nets(&mut d, &mut rng);
        let mut macro_pins = 0;
        for (_, pin) in d.netlist.pins() {
            if let PinOwner::Macro { id, position } = pin.owner {
                macro_pins += 1;
                let r = d.netlist.macro_block(id).rect;
                let on_boundary = position.x == r.lo.x
                    || position.x == r.hi.x - 1
                    || position.y == r.lo.y
                    || position.y == r.hi.y - 1;
                assert!(on_boundary, "macro pin {position} not on boundary of {r}");
            }
        }
        assert!(macro_pins >= 8 * 6, "expected boundary pins on all 6 macros");
    }
}

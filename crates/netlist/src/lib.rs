#![warn(missing_docs)]
//! Design database for the `drcshap` workspace: standard cells, macros, pins,
//! nets (signal/clock, with optional non-default rules), plus the synthetic
//! 14-design suite that stands in for the ISPD-2015 contest benchmarks used by
//! the reproduced paper (see `DESIGN.md` §1 for the substitution rationale).
//!
//! The paper's data acquisition pipeline (Fig. 1) starts from a *placed*
//! design: this crate owns the data model up to and including placement
//! ([`Design`] couples a [`Netlist`] with a [`Placement`] and a g-cell grid),
//! while the placement *algorithm* lives in `drcshap-place`, global routing in
//! `drcshap-route`, and labels in `drcshap-drc`.
//!
//! # Example
//!
//! ```
//! use drcshap_netlist::suite;
//!
//! let specs = suite::all_specs();
//! assert_eq!(specs.len(), 14);
//! let fft2 = suite::spec("fft_2").unwrap();
//! assert_eq!(fft2.group, 1);
//! assert_eq!(fft2.grid_dims(), (57, 57)); // 3249 g-cells, as in Table I
//! ```

pub mod def;
mod design;
mod ids;
mod model;
pub mod suite;
pub mod synth;

pub use def::{read_def, write_def, ParseDefError};
pub use design::{Design, Placement};
pub use ids::{CellId, MacroId, NdrId, NetId, PinId};
pub use model::{Cell, Macro, Ndr, Net, NetKind, Netlist, Pin, PinOwner};
pub use suite::DesignSpec;

//! Typed identifiers into the arenas of a [`crate::Netlist`] (C-NEWTYPE).

use serde::{Deserialize, Serialize};

macro_rules! arena_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an identifier from a raw arena index.
            pub const fn from_index(index: usize) -> Self {
                Self(index as u32)
            }

            /// The raw arena index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }
    };
}

arena_id!(
    /// Identifier of a standard cell.
    CellId
);
arena_id!(
    /// Identifier of a macro block.
    MacroId
);
arena_id!(
    /// Identifier of a pin.
    PinId
);
arena_id!(
    /// Identifier of a net.
    NetId
);
arena_id!(
    /// Identifier of a non-default routing rule (NDR).
    NdrId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        assert_eq!(CellId::from_index(42).index(), 42);
        assert_eq!(NetId::from_index(0).index(), 0);
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(PinId::from_index(1) < PinId::from_index(2));
        assert_eq!(MacroId::from_index(3).to_string(), "MacroId#3");
    }
}

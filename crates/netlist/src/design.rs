//! A placed design: the netlist plus placement, die, g-cell grid and routing
//! blockages — everything the global router and feature extractor consume.

use drcshap_geom::{GcellGrid, Point, Rect};
use serde::{Deserialize, Serialize};

use crate::ids::{CellId, PinId};
use crate::model::{Netlist, PinOwner};
use crate::suite::DesignSpec;

/// Cell placement: one optional origin (lower-left corner) per cell.
///
/// # Example
///
/// ```
/// use drcshap_netlist::{Placement, CellId};
/// use drcshap_geom::Point;
///
/// let mut p = Placement::new(2);
/// p.place(CellId::from_index(0), Point::new(100, 200));
/// assert_eq!(p.position(CellId::from_index(0)), Some(Point::new(100, 200)));
/// assert_eq!(p.position(CellId::from_index(1)), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    positions: Vec<Option<Point>>,
}

impl Placement {
    /// Creates an all-unplaced placement for `num_cells` cells.
    pub fn new(num_cells: usize) -> Self {
        Self { positions: vec![None; num_cells] }
    }

    /// Records the origin of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn place(&mut self, cell: CellId, origin: Point) {
        self.positions[cell.index()] = Some(origin);
    }

    /// The placed origin of `cell`, `None` if unplaced.
    pub fn position(&self, cell: CellId) -> Option<Point> {
        self.positions.get(cell.index()).copied().flatten()
    }

    /// Number of cells this placement covers.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the placement covers zero cells.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of cells that have been placed.
    pub fn num_placed(&self) -> usize {
        self.positions.iter().filter(|p| p.is_some()).count()
    }

    /// Grows the placement to cover `num_cells` cells (new cells unplaced).
    pub fn resize(&mut self, num_cells: usize) {
        self.positions.resize(num_cells, None);
    }
}

/// A design being pushed through the paper's Fig. 1 pipeline: die, g-cell
/// grid, logical netlist, placement and routing blockages.
///
/// Construction order mirrors the flow: [`Design::new`] from a
/// [`DesignSpec`], then `drcshap_netlist::synth::generate_cells`, then
/// placement (`drcshap-place`), then `synth::generate_nets`, then global
/// routing and labelling in the downstream crates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Design {
    /// The suite spec this design was generated from.
    pub spec: DesignSpec,
    /// Die outline.
    pub die: Rect,
    /// Global-routing grid over the die.
    pub grid: GcellGrid,
    /// Logical netlist (cells, macros, pins, nets, NDRs).
    pub netlist: Netlist,
    /// Cell placement.
    pub placement: Placement,
    /// Explicit routing blockages (in addition to macro outlines).
    pub routing_blockages: Vec<Rect>,
}

impl Design {
    /// Creates an empty design with the die and grid implied by `spec`.
    pub fn new(spec: DesignSpec) -> Self {
        let die = spec.die();
        let (nx, ny) = spec.grid_dims();
        let grid = GcellGrid::with_dims(die, nx, ny);
        Self {
            spec,
            die,
            grid,
            netlist: Netlist::new(),
            placement: Placement::new(0),
            routing_blockages: Vec::new(),
        }
    }

    /// Absolute position of a pin, `None` while its owning cell is unplaced.
    pub fn pin_position(&self, pin: PinId) -> Option<Point> {
        match self.netlist.pin(pin).owner {
            PinOwner::Cell { cell, offset } => {
                self.placement.position(cell).map(|origin| origin.offset(offset.x, offset.y))
            }
            PinOwner::Macro { position, .. } => Some(position),
        }
    }

    /// Outline of a placed cell, `None` while unplaced.
    pub fn cell_outline(&self, cell: CellId) -> Option<Rect> {
        self.placement.position(cell).map(|origin| self.netlist.cell(cell).outline_at(origin))
    }

    /// All blockage rectangles: macro outlines plus explicit routing blockages.
    pub fn blockages(&self) -> impl Iterator<Item = Rect> + '_ {
        self.netlist.macros().map(|(_, m)| m.rect).chain(self.routing_blockages.iter().copied())
    }

    /// The fraction of `region` covered by blockages (clipped to the region).
    ///
    /// Blockages in these synthetic designs do not overlap each other, so the
    /// covered areas add up.
    pub fn blockage_fraction(&self, region: &Rect) -> f64 {
        if region.area() == 0 {
            return 0.0;
        }
        let covered: i64 = self.blockages().map(|b| b.overlap_area(region)).sum();
        (covered as f64 / region.area() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cell, Macro};
    use crate::suite;

    #[test]
    fn new_design_matches_spec_geometry() {
        let spec = suite::spec("fft_2").unwrap();
        let d = Design::new(spec.clone());
        assert_eq!(d.die, spec.die());
        assert_eq!(d.grid.num_cells(), 57 * 57);
        assert_eq!(d.netlist.num_cells(), 0);
    }

    #[test]
    fn placement_tracks_placed_count() {
        let mut p = Placement::new(3);
        assert_eq!(p.num_placed(), 0);
        p.place(CellId::from_index(1), Point::new(5, 5));
        assert_eq!(p.num_placed(), 1);
        assert_eq!(p.len(), 3);
        p.resize(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.position(CellId::from_index(1)), Some(Point::new(5, 5)));
    }

    #[test]
    fn pin_position_follows_cell_placement() {
        let spec = suite::spec("fft_1").unwrap();
        let mut d = Design::new(spec);
        let c = d.netlist.add_cell(Cell {
            width: 400,
            height: 1800,
            multi_height: false,
            pins: vec![],
        });
        let pin = d.netlist.add_pin(crate::Pin {
            owner: PinOwner::Cell { cell: c, offset: Point::new(100, 900) },
            net: crate::NetId::from_index(0),
        });
        d.placement.resize(1);
        assert_eq!(d.pin_position(pin), None);
        d.placement.place(c, Point::new(10_000, 20_000));
        assert_eq!(d.pin_position(pin), Some(Point::new(10_100, 20_900)));
    }

    #[test]
    fn blockage_fraction_counts_macros_and_blockages() {
        let spec = suite::spec("fft_1").unwrap();
        let mut d = Design::new(spec);
        d.netlist.add_macro(Macro { rect: Rect::new(0, 0, 50, 100), pins: vec![] });
        d.routing_blockages.push(Rect::new(50, 0, 100, 100));
        let region = Rect::new(0, 0, 100, 100);
        assert!((d.blockage_fraction(&region) - 1.0).abs() < 1e-12);
        let half = Rect::new(0, 0, 50, 100);
        assert!((d.blockage_fraction(&half) - 1.0).abs() < 1e-12);
        let outside = Rect::new(200, 200, 300, 300);
        assert_eq!(d.blockage_fraction(&outside), 0.0);
    }
}

//! The logical design model: cells, macros, pins, nets and non-default rules.
//!
//! Arena-based storage with typed ids keeps the model compact (the paper's
//! largest design, `mult_1`/`mult_2`, has ~155k cells) and serializable.

use drcshap_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

use crate::ids::{CellId, MacroId, NdrId, NetId, PinId};

/// A standard cell: outline dimensions and its pins. Multi-height cells
/// (double row height) are flagged because prior works treat them as a
/// routability risk factor (paper §II-A, "special pins and cells").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Cell width in DBU.
    pub width: i64,
    /// Cell height in DBU (one or two row heights).
    pub height: i64,
    /// Whether the cell spans two placement rows.
    pub multi_height: bool,
    /// Pins owned by this cell.
    pub pins: Vec<PinId>,
}

impl Cell {
    /// The cell outline placed with its origin (lower-left) at `origin`.
    pub fn outline_at(&self, origin: Point) -> Rect {
        Rect::new(origin.x, origin.y, origin.x + self.width, origin.y + self.height)
    }
}

/// A macro block, fixed at generation time (the ISPD-2015 suite fixes macros;
/// macro count per design is a Table I column). Macros block placement under
/// their outline and block routing on lower metal layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Macro {
    /// Placed outline.
    pub rect: Rect,
    /// Boundary pins of the macro.
    pub pins: Vec<PinId>,
}

/// Who owns a pin: a standard cell (offset relative to the cell origin) or a
/// macro (absolute position on the macro boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinOwner {
    /// Pin on a standard cell, at `offset` from the cell origin.
    Cell {
        /// Owning cell.
        cell: CellId,
        /// Offset of the pin from the cell's lower-left corner, in DBU.
        offset: Point,
    },
    /// Pin on a macro, at an absolute layout position.
    Macro {
        /// Owning macro.
        id: MacroId,
        /// Absolute pin location in DBU.
        position: Point,
    },
}

/// A pin: an electrical connection point belonging to a cell or macro and to
/// exactly one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pin {
    /// Physical owner of the pin.
    pub owner: PinOwner,
    /// The net this pin belongs to.
    pub net: NetId,
}

/// Net kind. Clock pins are one of the paper's "special pin" features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// Ordinary signal net.
    Signal,
    /// Clock(-tree) net; its pins count toward the `#clock pins` feature.
    Clock,
}

/// A non-default routing rule: wider wires and larger spacing, as defined in
/// the ISPD-2015 benchmarks. Pins of NDR nets count toward the `#NDR pins`
/// feature and consume extra routing capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ndr {
    /// Wire width multiplier (≥ 1.0).
    pub width_mult: f64,
    /// Wire spacing multiplier (≥ 1.0).
    pub spacing_mult: f64,
}

impl Ndr {
    /// Extra routing-track demand of an NDR wire relative to a default wire.
    ///
    /// A wire with width `w·width_mult` and spacing `s·spacing_mult` occupies
    /// roughly `(width_mult + spacing_mult) / 2` default tracks.
    pub fn track_demand(&self) -> f64 {
        (self.width_mult + self.spacing_mult) / 2.0
    }
}

/// A net: a set of electrically connected pins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    /// Pins of the net (≥ 2 after synthesis).
    pub pins: Vec<PinId>,
    /// Signal or clock.
    pub kind: NetKind,
    /// Optional non-default rule.
    pub ndr: Option<NdrId>,
}

/// The logical netlist: arenas of cells, macros, pins, nets and NDR classes.
///
/// # Example
///
/// ```
/// use drcshap_netlist::{Netlist, Ndr};
///
/// let mut nl = Netlist::new();
/// let ndr = nl.add_ndr(Ndr { width_mult: 2.0, spacing_mult: 2.0 });
/// assert_eq!(nl.ndr(ndr).track_demand(), 2.0);
/// assert_eq!(nl.num_cells(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    cells: Vec<Cell>,
    macros: Vec<Macro>,
    pins: Vec<Pin>,
    nets: Vec<Net>,
    ndrs: Vec<Ndr>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cell, returning its id.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        self.cells.push(cell);
        CellId::from_index(self.cells.len() - 1)
    }

    /// Adds a macro, returning its id.
    pub fn add_macro(&mut self, m: Macro) -> MacroId {
        self.macros.push(m);
        MacroId::from_index(self.macros.len() - 1)
    }

    /// Adds a pin, registering it with its owner, returning its id.
    pub fn add_pin(&mut self, pin: Pin) -> PinId {
        self.pins.push(pin);
        let id = PinId::from_index(self.pins.len() - 1);
        match pin.owner {
            PinOwner::Cell { cell, .. } => self.cells[cell.index()].pins.push(id),
            PinOwner::Macro { id: m, .. } => self.macros[m.index()].pins.push(id),
        }
        id
    }

    /// Adds a net, returning its id. The net's pins must already exist and
    /// will have their `net` field rewritten to the new id.
    pub fn add_net(&mut self, net: Net) -> NetId {
        self.nets.push(net);
        let id = NetId::from_index(self.nets.len() - 1);
        let pin_ids = self.nets[id.index()].pins.clone();
        for p in pin_ids {
            self.pins[p.index()].net = id;
        }
        id
    }

    /// Adds a non-default rule class, returning its id.
    pub fn add_ndr(&mut self, ndr: Ndr) -> NdrId {
        self.ndrs.push(ndr);
        NdrId::from_index(self.ndrs.len() - 1)
    }

    /// Cell lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (not from this netlist).
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Macro lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn macro_block(&self, id: MacroId) -> &Macro {
        &self.macros[id.index()]
    }

    /// Pin lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Net lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// NDR lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn ndr(&self, id: NdrId) -> &Ndr {
        &self.ndrs[id.index()]
    }

    /// Number of standard cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of macros.
    pub fn num_macros(&self) -> usize {
        self.macros.len()
    }

    /// Number of pins.
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Iterates `(id, cell)` pairs.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Iterates `(id, macro)` pairs.
    pub fn macros(&self) -> impl Iterator<Item = (MacroId, &Macro)> {
        self.macros.iter().enumerate().map(|(i, m)| (MacroId::from_index(i), m))
    }

    /// Iterates `(id, pin)` pairs.
    pub fn pins(&self) -> impl Iterator<Item = (PinId, &Pin)> {
        self.pins.iter().enumerate().map(|(i, p)| (PinId::from_index(i), p))
    }

    /// Iterates `(id, net)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId::from_index(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_netlist() -> (Netlist, CellId, CellId) {
        let mut nl = Netlist::new();
        let a = nl.add_cell(Cell { width: 400, height: 1800, multi_height: false, pins: vec![] });
        let b = nl.add_cell(Cell { width: 800, height: 3600, multi_height: true, pins: vec![] });
        let placeholder = NetId::from_index(0);
        let p1 = nl.add_pin(Pin {
            owner: PinOwner::Cell { cell: a, offset: Point::new(100, 900) },
            net: placeholder,
        });
        let p2 = nl.add_pin(Pin {
            owner: PinOwner::Cell { cell: b, offset: Point::new(400, 1800) },
            net: placeholder,
        });
        nl.add_net(Net { pins: vec![p1, p2], kind: NetKind::Signal, ndr: None });
        (nl, a, b)
    }

    #[test]
    fn add_pin_registers_with_owner() {
        let (nl, a, b) = tiny_netlist();
        assert_eq!(nl.cell(a).pins.len(), 1);
        assert_eq!(nl.cell(b).pins.len(), 1);
        assert_eq!(nl.num_pins(), 2);
    }

    #[test]
    fn add_net_rewrites_pin_net_ids() {
        let (nl, _, _) = tiny_netlist();
        let net = NetId::from_index(0);
        for (_, p) in nl.pins() {
            assert_eq!(p.net, net);
        }
        assert_eq!(nl.net(net).pins.len(), 2);
    }

    #[test]
    fn cell_outline_is_translated() {
        let (nl, a, _) = tiny_netlist();
        let r = nl.cell(a).outline_at(Point::new(1000, 2000));
        assert_eq!(r, Rect::new(1000, 2000, 1400, 3800));
    }

    #[test]
    fn ndr_track_demand() {
        let ndr = Ndr { width_mult: 2.0, spacing_mult: 3.0 };
        assert_eq!(ndr.track_demand(), 2.5);
        let default = Ndr { width_mult: 1.0, spacing_mult: 1.0 };
        assert_eq!(default.track_demand(), 1.0);
    }

    #[test]
    fn iterators_agree_with_counts() {
        let (nl, _, _) = tiny_netlist();
        assert_eq!(nl.cells().count(), nl.num_cells());
        assert_eq!(nl.pins().count(), nl.num_pins());
        assert_eq!(nl.nets().count(), nl.num_nets());
        assert_eq!(nl.macros().count(), 0);
    }
}

//! The 14-design synthetic suite mirroring Table I of the paper.
//!
//! Each [`DesignSpec`] carries the published per-design statistics of the
//! ISPD-2015 benchmarks the paper uses (layout size, g-cell count, standard
//! cell count, macro count, DRC hotspot count) and the paper's five-group
//! split. The synthetic generator reproduces the *statistics*; the actual
//! contest netlists are not redistributable and their detailed-routed DRC
//! results were never published (see `DESIGN.md` §1).
//!
//! Designs can be scaled down uniformly ([`DesignSpec::scaled`]) for fast
//! test/bench runs: the die shrinks linearly, g-cell and cell counts shrink
//! quadratically, so placement utilization and congestion statistics are
//! preserved.

use drcshap_geom::Rect;
use serde::{Deserialize, Serialize};

/// Row-height of the 65 nm standard-cell library, in DBU (1.8 µm).
pub const ROW_HEIGHT_DBU: i64 = 1_800;
/// Placement-site width, in DBU (0.2 µm).
pub const SITE_WIDTH_DBU: i64 = 200;

/// Statistics of one suite design, as published in Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Number of g-cells.
    pub gcells: u32,
    /// Number of DRC hotspots after detailed routing.
    pub hotspots: u32,
    /// Number of macros.
    pub macros: u32,
    /// Number of standard cells, in thousands.
    pub cells_k: f64,
    /// Layout size in microns (width, height).
    pub size_um: (f64, f64),
}

/// Specification of one synthetic design.
///
/// # Example
///
/// ```
/// use drcshap_netlist::suite;
///
/// let spec = suite::spec("des_perf_1").unwrap();
/// assert_eq!(spec.table1.hotspots, 676);
/// let small = spec.scaled(0.25);
/// assert!(small.num_cells() < spec.num_cells() / 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpec {
    /// Design name (ISPD-2015 naming).
    pub name: String,
    /// Cross-validation group (1–5), as assigned in Table I.
    pub group: u8,
    /// Published Table I statistics for the original design.
    pub table1: Table1Row,
    /// Linear scale factor (1.0 = paper scale).
    pub scale: f64,
}

impl DesignSpec {
    /// A copy of this spec scaled linearly by `factor` (composable).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < factor <= 1.0`.
    pub fn scaled(&self, factor: f64) -> DesignSpec {
        assert!(factor > 0.0 && factor <= 1.0, "scale factor must be in (0, 1]");
        DesignSpec { scale: self.scale * factor, ..self.clone() }
    }

    /// The (scaled) die outline, origin at (0, 0).
    pub fn die(&self) -> Rect {
        let (w, h) = self.table1.size_um;
        Rect::from_microns(0.0, 0.0, w * self.scale, h * self.scale)
    }

    /// The (scaled) g-cell grid dimensions `(nx, ny)`, chosen as the
    /// near-square factorization of the Table I g-cell count.
    ///
    /// Perfect squares (most suite designs) reproduce Table I exactly at
    /// scale 1.0; the rest land within a fraction of a percent.
    pub fn grid_dims(&self) -> (u32, u32) {
        let n = self.table1.gcells as f64;
        let nx0 = n.sqrt().round();
        let ny0 = (n / nx0).round();
        let nx = ((nx0 * self.scale).round() as u32).max(9);
        let ny = ((ny0 * self.scale).round() as u32).max(9);
        (nx, ny)
    }

    /// The (scaled) number of standard cells to generate.
    pub fn num_cells(&self) -> usize {
        ((self.table1.cells_k * 1_000.0 * self.scale * self.scale).round() as usize).max(50)
    }

    /// The number of macros (not scaled: macro count is small and their area
    /// scales with the die).
    pub fn num_macros(&self) -> usize {
        self.table1.macros as usize
    }

    /// The (scaled) DRC hotspot count the label oracle is calibrated to.
    pub fn target_hotspots(&self) -> usize {
        (self.table1.hotspots as f64 * self.scale * self.scale).round() as usize
    }

    /// Published hotspot rate (hotspots per g-cell) of the original design.
    pub fn hotspot_rate(&self) -> f64 {
        self.table1.hotspots as f64 / self.table1.gcells as f64
    }

    /// Congestion stress in `[0.25, 1.0]`, derived from the published hotspot
    /// rate: stressed designs get tighter cell clustering and higher routing
    /// demand so that congestion (and therefore labels) emerge where the
    /// original design had them. `des_perf_1` (12.3% hotspots) maps to ~1.0;
    /// DRC-clean designs map to 0.25.
    pub fn stress(&self) -> f64 {
        let normalized = (self.hotspot_rate() / 0.125).min(1.0);
        0.25 + 0.75 * normalized.sqrt()
    }

    /// Placement utilization implied by Table I: total cell area over
    /// non-macro die area, assuming the library's mean cell area.
    pub fn utilization(&self) -> f64 {
        // Mean cell: ~4.5 sites wide, one row tall.
        let mean_cell_area = (4.5 * SITE_WIDTH_DBU as f64) * ROW_HEIGHT_DBU as f64;
        let die = self.die();
        let macro_area = 0.08 * die.area() as f64 * self.num_macros() as f64 / 6.0;
        let free = (die.area() as f64 - macro_area).max(1.0);
        (self.num_cells() as f64 * mean_cell_area / free).min(0.97)
    }

    /// A deterministic per-design RNG seed (stable across runs and platforms).
    pub fn seed(&self) -> u64 {
        // FNV-1a over the name; scale does not change the seed so that a
        // scaled design is a coarser look at "the same" design.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

macro_rules! spec {
    ($name:literal, $group:literal, $gcells:literal, $hotspots:literal, $macros:literal,
     $cells_k:literal, $w:literal x $h:literal) => {
        DesignSpec {
            name: $name.to_owned(),
            group: $group,
            table1: Table1Row {
                gcells: $gcells,
                hotspots: $hotspots,
                macros: $macros,
                cells_k: $cells_k,
                size_um: ($w as f64, $h as f64),
            },
            scale: 1.0,
        }
    };
}

/// All 14 designs of Table I, in table order.
pub fn all_specs() -> Vec<DesignSpec> {
    vec![
        // Group 1
        spec!("des_perf_b", 1, 10_000, 0, 0, 112.6, 600 x 600),
        spec!("fft_2", 1, 3_249, 17, 0, 32.3, 265 x 265),
        spec!("mult_1", 1, 8_281, 154, 0, 155.3, 550 x 550),
        spec!("mult_2", 1, 8_464, 193, 0, 155.3, 555 x 555),
        // Group 2
        spec!("fft_b", 2, 6_506, 534, 6, 30.6, 800 x 800),
        spec!("mult_a", 2, 21_757, 13, 5, 149.7, 1500 x 1500),
        // Group 3
        spec!("mult_b", 3, 24_257, 613, 7, 146.4, 1500 x 1500),
        spec!("bridge32_a", 3, 3_569, 56, 4, 29.5, 400 x 400),
        // Group 4
        spec!("des_perf_1", 4, 5_476, 676, 0, 112.6, 445 x 445),
        spec!("mult_c", 4, 24_213, 62, 7, 146.4, 1500 x 1500),
        // Group 5
        spec!("des_perf_a", 5, 11_498, 246, 4, 108.3, 900 x 900),
        spec!("fft_1", 5, 1_936, 50, 0, 32.3, 265 x 265),
        spec!("fft_a", 5, 6_491, 2, 6, 30.6, 800 x 800),
        spec!("bridge32_b", 5, 10_393, 0, 6, 28.9, 800 x 800),
    ]
}

/// Looks up a design spec by name.
pub fn spec(name: &str) -> Option<DesignSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

/// The designs of cross-validation group `group` (1–5).
pub fn group_specs(group: u8) -> Vec<DesignSpec> {
    all_specs().into_iter().filter(|s| s.group == group).collect()
}

/// Designs evaluated in Table II: all designs with at least one hotspot
/// (the paper's footnote 3 excludes the two DRC-clean designs, for which
/// TPR/Prec/AUPRC are undefined).
pub fn evaluated_specs() -> Vec<DesignSpec> {
    all_specs().into_iter().filter(|s| s.table1.hotspots > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_designs_in_five_groups() {
        let specs = all_specs();
        assert_eq!(specs.len(), 14);
        for g in 1..=5u8 {
            assert!(!group_specs(g).is_empty(), "group {g} empty");
        }
        assert_eq!((1..=5u8).map(|g| group_specs(g).len()).sum::<usize>(), 14);
    }

    #[test]
    fn group_gcell_totals_match_table1() {
        // Table I group headers: 29994, 28263, 27826, 29689, 30318.
        let totals: Vec<u32> =
            (1..=5u8).map(|g| group_specs(g).iter().map(|s| s.table1.gcells).sum()).collect();
        assert_eq!(totals, vec![29_994, 28_263, 27_826, 29_689, 30_318]);
    }

    #[test]
    fn group_hotspot_totals_match_table1() {
        let totals: Vec<u32> =
            (1..=5u8).map(|g| group_specs(g).iter().map(|s| s.table1.hotspots).sum()).collect();
        assert_eq!(totals, vec![364, 547, 669, 738, 298]);
    }

    #[test]
    fn perfect_square_grids_reproduce_gcell_counts() {
        for name in ["des_perf_b", "fft_2", "mult_1", "mult_2", "des_perf_1", "fft_1"] {
            let s = spec(name).unwrap();
            let (nx, ny) = s.grid_dims();
            assert_eq!(nx * ny, s.table1.gcells, "{name}");
        }
    }

    #[test]
    fn non_square_grids_are_close() {
        for s in all_specs() {
            let (nx, ny) = s.grid_dims();
            let err =
                (nx as f64 * ny as f64 - s.table1.gcells as f64).abs() / s.table1.gcells as f64;
            assert!(err < 0.02, "{}: {}x{} vs {}", s.name, nx, ny, s.table1.gcells);
        }
    }

    #[test]
    fn evaluated_specs_excludes_drc_clean_designs() {
        let eval = evaluated_specs();
        assert_eq!(eval.len(), 12);
        assert!(!eval.iter().any(|s| s.name == "des_perf_b"));
        assert!(!eval.iter().any(|s| s.name == "bridge32_b"));
    }

    #[test]
    fn scaling_preserves_utilization_roughly() {
        let s = spec("mult_1").unwrap();
        let small = s.scaled(0.25);
        let ratio = small.utilization() / s.utilization();
        assert!((0.8..1.25).contains(&ratio), "utilization drifted: {ratio}");
        assert!(small.num_cells() >= 50);
        assert_eq!(small.seed(), s.seed());
    }

    #[test]
    fn scaled_compose() {
        let s = spec("fft_1").unwrap().scaled(0.5).scaled(0.5);
        assert!((s.scale - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = spec("fft_1").unwrap().scaled(0.0);
    }

    #[test]
    fn stress_orders_by_hotspot_rate() {
        let hot = spec("des_perf_1").unwrap().stress();
        let warm = spec("mult_2").unwrap().stress();
        let clean = spec("des_perf_b").unwrap().stress();
        assert!(hot > warm && warm > clean);
        assert!(clean >= 0.25 && hot <= 1.0);
    }

    #[test]
    fn seeds_are_distinct_per_design() {
        let seeds: std::collections::HashSet<u64> = all_specs().iter().map(|s| s.seed()).collect();
        assert_eq!(seeds.len(), 14);
    }

    #[test]
    fn utilization_is_sane_for_dense_and_sparse_designs() {
        let dense = spec("mult_1").unwrap().utilization();
        let sparse = spec("fft_b").unwrap().utilization();
        assert!(dense > 0.5, "mult_1 should be dense: {dense}");
        assert!(sparse < 0.2, "fft_b should be sparse: {sparse}");
    }
}
